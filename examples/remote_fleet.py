#!/usr/bin/env python
"""A remote sensor fleet surviving a SIGKILLed server.

The network-era sequel to ``sensor_fleet.py``: eight sensors — each
licensed to a different tenant, each watermarked under its **own**
secret key — stream concurrently from eight client threads into one
``repro serve`` process over TCP, while a ninth client runs court-side
detection on a re-streamed copy.

Halfway through, the server process is **SIGKILLed** — no drain, no
goodbye; only its checkpoint store directory survives.  A replacement
server starts on the same port with ``--recover``.  Every client rides
through via the SDK's reconnect-and-resume (re-open with the original
key, replay from the server-reported ``items_in`` offset, deduplicate
redelivered outputs) — and every published stream is **bit-identical**
to offline watermarking, each output item delivered exactly once.  The
detector's votes match the in-process run too.  Finally SIGTERM drains
the replacement server, which exits 0::

    python examples/remote_fleet.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading

import numpy as np

from repro import DetectionSession, WatermarkParams, watermark_stream
from repro.server.client import RemoteClient
from repro.streams import TemperatureSensorGenerator

N_SENSORS = 8
N_ITEMS = 4000
CHUNK = 500
PARAMS = WatermarkParams(phi=5)
PAYLOAD = "10"


def sensor_key(sensor_id: str) -> bytes:
    """Per-tenant key material (a real fleet would use a KMS)."""
    return f"tenant-secret-{sensor_id}".encode()


def start_server(store: str, port: int = 0) -> "tuple[subprocess.Popen, int]":
    """Launch ``repro serve`` and parse its machine-readable ready line."""
    argv = [sys.executable, "-m", "repro", "serve", "--port", str(port),
            "--store", store]
    if port:
        argv.append("--recover")
    process = subprocess.Popen(argv, stdout=subprocess.PIPE,
                               env=os.environ.copy(), text=True)
    ready = json.loads(process.stdout.readline())
    return process, ready["serving"]["port"]


def run_client(port: int, sensor_id: str, values: np.ndarray,
               half_done: threading.Barrier, resume: threading.Event,
               published: dict) -> None:
    """One tenant's client thread: feed half, survive the kill, finish."""
    with RemoteClient("127.0.0.1", port, tenant=sensor_id,
                      reconnect_delay=0.25, reconnect_attempts=120) as client:
        session = client.protect(sensor_id, PAYLOAD, sensor_key(sensor_id),
                                 params=PARAMS)
        out = []
        half = N_ITEMS // 2
        for start in range(0, half, CHUNK):
            out.append(session.feed(values[start:start + CHUNK]))
        half_done.wait()      # everyone mid-stream ...
        resume.wait()         # ... while the server is killed + replaced
        for start in range(half, N_ITEMS, CHUNK):
            out.append(session.feed(values[start:start + CHUNK]))
        out.append(session.finish())
        published[sensor_id] = np.concatenate(
            [piece for piece in out if piece.size])


def main() -> None:
    sensors = {f"sensor-{i:02d}": TemperatureSensorGenerator(
        eta=60, seed=700 + i).generate(N_ITEMS)
        for i in range(N_SENSORS)}
    suspect, _ = watermark_stream(
        TemperatureSensorGenerator(eta=60, seed=999).generate(N_ITEMS),
        PAYLOAD, sensor_key("court"), params=PARAMS)
    sensors["court"] = suspect  # the detection client rides along

    with tempfile.TemporaryDirectory(prefix="remote-fleet-") as store:
        server, port = start_server(store)
        print(f"server 1: pid {server.pid} serving "
              f"{len(sensors)} tenants on port {port}")

        half_done = threading.Barrier(len(sensors) + 1)
        resume = threading.Event()
        published: "dict[str, np.ndarray]" = {}
        detected: "dict[str, object]" = {}

        def run_detector() -> None:
            with RemoteClient("127.0.0.1", port, tenant="court",
                              reconnect_delay=0.25,
                              reconnect_attempts=120) as client:
                session = client.detect("court", len(PAYLOAD),
                                        sensor_key("court"), params=PARAMS)
                half = N_ITEMS // 2
                for start in range(0, half, CHUNK):
                    session.feed(suspect[start:start + CHUNK])
                half_done.wait()
                resume.wait()
                for start in range(half, N_ITEMS, CHUNK):
                    session.feed(suspect[start:start + CHUNK])
                session.finish()
                detected["court"] = session.result()

        threads = [threading.Thread(target=run_client,
                                    args=(port, sensor_id, values,
                                          half_done, resume, published))
                   for sensor_id, values in sensors.items()
                   if sensor_id != "court"]
        threads.append(threading.Thread(target=run_detector))
        for thread in threads:
            thread.start()

        half_done.wait()  # every client is mid-stream now
        server.kill()     # SIGKILL: no drain, no checkpoint, no goodbye
        server.wait()
        print(f"server 1: SIGKILLed mid-run "
              f"(only the store under {store} survives)")

        server, _ = start_server(store, port=port)  # same port, --recover
        print(f"server 2: pid {server.pid} recovering on port {port}")
        resume.set()
        for thread in threads:
            thread.join()

        exact = 0
        for sensor_id, values in sensors.items():
            if sensor_id == "court":
                continue
            reference, _ = watermark_stream(values, PAYLOAD,
                                            sensor_key(sensor_id),
                                            params=PARAMS)
            exact += np.array_equal(published[sensor_id], reference)
        print(f"verdict: {exact}/{N_SENSORS} sensor streams "
              "bit-identical to a crash-free run")

        local = DetectionSession(len(PAYLOAD), sensor_key("court"),
                                 params=PARAMS)
        local.feed(suspect)
        local.finish()
        expected = local.result()
        remote = detected["court"]
        votes_match = (remote.buckets_true == expected.buckets_true
                       and remote.buckets_false == expected.buckets_false)
        estimate = "".join("1" if bit else "0"
                           for bit in remote.wm_estimate())
        print(f"court stream: payload read back as {estimate!r}, votes "
              f"{'bit-identical' if votes_match else 'DIVERGED'} vs the "
              "in-process detector")

        server.send_signal(signal.SIGTERM)
        code = server.wait(timeout=30)
        drained = json.loads(server.stdout.readline())
        print(f"server 2: SIGTERM -> drained "
              f"({drained['pushes']} pushes served), exit {code}")


if __name__ == "__main__":
    main()
