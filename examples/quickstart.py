#!/usr/bin/env python
"""Quickstart: watermark a sensor stream, attack it, prove ownership.

Runs in a few seconds::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import WatermarkParams, detect_watermark, watermark_stream
from repro.streams import TemperatureSensorGenerator
from repro.transforms import summarize, uniform_random_sampling

SECRET_KEY = b"quickstart-secret-k1"


def main() -> None:
    # 1. A normalized sensor stream: ~100 items per major extreme,
    #    the reference setup of the paper's Sec 6.
    stream = TemperatureSensorGenerator(eta=100, seed=42).generate(8000)

    # 2. Embed a one-bit watermark (single pass, finite window).
    params = WatermarkParams()
    marked, report = watermark_stream(stream, watermark="1",
                                      key=SECRET_KEY, params=params)
    print("embedding:")
    print(f"  major extremes     : {report.counters.majors}")
    print(f"  bit carriers       : {report.embedded}")
    print(f"  items altered      : {report.altered_items}")
    print(f"  max alteration     : {report.max_abs_alteration:.2e} "
          "(normalized units)")

    # 3. Detection on the intact stream.
    result = detect_watermark(marked, 1, SECRET_KEY, params=params)
    print("\ndetection (no attack):")
    print(f"  bias               : {result.bias(0)} "
          f"({result.votes(0)} votes)")
    print(f"  court confidence   : {result.confidence(0):.6f}")

    # 4. Mallory samples the stream down to a third...
    sampled = uniform_random_sampling(marked, degree=3, rng=0)
    result = detect_watermark(sampled, 1, SECRET_KEY, params=params,
                              transform_degree=3.0)
    print("\ndetection (after 3x sampling):")
    print(f"  bias               : {result.bias(0)} "
          f"({result.votes(0)} votes)")
    print(f"  court confidence   : {result.confidence(0):.6f}")

    # 5. ...or replaces every 5 readings by their average (20%
    #    summarization, the paper's headline transform).
    summarized = summarize(marked, degree=5)
    result = detect_watermark(summarized, 1, SECRET_KEY, params=params,
                              transform_degree=5.0)
    print("\ndetection (after 5x summarization):")
    print(f"  bias               : {result.bias(0)} "
          f"({result.votes(0)} votes)")
    print(f"  court confidence   : {result.confidence(0):.6f}")

    # 6. Someone else's stream shows no watermark.
    from repro.streams import GaussianStream

    other = GaussianStream(seed=7).generate(8000)
    result = detect_watermark(other, 1, SECRET_KEY, params=params)
    print("\ndetection (unwatermarked data):")
    print(f"  bias               : {result.bias(0)} "
          f"({result.votes(0)} votes)")
    print(f"  verdict            : "
          f"{result.wm_estimate(threshold=10)[0]!r} (undefined = clean)")


if __name__ == "__main__":
    main()
