#!/usr/bin/env python
"""A multi-tenant sensor fleet surviving a worker crash.

Twelve sensors — each licensed to a different tenant, each watermarked
under its **own** secret key — stream interleaved chunks through one
:class:`repro.StreamHub`.  The hub checkpoints every session to an
atomic-write directory store and keeps at most eight sessions in
memory, LRU-evicting idle ones to the store.

Halfway through, the worker process "crashes" (the hub object is
dropped on the floor; only the store directory survives).  A fresh
worker calls :meth:`StreamHub.recover`, re-supplies the keys, replays
each sensor's feed from its checkpointed offset, and finishes the run —
and every sensor's published stream is **bit-identical** to one from a
worker that never crashed.  A thirteenth stream runs detection on a
re-streamed copy, proving voting evidence survives the crash too::

    python examples/sensor_fleet.py
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro import StreamHub, WatermarkParams, watermark_stream
from repro.stores import DirectoryCheckpointStore
from repro.streams import TemperatureSensorGenerator

N_SENSORS = 12
N_ITEMS = 6000
CHUNK = 500
PARAMS = WatermarkParams(phi=5)
PAYLOAD = "10"


def sensor_key(sensor_id: str) -> bytes:
    """Per-tenant key material (a real fleet would use a KMS)."""
    return f"tenant-secret-{sensor_id}".encode()


def main() -> None:
    sensors = {f"sensor-{i:02d}": TemperatureSensorGenerator(
        eta=60, seed=300 + i).generate(N_ITEMS)
        for i in range(N_SENSORS)}
    # round-robin interleaving: how multiplexed traffic actually arrives
    batches = [(sensor_id, values[start:start + CHUNK])
               for start in range(0, N_ITEMS, CHUNK)
               for sensor_id, values in sensors.items()]
    kill_at = len(batches) // 2

    with tempfile.TemporaryDirectory(prefix="sensor-fleet-") as store_dir:
        store = DirectoryCheckpointStore(store_dir)
        hub = StreamHub(store=store, checkpoint_every=1,
                        max_live_sessions=8)
        for sensor_id in sensors:
            hub.protect(sensor_id, PAYLOAD, sensor_key(sensor_id),
                        params=PARAMS)
        # a rights-owner side detection stream rides along in the hub
        suspect, _ = watermark_stream(
            TemperatureSensorGenerator(eta=60, seed=999).generate(N_ITEMS),
            PAYLOAD, sensor_key("court"), params=PARAMS)
        hub.detect("court", len(PAYLOAD), sensor_key("court"),
                   params=PARAMS)
        batches += [("court", suspect[s:s + CHUNK])
                    for s in range(0, N_ITEMS, CHUNK)]

        published = {sensor_id: [] for sensor_id in hub.stream_ids}
        for sensor_id, out in hub.push_many(batches[:kill_at]):
            published[sensor_id].append(out)
        print(f"worker 1: {kill_at} batches multiplexed over "
              f"{len(hub)} streams, then CRASH "
              f"(store: {len(store)} durable checkpoints)")
        del hub  # nothing survives but the store directory

        hub = StreamHub.recover(store, sensor_key, checkpoint_every=1,
                                max_live_sessions=8)
        print(f"worker 2: recovered {len(hub)} keyed sessions from "
              "the store, replaying from per-stream offsets")
        for sensor_id, chunk in batches[kill_at:]:
            published[sensor_id].append(hub.push(sensor_id, chunk))
        tails = hub.finish_all()

        exact = 0
        for sensor_id, values in sensors.items():
            reference, _ = watermark_stream(values, PAYLOAD,
                                            sensor_key(sensor_id),
                                            params=PARAMS)
            recovered_stream = np.concatenate(
                published[sensor_id] + [tails[sensor_id]])
            exact += np.array_equal(recovered_stream, reference)
        print(f"verdict: {exact}/{N_SENSORS} sensor streams "
              "bit-identical to a crash-free run")

        verdict = hub.result("court")
        estimate = "".join("1" if bit else "0"
                           for bit in verdict.wm_estimate())
        print(f"court stream: payload read back as {estimate!r} "
              f"(bias {verdict.bias(0)}), evidence intact across "
              "the crash")

        busiest = max(hub.stats().values(),
                      key=lambda row: row["checkpoints"])
        print(f"stats sample: {busiest['stream_id']} — "
              f"{busiest['pushes']} pushes, "
              f"{busiest['checkpoints']} checkpoints, "
              f"{busiest['evictions']} evictions, "
              f"{busiest['restores']} restores")


if __name__ == "__main__":
    main()
