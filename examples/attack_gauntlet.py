#!/usr/bin/env python
"""Run the full attack battery against one watermarked stream.

Covers every attack class of paper Sec 2.1 (A1-A3, A5, A6) plus the
Sec-5 targeted-extreme model, printing detected bias and court
confidence for each::

    python examples/attack_gauntlet.py
"""

from __future__ import annotations

from repro import WatermarkParams, detect_best, detect_watermark, watermark_stream
from repro.attacks import AttackSuite
from repro.streams import TemperatureSensorGenerator

SECRET_KEY = b"gauntlet-key"


def main() -> None:
    params = WatermarkParams()
    stream = TemperatureSensorGenerator(eta=100, seed=2004).generate(10000)
    marked, report = watermark_stream(stream, "1", SECRET_KEY, params=params)
    clean = detect_watermark(marked, 1, SECRET_KEY, params=params)
    print(f"clean detection: bias {clean.bias(0)} "
          f"({clean.votes(0)} votes), confidence {clean.confidence(0):.6f}")
    print(f"{'attack':<22}{'description':<46}{'bias':>6}{'conf':>10}"
          f"{'rho':>6}")
    print("-" * 90)

    for outcome in AttackSuite(seed=17).run(marked):
        # The transform Mallory applied is unknown: run the paper's
        # multi-pass offline detection over candidate degrees (rho = 1
        # for value-only attacks plus the Sec-4.2 subset-shrinkage
        # estimate) and keep the strongest evidence.
        detection, rho = detect_best(
            outcome.values, 1, SECRET_KEY, params=params,
            reference_subset_size=report.average_subset_size,
            expected="1")
        print(f"{outcome.name:<22}{outcome.description:<46}"
              f"{detection.bias(0):>6}{detection.confidence(0):>10.4f}"
              f"{rho:>6.1f}")

    print("-" * 90)
    print("a positive bias with confidence near 1.0 is a court-ready "
          "proof of ownership (Sec 5)")


if __name__ == "__main__":
    main()
