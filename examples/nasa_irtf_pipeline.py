#!/usr/bin/env python
"""The paper's real-data scenario: a month of telescope-site temperatures.

A data collector watermarks its environmental feed with an ASCII
copyright payload before licensing it; a customer re-sells a transformed
copy; the collector proves ownership from the re-sold data alone.

    python examples/nasa_irtf_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro import Normalizer, bits_to_text, detect_watermark, watermark_stream
from repro.experiments.config import irtf_params
from repro.streams.nasa import synthetic_irtf_month
from repro.transforms import segment, uniform_random_sampling

SECRET_KEY = b"irtf-rights-owner-key"
#: 16 bits: sized to the carrier budget — one month of single-sensor
#: data carries ~200 bit instances, and a stolen, halved fraction must
#: still cast several votes per payload bit (Sec 5's segment analysis).
PAYLOAD = "IC"


def main() -> None:
    # --- the rights owner -------------------------------------------------
    celsius, meta = synthetic_irtf_month()
    print(f"dataset: {len(celsius)} readings at "
          f"{1 / meta.rate_hz:.0f} s cadence "
          f"({celsius.min():.1f}..{celsius.max():.1f} degC)")

    normalizer = Normalizer(low=0.0, high=35.0)
    normalized = normalizer.normalize(celsius)

    # Multi-bit payloads need phi > b(wm) (Sec 3.2).
    params = irtf_params().with_updates(phi=len(PAYLOAD) * 8 + 1)
    marked, report = watermark_stream(normalized, PAYLOAD, SECRET_KEY,
                                      params=params)
    published = normalizer.denormalize(marked)
    print(f"embedded {report.embedded} bit instances across "
          f"{report.counters.majors} major extremes")
    print(f"worst per-reading distortion: "
          f"{np.max(np.abs(published - celsius)) * 1000:.3f} millidegC")

    # --- the malicious customer -------------------------------------------
    # Mallory re-sells 60% of the month, sampled down 2x.
    stolen = segment(published, start=len(published) // 5,
                     length=int(len(published) * 0.6))
    stolen = uniform_random_sampling(stolen, degree=2, rng=99)
    print(f"\nMallory publishes {len(stolen)} readings "
          f"({100 * len(stolen) / len(published):.0f}% of the month)")

    # --- in court -----------------------------------------------------------
    # The owner re-normalizes the disputed data and detects.
    disputed = Normalizer(low=0.0, high=35.0).normalize(stolen)
    detection = detect_watermark(
        disputed, len(PAYLOAD) * 8, SECRET_KEY, params=params,
        transform_degree="auto",
        reference_subset_size=report.average_subset_size)
    decoded = bits_to_text(detection.wm_estimate())
    decided = sum(1 for b in detection.wm_estimate() if b is not None)
    matched = detection.match_fraction(PAYLOAD)
    print("\ncourt-time detection:")
    print(f"  decided bits       : {decided}/{len(PAYLOAD) * 8}")
    print(f"  decided-bit match  : {matched:.0%}")
    print(f"  recovered payload  : {decoded!r}")
    print(f"  total vote bias    : {detection.total_bias}")


if __name__ == "__main__":
    main()
