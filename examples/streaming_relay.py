#!/usr/bin/env python
"""The paper's Fig-1 scenario with the streaming session API.

sensor farm --> [ProtectionSession, single pass, finite window] -->
licensed consumer --> (Mallory re-streams a recorded segment) -->
DetectionSession.

The embedder sees the stream chunk-by-chunk and never holds more than
its window; halfway through it is **checkpointed** (``to_state()``) and
resumed in a brand-new session object — the way a sharded deployment
migrates a long-running stream between workers — with bit-identical
output.  The detector consumes Mallory's re-streamed copy the same way,
accumulating voting evidence as data flows::

    python examples/streaming_relay.py
"""

from __future__ import annotations

import json

import numpy as np

from repro import DetectionSession, ProtectionSession, WatermarkParams
from repro.streams import TemperatureSensorGenerator
from repro.streams.model import chunked

SECRET_KEY = b"relay-key"
CHUNK = 500  # items per network packet, say


def main() -> None:
    params = WatermarkParams(window_size=2048)
    sensor = TemperatureSensorGenerator(eta=100, seed=11)

    # --- producer side: watermark on the fly, migrating mid-stream ----------
    session = ProtectionSession("1", SECRET_KEY, params=params)
    delivered: list[np.ndarray] = []
    for i, chunk in enumerate(chunked(iter(sensor.generate(12000)), CHUNK)):
        delivered.append(session.feed(chunk))
        if i == 11:  # 6000 items in: migrate the session to another worker
            checkpoint = json.dumps(session.to_state())
            session = ProtectionSession.from_state(json.loads(checkpoint),
                                                   SECRET_KEY)
            print(f"producer: checkpointed at item {session.items_ingested} "
                  f"({len(checkpoint)} bytes, key excluded) and resumed")
    delivered.append(session.finish())
    licensed_feed = np.concatenate(delivered)
    print(f"producer: streamed {len(licensed_feed)} watermarked items "
          f"({session.report.embedded} carriers, window "
          f"{params.window_size})")

    # --- Mallory: records a middle chunk and re-streams it ------------------
    recorded = licensed_feed[3000:9000]
    print(f"Mallory: re-streams {len(recorded)} recorded items")

    # --- rights owner: streaming detection on the re-streamed feed ----------
    detector = DetectionSession(1, SECRET_KEY, params=params)
    checkpoint_every = 4  # report evidence as it accumulates
    for i, chunk in enumerate(chunked(iter(recorded), CHUNK)):
        detector.feed(chunk)
        if (i + 1) % checkpoint_every == 0:
            partial = detector.result()
            print(f"  after {(i + 1) * CHUNK:>5} items: "
                  f"bias {partial.bias(0):>3} "
                  f"(confidence {partial.confidence(0):.4f})")
    detector.finish()
    final = detector.result()
    print(f"verdict: bias {final.bias(0)} over {final.votes(0)} votes, "
          f"confidence {final.confidence(0):.6f}")
    print(f"exact null probability: {final.exact_false_positive(0):.2e}")


if __name__ == "__main__":
    main()
