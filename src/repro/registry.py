"""Central component registry: plug in workloads by name, not by edit.

Every extensible axis of the library — bit-encoding strategies, stream
transforms, attacks and synthetic stream generators — used to live in a
hard-coded name table duplicated across the encoding factory, the attack
suite and the CLI.  :class:`ComponentRegistry` replaces those tables
with one registration point::

    from repro.registry import REGISTRY

    @REGISTRY.register("encoding", "multihash",
                       description="Sec-4.3 multi-hash convention")
    class MultihashEncoding: ...

Consumers resolve by ``(kind, name)``::

    cls = REGISTRY.get("encoding", "multihash")
    REGISTRY.names("transform")      # for CLI choices, docs, `repro list`

Registered kinds and their calling conventions:

``encoding``
    A strategy class (or factory) called as
    ``obj(params, quantizer, hasher, **options)`` returning an object
    with ``embed`` / ``detect`` methods.
``transform`` / ``attack``
    A *builder*: ``obj(**options) -> callable(values) -> values``.
    Builders with an ``rng`` keyword accept a seed or generator.
``generator``
    A stream-source class constructed with keyword parameters and
    exposing ``generate(n_items)``.
``store``
    A :class:`repro.stores.CheckpointStore` subclass; directory-backed
    stores are constructed as ``obj(path)``, process-local ones as
    ``obj()`` (see :func:`repro.stores.build_store`).
``transport``
    A :class:`repro.server.transports.Transport` subclass, constructed
    as ``obj()`` (see :func:`repro.server.transports.build_transport`);
    selects how the serving stack moves frame bodies between peers.

Built-in components self-register when their home module is imported;
the registry lazily imports those provider modules on first lookup, so
``REGISTRY.names("attack")`` is complete even before ``repro.attacks``
has been imported explicitly (the scanner/registry pattern).
"""

from __future__ import annotations

import difflib
import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.errors import RegistryError

#: Modules whose import registers the built-in components of each kind.
_PROVIDER_MODULES = (
    "repro.core.encoding_factory",
    "repro.transforms",
    "repro.attacks",
    "repro.streams.generators",
    "repro.stores",
    "repro.server.transports",
)


@dataclass(frozen=True)
class Registration:
    """One registered component: its kind, name, object and description."""

    kind: str
    name: str
    obj: Any
    description: str = ""


@dataclass
class ComponentRegistry:
    """Name-indexed tables of pluggable components, one table per kind.

    The registry is deliberately dumb storage plus good error messages:
    construction semantics (how an encoding or transform is invoked) are
    the concern of the registering module, documented per kind in the
    module docstring above.
    """

    #: The component kinds the library defines.
    KINDS = ("encoding", "transform", "attack", "generator", "store",
             "transport")

    provider_modules: tuple = _PROVIDER_MODULES
    _tables: "dict[str, dict[str, Registration]]" = field(init=False)
    _populated: bool = field(init=False, default=False)
    _populating: bool = field(init=False, default=False)

    def __post_init__(self) -> None:
        self._tables = {kind: {} for kind in self.KINDS}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, kind: str, name: str, *,
                 description: str = "") -> Callable:
        """Decorator form of :meth:`add`: register and return the object."""
        def decorate(obj):
            self.add(kind, name, obj, description=description)
            return obj
        return decorate

    def add(self, kind: str, name: str, obj: Any, *,
            description: str = "") -> Registration:
        """Register one component; duplicate ``(kind, name)`` pairs fail.

        Duplicate rejection is deliberate — silently replacing a
        component would let a plugin shadow a built-in and change
        detection semantics without any visible signal.
        """
        table = self._table(kind)
        if not name or not isinstance(name, str):
            raise RegistryError(f"component name must be a non-empty string, "
                                f"got {name!r}")
        if name in table:
            raise RegistryError(
                f"{kind} {name!r} is already registered "
                f"(by {table[name].obj!r}); pick a different name"
            )
        registration = Registration(kind=kind, name=name, obj=obj,
                                    description=description)
        table[name] = registration
        return registration

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def get(self, kind: str, name: str) -> Any:
        """Resolve a name to its registered object.

        Unknown names raise :class:`RegistryError` whose message lists
        every valid name of the kind (plus a did-you-mean suggestion),
        so the caller never has to hunt for the spelling.
        """
        return self.lookup(kind, name).obj

    def lookup(self, kind: str, name: str) -> Registration:
        """Like :meth:`get` but returns the full :class:`Registration`.

        A direct hit skips provider population: components registered by
        an already-imported module (the common case — e.g. encodings
        looked up from the embedder) resolve without importing the other
        provider modules.
        """
        table = self._table(kind)
        if name not in table:
            table = self._table(kind, populate=True)
        try:
            return table[name]
        except KeyError:
            raise RegistryError(
                self._unknown_message(name, {kind: table})) from None

    def find(self, name: str,
             kinds: "Iterable[str] | None" = None) -> Registration:
        """Resolve a name across several kinds (first match wins).

        Used by ``repro attack``, where a name may be either a
        registered attack or a plain transform.
        """
        search = tuple(kinds) if kinds is not None else self.KINDS
        tables = {kind: self._table(kind, populate=True) for kind in search}
        for kind in search:
            if name in tables[kind]:
                return tables[kind][name]
        raise RegistryError(self._unknown_message(name, tables))

    def names(self, kind: str) -> "tuple[str, ...]":
        """Registered names of one kind, in registration order."""
        return tuple(self._table(kind, populate=True))

    def describe(self, kind: str) -> "dict[str, str]":
        """``{name: description}`` for one kind (for docs and ``repro list``)."""
        return {name: reg.description
                for name, reg in self._table(kind, populate=True).items()}

    def snapshot(self) -> "dict[str, dict[str, str]]":
        """Full ``{kind: {name: description}}`` view of the registry."""
        return {kind: self.describe(kind) for kind in self.KINDS}

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _table(self, kind: str,
               populate: bool = False) -> "dict[str, Registration]":
        if kind not in self._tables:
            raise RegistryError(
                f"unknown component kind {kind!r}; kinds are {self.KINDS}"
            )
        if populate:
            self._ensure_populated()
        return self._tables[kind]

    def _ensure_populated(self) -> None:
        # Reentrancy guard: provider modules call back into the registry
        # while they are being imported (self-registration), and some of
        # them read `names()` at module scope.
        if self._populated or self._populating:
            return
        self._populating = True
        try:
            for module in self.provider_modules:
                importlib.import_module(module)
            self._populated = True
        finally:
            self._populating = False

    @staticmethod
    def _unknown_message(name: str,
                         tables: "dict[str, dict[str, Registration]]") -> str:
        valid: list[str] = []
        parts: list[str] = []
        for kind, table in tables.items():
            known = sorted(table)
            valid.extend(known)
            parts.append(f"{kind}s: {', '.join(known) if known else '(none)'}")
        kinds_text = " / ".join(tables)
        message = f"unknown {kinds_text} {name!r}; valid " + "; ".join(parts)
        close = difflib.get_close_matches(name, valid, n=1)
        if close:
            message += f". Did you mean {close[0]!r}?"
        return message


#: The process-wide registry instance used by the library and the CLI.
REGISTRY = ComponentRegistry()
