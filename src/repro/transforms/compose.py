"""Sequential composition of transforms (Fig 10(b)'s combined attack).

The paper evaluates a 25% sampling followed by a 25% summarization and
finds the combination "survived equally well".  :class:`Compose` builds
such pipelines from any callables of signature ``values -> values`` and
keeps a readable description for the benchmark report.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.errors import ParameterError
from repro.util.validation import as_float_array

Transform = Callable[[np.ndarray], np.ndarray]


class Compose:
    """Apply transforms left-to-right: ``Compose([f, g])(x) == g(f(x))``."""

    def __init__(self, steps: Sequence[tuple[str, Transform]]) -> None:
        if not steps:
            raise ParameterError("Compose requires at least one step")
        for name, func in steps:
            if not callable(func):
                raise ParameterError(f"step {name!r} is not callable")
        self._steps = list(steps)

    @classmethod
    def from_names(cls, specs: Sequence) -> "Compose":
        """Build a pipeline from registry-resolved transform names.

        Each spec is either a bare name or a ``(name, options)`` pair;
        names resolve through the central registry (transforms first,
        then attacks, so a gauntlet step like ``"epsilon"`` works too)::

            Compose.from_names([("sample", {"degree": 4}),
                                ("summarize", {"degree": 5})])
        """
        from repro.registry import REGISTRY  # local: registry is a consumer too

        steps: list[tuple[str, Transform]] = []
        for spec in specs:
            if isinstance(spec, str):
                name, options = spec, {}
            else:
                name, options = spec
            builder = REGISTRY.find(name, kinds=("transform", "attack")).obj
            steps.append((name, builder(**dict(options))))
        return cls(steps)

    @property
    def step_names(self) -> list[str]:
        """Names of the pipeline stages, in application order."""
        return [name for name, _ in self._steps]

    def __call__(self, values) -> np.ndarray:
        array = as_float_array(values, "values")
        for _, func in self._steps:
            array = as_float_array(func(array), "transformed values")
        return array

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Compose({' -> '.join(self.step_names)})"


def describe_pipeline(pipeline: Compose) -> str:
    """One-line human description used in benchmark output rows."""
    return " -> ".join(pipeline.step_names)
