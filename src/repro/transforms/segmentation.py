"""Segmentation transform (paper Sec 2.1, attack A3).

Mallory re-sells a finite chunk of the stream; the detector must be able
to recover the watermark from that chunk alone.  Sec 5 derives the
minimum segment size that beats a coin-flip (``η(σ, δ) · % `` items for a
one-bit mark) and Fig 10(a) measures detected bias as a function of
segment size — :func:`random_segment` is the workload generator for that
experiment.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.util.rng import make_rng
from repro.util.validation import as_float_array


def segment(values, start: int, length: int) -> np.ndarray:
    """Extract the contiguous segment ``[start, start + length)``."""
    array = as_float_array(values, "values")
    if length <= 0:
        raise ParameterError(f"segment length must be positive, got {length}")
    if start < 0 or start + length > array.size:
        raise ParameterError(
            f"segment [{start}, {start + length}) outside stream of "
            f"{array.size} items"
        )
    return array[start:start + length].copy()


def random_segment(values, length: int,
                   rng: "int | np.random.Generator | None" = None
                   ) -> np.ndarray:
    """Extract a uniformly positioned segment of ``length`` items."""
    array = as_float_array(values, "values")
    if length <= 0:
        raise ParameterError(f"segment length must be positive, got {length}")
    if length > array.size:
        raise ParameterError(
            f"segment length {length} exceeds stream length {array.size}"
        )
    generator = make_rng(rng)
    start = int(generator.integers(0, array.size - length + 1))
    return segment(array, start, length)
