"""Sampling transforms (paper Sec 2.2, attack A2).

*Uniform random sampling of degree σ* turns ``(x[.], ς)`` into
``(x'[.], ς/σ)`` by choosing, out of every contiguous σ-sized chunk of
the original, one value at a uniformly random in-chunk position.

*Fixed random sampling of degree σ* is the paper's "subtle variation":
always the first element of each chunk is kept.

Both transforms destroy timestamps and shrink characteristic subsets by
a factor of about σ — which is exactly what the degree-estimation module
(:mod:`repro.core.degree`) exploits to re-calibrate majorness at
detection time.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.util.rng import make_rng
from repro.util.validation import as_float_array


def _check_degree(degree: int, n_items: int) -> None:
    if degree < 1:
        raise ParameterError(f"sampling degree must be >= 1, got {degree}")
    if degree > n_items:
        raise ParameterError(
            f"sampling degree {degree} exceeds stream length {n_items}"
        )


def uniform_random_sampling(values, degree: int,
                            rng: "int | np.random.Generator | None" = None
                            ) -> np.ndarray:
    """Keep one uniformly-chosen value from every ``degree``-sized chunk.

    The trailing partial chunk (fewer than ``degree`` items) also
    contributes one sample, drawn uniformly from whatever it holds, so no
    stream suffix is silently dropped.

    >>> out = uniform_random_sampling(range(100), degree=10, rng=0)
    >>> len(out)
    10
    """
    array = as_float_array(values, "values")
    _check_degree(degree, array.size)
    if degree == 1:
        return array.copy()
    generator = make_rng(rng)
    n_full = array.size // degree
    offsets = generator.integers(0, degree, size=n_full)
    indices = np.arange(n_full) * degree + offsets
    remainder = array.size - n_full * degree
    if remainder > 0:
        tail_index = n_full * degree + int(generator.integers(0, remainder))
        indices = np.concatenate([indices, [tail_index]])
    return array[indices]


def fixed_random_sampling(values, degree: int) -> np.ndarray:
    """Keep the first element of every ``degree``-sized chunk.

    Deterministic decimation — the paper's *fixed random sampling*.

    >>> fixed_random_sampling([0., 1., 2., 3., 4., 5.], degree=2).tolist()
    [0.0, 2.0, 4.0]
    """
    array = as_float_array(values, "values")
    _check_degree(degree, array.size)
    if degree == 1:
        return array.copy()
    return array[::degree].copy()
