"""Domain-specific stream transforms (paper Sec 2.1/2.2, A1-A4).

These are the *natural* operations a licensed consumer applies to a
sensor stream — and therefore the transforms a watermark must survive:

* :mod:`repro.transforms.sampling` — (A2) uniform / fixed random sampling;
* :mod:`repro.transforms.summarization` — (A1) chunk-averaging, plus the
  paper's future-work aggregates (min / max / median);
* :mod:`repro.transforms.segmentation` — (A3) finite segment extraction;
* :mod:`repro.transforms.linear` — (A4) scaling and offset changes;
* :mod:`repro.transforms.compose` — sequential composition (Fig 10(b)'s
  combined sampling x summarization experiment).
"""

from repro.transforms.compose import Compose, describe_pipeline
from repro.transforms.linear import linear_transform
from repro.transforms.sampling import fixed_random_sampling, uniform_random_sampling
from repro.transforms.segmentation import random_segment, segment
from repro.transforms.summarization import summarize

__all__ = [
    "Compose",
    "describe_pipeline",
    "linear_transform",
    "fixed_random_sampling",
    "uniform_random_sampling",
    "random_segment",
    "segment",
    "summarize",
]
