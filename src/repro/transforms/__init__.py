"""Domain-specific stream transforms (paper Sec 2.1/2.2, A1-A4).

These are the *natural* operations a licensed consumer applies to a
sensor stream — and therefore the transforms a watermark must survive:

* :mod:`repro.transforms.sampling` — (A2) uniform / fixed random sampling;
* :mod:`repro.transforms.summarization` — (A1) chunk-averaging, plus the
  paper's future-work aggregates (min / max / median);
* :mod:`repro.transforms.segmentation` — (A3) finite segment extraction;
* :mod:`repro.transforms.linear` — (A4) scaling and offset changes;
* :mod:`repro.transforms.compose` — sequential composition (Fig 10(b)'s
  combined sampling x summarization experiment).

Each transform also registers a *builder* with the central
:class:`repro.registry.ComponentRegistry` under kind ``"transform"``:
``REGISTRY.get("transform", "sample")(degree=4, rng=0)`` returns a
``values -> values`` callable, which is the currency of
:class:`Compose`, the streaming :class:`repro.pipeline.Pipeline` and the
``repro attack`` CLI.
"""

from __future__ import annotations

from repro.registry import REGISTRY
from repro.transforms.compose import Compose, describe_pipeline
from repro.transforms.linear import linear_transform
from repro.transforms.sampling import fixed_random_sampling, uniform_random_sampling
from repro.transforms.segmentation import random_segment, segment
from repro.transforms.summarization import summarize

__all__ = [
    "Compose",
    "describe_pipeline",
    "linear_transform",
    "fixed_random_sampling",
    "uniform_random_sampling",
    "random_segment",
    "segment",
    "summarize",
]


# ----------------------------------------------------------------------
# registry builders: options in, `values -> values` callable out
# ----------------------------------------------------------------------
@REGISTRY.register("transform", "sample",
                   description="(A2) uniform random sampling of degree "
                               "`degree` (keep one item in `degree`)")
def _build_sample(degree: int = 2, rng=None):
    """Builder for uniform random sampling."""
    def apply(values):
        return uniform_random_sampling(values, degree, rng=rng)
    return apply


@REGISTRY.register("transform", "sample-fixed",
                   description="(A2) fixed random sampling: keep every "
                               "`degree`-th item")
def _build_sample_fixed(degree: int = 2):
    """Builder for fixed (strided) sampling."""
    def apply(values):
        return fixed_random_sampling(values, degree)
    return apply


@REGISTRY.register("transform", "summarize",
                   description="(A1) summarization of degree `degree` "
                               "(chunk `aggregate`, default mean)")
def _build_summarize(degree: int = 2, aggregate: str = "mean"):
    """Builder for chunk summarization."""
    def apply(values):
        return summarize(values, degree, aggregate=aggregate)
    return apply


@REGISTRY.register("transform", "segment",
                   description="(A3) random contiguous segment: `length` "
                               "items or a `fraction` of the stream "
                               "(default: half)")
def _build_segment(length: "int | None" = None,
                   fraction: "float | None" = None, rng=None):
    """Builder for random segment extraction.

    An absolute ``length`` wins over a relative ``fraction``; with
    neither, half the stream is kept.
    """
    def apply(values):
        if length is not None:
            n = length
        elif fraction is not None:
            n = max(2, int(fraction * len(values)))
        else:
            n = max(2, len(values) // 2)
        return random_segment(values, n, rng=rng)
    return apply


@REGISTRY.register("transform", "linear",
                   description="(A4) affine value change: "
                               "`scale` * x + `offset`")
def _build_linear(scale: float = 1.0, offset: float = 0.0):
    """Builder for linear (affine) value transforms."""
    def apply(values):
        return linear_transform(values, scale=scale, offset=offset)
    return apply
