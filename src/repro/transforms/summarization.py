"""Summarization transform (paper Sec 2.2, attack A1).

*Summarization of degree σ* replaces each contiguous, non-overlapping
σ-sized chunk of the stream by its average, turning ``(x[.], ς)`` into
``(x'[.], ς/σ)``.

This is the transform that breaks every prior relational/itemized
watermarking scheme (paper Sec 2.3) and the one the multi-hash encoding
is specifically built to survive: a summarized chunk that falls entirely
inside a characteristic subset ``ξ(ε, δ) = {x1..xa}`` *is* one of the
``m_ij`` sub-range averages the encoding constrains.

The paper's conclusions propose investigating other aggregates (min,
max, most-likely-value) as future work; :func:`summarize` exposes those
through ``aggregate=`` so the benchmark harness can run the extension
experiments.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.util.validation import as_float_array

_AGGREGATES = ("mean", "min", "max", "median")


def summarize(values, degree: int, aggregate: str = "mean",
              keep_partial: bool = True) -> np.ndarray:
    """Replace each ``degree``-sized chunk by an aggregate value.

    Parameters
    ----------
    values:
        Stream values.
    degree:
        Chunk size σ; the output has ``ceil(n / degree)`` items (or
        ``floor`` when ``keep_partial`` is false).
    aggregate:
        ``"mean"`` (the paper's definition) or one of the future-work
        aggregates ``"min"``, ``"max"``, ``"median"``.
    keep_partial:
        Whether the trailing partial chunk contributes an output item.

    >>> summarize([1., 2., 3., 4.], degree=2).tolist()
    [1.5, 3.5]
    """
    array = as_float_array(values, "values")
    if degree < 1:
        raise ParameterError(f"summarization degree must be >= 1, got {degree}")
    if degree > array.size:
        raise ParameterError(
            f"summarization degree {degree} exceeds stream length {array.size}"
        )
    if aggregate not in _AGGREGATES:
        raise ParameterError(
            f"unknown aggregate {aggregate!r}; choose one of {_AGGREGATES}"
        )
    if degree == 1:
        return array.copy()

    n_full = array.size // degree
    body = array[: n_full * degree].reshape(n_full, degree)
    reducer = {
        "mean": np.mean,
        "min": np.min,
        "max": np.max,
        "median": np.median,
    }[aggregate]
    out = reducer(body, axis=1)

    remainder = array.size - n_full * degree
    if keep_partial and remainder > 0:
        tail = reducer(array[n_full * degree:])
        out = np.concatenate([out, [tail]])
    return np.asarray(out, dtype=np.float64)
