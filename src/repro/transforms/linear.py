"""Linear transform (paper attack A4).

"There might be value in actual data trends, that Mallory could still
exploit, by scaling the initial values" — i.e. publishing ``a*x + b``
instead of ``x``.  The paper handles this in the initial normalization
step (footnote 1): re-normalizing the attacked stream recovers the same
canonical values, so detection is invariant to positive linear maps.
:func:`linear_transform` is the attack; the defense lives in
:class:`repro.streams.normalize.Normalizer`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.util.validation import as_float_array


def linear_transform(values, scale: float = 1.0, offset: float = 0.0) -> np.ndarray:
    """Return ``scale * values + offset``.

    ``scale`` must be non-zero; a negative scale flips the stream (minima
    become maxima), which re-normalization does *not* undo — the paper's
    model only claims resilience to value-preserving (positive) scalings,
    and the test-suite documents the negative-scale limitation.
    """
    array = as_float_array(values, "values")
    if scale == 0.0:
        raise ParameterError("scale must be non-zero (zero destroys the data)")
    if not np.isfinite(scale) or not np.isfinite(offset):
        raise ParameterError("scale and offset must be finite")
    return scale * array + offset
