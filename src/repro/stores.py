"""Pluggable checkpoint stores: where hub session checkpoints live.

A :class:`repro.hub.StreamHub` survives worker crashes by writing each
session's key-free checkpoint (``session.to_state()``) to a
:class:`CheckpointStore`.  The store contract is deliberately tiny —
latest-checkpoint-wins per stream id — so backends can range from a
process-local dict to a replicated object store:

* :class:`MemoryCheckpointStore` — in-process; used for LRU eviction of
  idle sessions when durability is not required, and in tests;
* :class:`DirectoryCheckpointStore` — one JSON file per stream in a
  directory, written atomically (temp file + ``fsync`` + ``os.replace``)
  so a crash mid-write can never leave a half checkpoint; arbitrary
  stream ids are percent-encoded into safe file names.

Every entry is a **versioned JSON envelope**::

    {"format_version": 1, "kind": "hub-checkpoint",
     "stream_id": "...", "sequence": 7, "state": {...}}

``sequence`` increments on every save, so operators (and ``repro hub
status``) can see checkpoint progress.  The secret keys are **never**
part of any entry — stores persist only what ``to_state()`` emits, and
that contract excludes key material by construction.

Both backends funnel through one JSON round-trip, so a state that the
directory backend would reject (non-serializable values) fails
identically in memory — no backend-dependent surprises.  All failure
modes raise :class:`repro.errors.CheckpointStoreError`.
"""

from __future__ import annotations

import abc
import json
import logging
import os
import shutil
import tempfile
from pathlib import Path
from urllib.parse import quote, unquote

from repro.errors import CheckpointStoreError
from repro.registry import REGISTRY

logger = logging.getLogger("repro.stores")

_STORE_VERSION = 1
_ENTRY_KIND = "hub-checkpoint"


def _make_entry(stream_id: str, state: dict, sequence: int) -> dict:
    if not isinstance(stream_id, str) or not stream_id:
        raise CheckpointStoreError(
            f"stream id must be a non-empty string, got {stream_id!r}"
        )
    if not isinstance(state, dict):
        raise CheckpointStoreError(
            f"checkpoint state for {stream_id!r} must be a dict, "
            f"got {type(state).__name__}"
        )
    return {
        "format_version": _STORE_VERSION,
        "kind": _ENTRY_KIND,
        "stream_id": stream_id,
        "sequence": int(sequence),
        "state": state,
    }


def validate_entry(entry, *, source: str) -> dict:
    """Check a decoded envelope; raise :class:`CheckpointStoreError` if bad.

    ``source`` names where the entry came from (a path, a stream id) so
    the error message points at the corrupt artifact.
    """
    if not isinstance(entry, dict):
        raise CheckpointStoreError(
            f"{source}: checkpoint entry must be a JSON object, "
            f"got {type(entry).__name__}"
        )
    unknown = set(entry) - {"format_version", "kind", "stream_id",
                            "sequence", "state"}
    if unknown:
        raise CheckpointStoreError(
            f"{source}: unknown checkpoint entry fields {sorted(unknown)}"
        )
    if entry.get("kind") != _ENTRY_KIND:
        raise CheckpointStoreError(
            f"{source}: expected entry kind {_ENTRY_KIND!r}, "
            f"got {entry.get('kind')!r}"
        )
    try:
        version = int(entry["format_version"])
    except (KeyError, TypeError, ValueError):
        raise CheckpointStoreError(
            f"{source}: checkpoint entry has no integer format_version "
            "(truncated write?)"
        ) from None
    if version > _STORE_VERSION:
        raise CheckpointStoreError(
            f"{source}: entry written by a newer library version "
            f"({version} > {_STORE_VERSION})"
        )
    if not isinstance(entry.get("stream_id"), str) or not entry["stream_id"]:
        raise CheckpointStoreError(
            f"{source}: entry carries no stream_id"
        )
    try:
        entry["sequence"] = int(entry["sequence"])
    except (KeyError, TypeError, ValueError):
        raise CheckpointStoreError(
            f"{source}: entry sequence is not an integer"
        ) from None
    if not isinstance(entry.get("state"), dict):
        raise CheckpointStoreError(
            f"{source}: entry state is not a dict (truncated checkpoint?)"
        )
    return entry


class CheckpointStore(abc.ABC):
    """Latest-checkpoint-wins storage for hub session states.

    Subclasses implement four text-level primitives (:meth:`_put`,
    :meth:`_get`, :meth:`_discard`, :meth:`_ids`); the envelope logic —
    JSON encoding, sequence numbering, validation — lives here once, so
    every backend accepts and rejects exactly the same payloads.
    """

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def save(self, stream_id: str, state: dict) -> int:
        """Persist ``state`` as the latest checkpoint; return its sequence.

        The sequence number starts at 1 and increments on every save of
        the same stream id (replacing the previous entry atomically).
        """
        previous = self._current_sequence(stream_id)
        entry = _make_entry(stream_id, state, previous + 1)
        try:
            text = json.dumps(entry)
        except (TypeError, ValueError) as exc:
            raise CheckpointStoreError(
                f"checkpoint state for {stream_id!r} is not "
                f"JSON-serializable: {exc}"
            ) from exc
        self._put(stream_id, text)
        return previous + 1

    def load(self, stream_id: str) -> dict:
        """Return the latest checkpointed session state for one stream."""
        return self.entry(stream_id)["state"]

    def entry(self, stream_id: str) -> dict:
        """Return the full validated envelope (state + sequence + id)."""
        raw = self._get(stream_id)
        if raw is None:
            raise CheckpointStoreError(
                f"no checkpoint stored for stream id {stream_id!r}"
            )
        return self._decode(raw, stream_id)

    def _decode(self, raw: str, stream_id: str) -> dict:
        try:
            decoded = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise CheckpointStoreError(
                f"checkpoint for {stream_id!r} is not valid JSON "
                f"(truncated or corrupt write?): {exc}"
            ) from exc
        return validate_entry(decoded, source=f"checkpoint {stream_id!r}")

    def delete(self, stream_id: str) -> None:
        """Drop one stream's checkpoint; missing ids are an error."""
        if not self._discard(stream_id):
            raise CheckpointStoreError(
                f"no checkpoint stored for stream id {stream_id!r}"
            )

    def ids(self) -> "tuple[str, ...]":
        """Every stream id with a stored checkpoint, sorted."""
        return tuple(sorted(self._ids()))

    def __contains__(self, stream_id: str) -> bool:
        """Membership test on stored stream ids."""
        return self._get(stream_id) is not None

    def __len__(self) -> int:
        """Number of streams with a stored checkpoint."""
        return len(self._ids())

    # ------------------------------------------------------------------
    # backend primitives
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _put(self, stream_id: str, text: str) -> None:
        """Store ``text`` as the latest entry for ``stream_id``."""

    @abc.abstractmethod
    def _get(self, stream_id: str) -> "str | None":
        """Return the stored entry text, or ``None`` when absent."""

    @abc.abstractmethod
    def _discard(self, stream_id: str) -> bool:
        """Remove the entry; return whether one existed."""

    @abc.abstractmethod
    def _ids(self) -> "list[str]":
        """Stream ids currently stored (any order)."""

    # ------------------------------------------------------------------
    def _current_sequence(self, stream_id: str) -> int:
        raw = self._get(stream_id)
        if raw is None:
            return 0
        # A present-but-corrupt entry propagates its error: silently
        # restarting the sequence over garbage would hide data loss.
        return self._decode(raw, stream_id)["sequence"]


@REGISTRY.register("store", "memory",
                   description="in-process checkpoint store (not durable; "
                               "eviction staging and tests)")
class MemoryCheckpointStore(CheckpointStore):
    """In-process checkpoint store (a dict of encoded entries).

    Holds entries as JSON text, not live dicts, so its accept/reject
    behaviour matches the durable backends exactly and stored states are
    immune to later mutation of the caller's dict.
    """

    def __init__(self) -> None:
        self._entries: "dict[str, str]" = {}

    def _put(self, stream_id: str, text: str) -> None:
        """Store the entry text in the process-local dict."""
        self._entries[stream_id] = text

    def _get(self, stream_id: str) -> "str | None":
        """Read the entry text from the dict."""
        if not isinstance(stream_id, str):
            return None
        return self._entries.get(stream_id)

    def _discard(self, stream_id: str) -> bool:
        """Remove the entry from the dict."""
        return self._entries.pop(stream_id, None) is not None

    def _ids(self) -> "list[str]":
        """All stream ids currently held."""
        return list(self._entries)


@REGISTRY.register("store", "directory",
                   description="durable one-file-per-stream store with "
                               "atomic writes")
class DirectoryCheckpointStore(CheckpointStore):
    """Durable checkpoint store: one atomically-written file per stream.

    Each save writes ``<quoted-stream-id>.json`` via a temporary file in
    the same directory, ``fsync``, then ``os.replace`` — so readers (and
    post-crash recovery) only ever observe either the previous complete
    checkpoint or the new complete checkpoint, never a torn write.
    Stream ids are percent-encoded (``urllib.parse.quote`` with no safe
    characters), so ids containing separators or unicode round-trip.

    **Generations.**  The store keeps the last ``generations - 1``
    superseded checkpoints per stream as ``<name>.json.1`` (newest
    old) … ``<name>.json.N`` (oldest).  When the latest entry turns out
    corrupt — a torn write that slipped past the atomic rename (bad
    disk, injected fault) — :meth:`entry` quarantines the damaged file
    to ``<dir>/corrupt/``, promotes the newest intact generation back
    to latest, and returns it, counting the event in
    :attr:`fallbacks`/:attr:`quarantined` and logging loudly.  Callers
    observe a *valid but older* checkpoint, which the serving layer
    already treats like a crash-rewind: the client replays the gap, so
    exactly-once delivery holds.  With ``generations=1`` (or no intact
    generation left) corruption raises, as before.
    """

    def __init__(self, path: "str | Path", *, create: bool = True,
                 generations: int = 3) -> None:
        self._dir = Path(path)
        self._generations = max(1, int(generations))
        #: Times ``entry()`` fell back to an older generation.
        self.fallbacks = 0
        #: Corrupt files moved aside to ``<dir>/corrupt/``.
        self.quarantined = 0
        if self._dir.exists() and not self._dir.is_dir():
            raise CheckpointStoreError(
                f"checkpoint store path {self._dir} exists and is not "
                "a directory"
            )
        if not self._dir.exists():
            if not create:
                raise CheckpointStoreError(
                    f"checkpoint store directory {self._dir} does not exist"
                )
            self._dir.mkdir(parents=True, exist_ok=True)

    @property
    def path(self) -> Path:
        """The backing directory."""
        return self._dir

    @property
    def generations(self) -> int:
        """How many checkpoints (latest + older) are kept per stream."""
        return self._generations

    def _file_for(self, stream_id: str) -> Path:
        return self._dir / (quote(stream_id, safe="") + ".json")

    def _generation_file(self, stream_id: str, generation: int) -> Path:
        # Suffixed past ".json" so _ids() never mistakes a generation
        # for a live entry.
        return self._dir / (quote(stream_id, safe="")
                            + f".json.{generation}")

    def _rotate_generations(self, stream_id: str, target: Path) -> None:
        """Shift old generations up and snapshot the current latest.

        The latest file is *linked* (same inode) into generation 1
        rather than moved, so there is never an instant without a
        complete latest entry on disk; the subsequent ``os.replace`` of
        the new entry then atomically supersedes it.
        """
        if self._generations <= 1 or not target.exists():
            return
        for generation in range(self._generations - 1, 1, -1):
            source = self._generation_file(stream_id, generation - 1)
            if source.exists():
                os.replace(source, self._generation_file(stream_id,
                                                         generation))
        newest = self._generation_file(stream_id, 1)
        try:
            newest.unlink(missing_ok=True)
            os.link(target, newest)
        except OSError:  # pragma: no cover - filesystems without links
            shutil.copyfile(target, newest)

    def _put(self, stream_id: str, text: str) -> None:
        """Atomically replace the stream's file with the new entry."""
        target = self._file_for(stream_id)
        fd, tmp_name = tempfile.mkstemp(dir=self._dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
                handle.flush()
                os.fsync(handle.fileno())
            self._rotate_generations(stream_id, target)
            os.replace(tmp_name, target)
        except OSError as exc:
            raise CheckpointStoreError(
                f"cannot write checkpoint for {stream_id!r} "
                f"under {self._dir}: {exc}"
            ) from exc
        finally:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
        # Make the rename itself durable where the platform allows it.
        try:
            dir_fd = os.open(self._dir, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(dir_fd)
        except OSError:  # pragma: no cover - platform-dependent
            pass
        finally:
            os.close(dir_fd)

    # -- corruption recovery ---------------------------------------------
    def _quarantine(self, path: Path) -> Path:
        """Move a damaged file into ``<dir>/corrupt/`` (kept for
        forensics); returns the quarantine destination."""
        corrupt_dir = self._dir / "corrupt"
        corrupt_dir.mkdir(exist_ok=True)
        destination = corrupt_dir / path.name
        counter = 0
        while destination.exists():
            counter += 1
            destination = corrupt_dir / f"{path.name}.{counter}"
        os.replace(path, destination)
        self.quarantined += 1
        return destination

    def _fall_back(self, stream_id: str,
                   error: CheckpointStoreError) -> dict:
        """Quarantine the corrupt latest and promote the newest intact
        generation; raises the original error when none survives.

        The latest file is only moved aside once an intact generation
        has been found — otherwise the stream would vanish from the
        store and an unrecoverable corruption would masquerade as a
        concurrent delete to callers that re-check membership."""
        for generation in range(1, self._generations):
            candidate = self._generation_file(stream_id, generation)
            try:
                raw = candidate.read_text()
            except FileNotFoundError:
                continue
            except OSError:  # pragma: no cover - unreadable generation
                continue
            try:
                entry = self._decode(raw, stream_id)
            except CheckpointStoreError:
                self._quarantine(candidate)
                continue
            # Promote: the generation file becomes the latest, and the
            # ones behind it shift down to close the gap.
            destination = self._quarantine(self._file_for(stream_id))
            os.replace(candidate, self._file_for(stream_id))
            for follower in range(generation + 1, self._generations):
                source = self._generation_file(stream_id, follower)
                if source.exists():
                    os.replace(source, self._generation_file(
                        stream_id, follower - generation))
            self.fallbacks += 1
            logger.error(
                "checkpoint for %r was corrupt (%s); quarantined to %s "
                "and fell back to generation %d (sequence %d) — the "
                "stream will rewind and replay",
                stream_id, error, destination, generation,
                entry["sequence"])
            return entry
        logger.error(
            "checkpoint for %r is corrupt (%s) and no intact generation "
            "remains; the damaged file is left in place", stream_id,
            error)
        raise error

    def entry(self, stream_id: str) -> dict:
        """The latest intact envelope, falling back a generation when
        the newest file is corrupt (see class docstring)."""
        try:
            return super().entry(stream_id)
        except CheckpointStoreError as error:
            if self._generations <= 1 \
                    or not self._file_for(stream_id).exists():
                raise
            return self._fall_back(stream_id, error)

    def _current_sequence(self, stream_id: str) -> int:
        raw = self._get(stream_id)
        if raw is None:
            return 0
        try:
            return self._decode(raw, stream_id)["sequence"]
        except CheckpointStoreError:
            # entry() quarantines the damage and recovers the newest
            # intact generation — or re-raises when there is none
            # (silently restarting the sequence over garbage would
            # hide data loss).
            return self.entry(stream_id)["sequence"]

    def _get(self, stream_id: str) -> "str | None":
        """Read the stream's file; absent file means absent entry."""
        if not isinstance(stream_id, str) or not stream_id:
            return None
        try:
            return self._file_for(stream_id).read_text()
        except FileNotFoundError:
            return None
        except OSError as exc:
            raise CheckpointStoreError(
                f"cannot read checkpoint for {stream_id!r}: {exc}"
            ) from exc

    def _discard(self, stream_id: str) -> bool:
        """Unlink the stream's file (and its retained generations)."""
        try:
            self._file_for(stream_id).unlink()
        except FileNotFoundError:
            return False
        except OSError as exc:
            raise CheckpointStoreError(
                f"cannot delete checkpoint for {stream_id!r}: {exc}"
            ) from exc
        for generation in range(1, self._generations):
            try:
                self._generation_file(stream_id, generation).unlink()
            except FileNotFoundError:
                pass
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
        return True

    def _ids(self) -> "list[str]":
        """Decode stream ids back from the directory's file names."""
        return [unquote(entry.name[:-len(".json")])
                for entry in self._dir.iterdir()
                if entry.is_file() and entry.name.endswith(".json")]


def build_store(backend: str, path: "str | Path | None" = None,
                **options) -> CheckpointStore:
    """Construct a registered store backend by name.

    Directory-style backends (anything whose constructor takes a
    leading ``path``) require ``path``; process-local backends reject
    it.  The name resolves through :data:`repro.registry.REGISTRY`, so
    a plugin store registered under ``"store"`` is immediately usable
    by ``repro serve --store-backend``.
    """
    cls = REGISTRY.get("store", backend)
    try:
        if path is not None:
            return cls(path, **options)
        return cls(**options)
    except TypeError as exc:
        expects = "does not take" if path is not None else "needs"
        raise CheckpointStoreError(
            f"store backend {backend!r} {expects} a path: {exc}"
        ) from exc
