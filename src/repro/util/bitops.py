"""Bit-level primitives implementing the paper's bit notation.

The paper (Sec 2.2) defines, for any numeric value ``x``:

* ``b(x)`` — the number of bits required to represent ``x`` accurately;
* ``msb(x, b)`` — the most significant ``b`` bits of ``x``; if ``b(x) < b``
  the value is left-padded with ``b - b(x)`` zeroes to form a ``b``-bit
  result;
* ``lsb(x, b)`` — the least significant ``b`` bits of ``x``.

Stream values are handled as fixed-width unsigned integers produced by
:class:`repro.core.quantize.Quantizer`, so all helpers here operate on
non-negative Python ints with an explicit ``width``.  Bit index 0 is the
least significant bit.
"""

from __future__ import annotations

from repro.errors import ParameterError


def bit_length(x: int) -> int:
    """Return ``b(x)``, the number of bits needed to represent ``x``.

    Matches the paper's convention that ``b(0) == 1`` (a value still
    occupies one bit position); Python's ``int.bit_length`` returns 0 for
    0, which would make the ``msb`` padding rule degenerate.
    """
    if x < 0:
        raise ParameterError("bit_length is defined for non-negative ints")
    return max(1, x.bit_length())


def _check_width(x: int, width: int) -> None:
    if x < 0:
        raise ParameterError(f"value must be non-negative, got {x}")
    if width <= 0:
        raise ParameterError(f"width must be positive, got {width}")
    if x.bit_length() > width:
        raise ParameterError(
            f"value {x} does not fit in {width} bits "
            f"(needs {x.bit_length()})"
        )


def msb(x: int, b: int, width: int) -> int:
    """Return the most significant ``b`` bits of ``x`` seen as ``width`` bits.

    Implements the paper's ``msb(x, b)`` including the left-padding rule:
    the value is first interpreted as a ``width``-bit word (left padded
    with zeroes), then the top ``b`` bits are extracted.

    >>> msb(0b1011_0000, 4, 8)
    11
    """
    _check_width(x, width)
    if b <= 0:
        raise ParameterError(f"msb bit count must be positive, got {b}")
    if b >= width:
        return x
    return x >> (width - b)


def lsb(x: int, b: int) -> int:
    """Return the least significant ``b`` bits of ``x`` (paper's ``lsb``).

    >>> lsb(0b1011_0110, 4)
    6
    """
    if x < 0:
        raise ParameterError(f"value must be non-negative, got {x}")
    if b <= 0:
        raise ParameterError(f"lsb bit count must be positive, got {b}")
    return x & ((1 << b) - 1)


def get_bit(x: int, position: int) -> int:
    """Return bit ``position`` of ``x`` (0 = least significant)."""
    if position < 0:
        raise ParameterError(f"bit position must be >= 0, got {position}")
    return (x >> position) & 1


def set_bit(x: int, position: int) -> int:
    """Return ``x`` with bit ``position`` forced to 1."""
    if position < 0:
        raise ParameterError(f"bit position must be >= 0, got {position}")
    return x | (1 << position)


def clear_bit(x: int, position: int) -> int:
    """Return ``x`` with bit ``position`` forced to 0."""
    if position < 0:
        raise ParameterError(f"bit position must be >= 0, got {position}")
    return x & ~(1 << position)


def with_bit(x: int, position: int, value: bool | int) -> int:
    """Return ``x`` with bit ``position`` set to ``value``.

    This is the primitive behind the initial encoding's
    ``v[bit] <- wm[i]`` assignment (paper Fig 3).
    """
    return set_bit(x, position) if value else clear_bit(x, position)


def apply_guarded_bit(x: int, position: int, value: bool | int) -> int:
    """Write ``value`` at ``position`` and zero the two adjacent guard bits.

    Implements the initial embedding's triple-write (paper Sec 3.2)::

        v[bit - 1] <- false ; v[bit] <- wm[i] ; v[bit + 1] <- false

    The guard zeroes prevent carry/overflow from corrupting the payload
    bit when subsets are averaged during summarization.  ``position`` must
    leave room for both guards (``position >= 1``).
    """
    if position < 1:
        raise ParameterError(
            f"guarded bit position must be >= 1 to fit the low guard, "
            f"got {position}"
        )
    x = clear_bit(x, position - 1)
    x = with_bit(x, position, value)
    x = clear_bit(x, position + 1)
    return x


def read_guarded_bit(x: int, position: int) -> int:
    """Read back a payload bit written by :func:`apply_guarded_bit`."""
    return get_bit(x, position)


def replace_lsb(x: int, new_low: int, b: int) -> int:
    """Return ``x`` with its ``b`` least significant bits replaced.

    Used by the multi-hash and quadratic-residue encodings, which search
    over the ``alpha`` low-order bits of each subset member while leaving
    the high-order (selection / label) bits untouched.
    """
    if x < 0:
        raise ParameterError(f"value must be non-negative, got {x}")
    if b <= 0:
        raise ParameterError(f"lsb bit count must be positive, got {b}")
    if new_low.bit_length() > b:
        raise ParameterError(
            f"replacement {new_low} does not fit in {b} bits"
        )
    mask = (1 << b) - 1
    return (x & ~mask) | (new_low & mask)


def bits_to_int(bits: "list[int] | tuple[int, ...] | str") -> int:
    """Pack a most-significant-first bit sequence into an int.

    Accepts a list/tuple of 0/1 ints or a string of ``'0'``/``'1'``
    characters (the label representation used in paper Fig 2, e.g.
    ``"110100"``).
    """
    value = 0
    for bit in bits:
        bit_value = int(bit)
        if bit_value not in (0, 1):
            raise ParameterError(f"bit sequence contains non-bit {bit!r}")
        value = (value << 1) | bit_value
    return value


def int_to_bits(x: int, width: int) -> list[int]:
    """Unpack ``x`` into a most-significant-first list of ``width`` bits."""
    _check_width(x, width)
    return [(x >> (width - 1 - i)) & 1 for i in range(width)]
