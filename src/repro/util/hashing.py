"""The keyed one-way hash ``H(V, k)`` used throughout the scheme.

The paper (Sec 2.2) relies on a cryptographic one-way hash and defines::

    H(V, k) = crypto_hash(k ; V ; k)        (";" is concatenation)

Only two properties are used: one-wayness (Mallory cannot invert the
selection criterion) and diffusion (flipping one input bit flips about
half the output bits, which is what makes the multi-hash encoding's
output look random).  The proof-of-concept in the paper uses MD5; we
default to MD5 for fidelity and allow SHA-256 via ``algorithm=``.

The hash output is interpreted as a big-endian unsigned integer so it can
feed the paper's ``H(...) mod phi`` selection and ``H(...) mod alpha``
bit-position computations directly.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.errors import KeyError_, ParameterError

_SUPPORTED_ALGORITHMS = ("md5", "sha1", "sha256", "sha512")


def _coerce_key(key: "bytes | str | int") -> bytes:
    """Normalize a user-supplied secret key into non-empty bytes."""
    if isinstance(key, bytes):
        raw = key
    elif isinstance(key, str):
        raw = key.encode("utf-8")
    elif isinstance(key, int):
        if key < 0:
            raise KeyError_("integer keys must be non-negative")
        raw = key.to_bytes((key.bit_length() + 7) // 8 or 1, "big")
    else:
        raise KeyError_(f"unsupported key type: {type(key).__name__}")
    if not raw:
        raise KeyError_("secret key must not be empty")
    return raw


def _coerce_value(value: "int | bytes | str") -> bytes:
    """Serialize a hash input deterministically.

    Integers are encoded big-endian with a length prefix so that distinct
    (value, width) pairs cannot collide by sharing a byte representation.
    """
    if isinstance(value, bool):
        raise ParameterError("pass ints, not bools, to the hash")
    if isinstance(value, int):
        if value < 0:
            raise ParameterError("hash inputs must be non-negative ints")
        body = value.to_bytes((value.bit_length() + 7) // 8 or 1, "big")
        return len(body).to_bytes(4, "big") + body
    if isinstance(value, str):
        body = value.encode("utf-8")
        return len(body).to_bytes(4, "big") + body
    if isinstance(value, bytes):
        return len(value).to_bytes(4, "big") + value
    raise ParameterError(f"unsupported hash input type: {type(value).__name__}")


def hash_to_int(data: bytes, algorithm: str = "md5") -> int:
    """Hash raw bytes and return the digest as a big-endian integer."""
    if algorithm not in _SUPPORTED_ALGORITHMS:
        raise ParameterError(
            f"unsupported hash algorithm {algorithm!r}; "
            f"choose one of {_SUPPORTED_ALGORITHMS}"
        )
    digest = hashlib.new(algorithm, data).digest()
    return int.from_bytes(digest, "big")


def H(value: "int | bytes | str", key: "bytes | str | int",
      algorithm: str = "md5") -> int:
    """The paper's ``H(V, k) = crypto_hash(k; V; k)`` as an integer.

    >>> H(42, b"k1") == H(42, b"k1")
    True
    >>> H(42, b"k1") != H(43, b"k1")
    True
    """
    key_bytes = _coerce_key(key)
    payload = key_bytes + _coerce_value(value) + key_bytes
    return hash_to_int(payload, algorithm)


@dataclass(frozen=True)
class KeyedHasher:
    """A reusable ``H(., k1)`` bound to one secret key.

    The embedder, detector and selection criterion all share a single
    :class:`KeyedHasher` so the key is threaded through the system once.

    A digest context pre-fed with the leading key of the keyed sandwich
    is kept and ``copy()``-ed per call, so the per-probe cost is one
    block update instead of a from-scratch ``hashlib.new`` over
    ``key + value + key`` — the selection criterion hashes once per
    major extreme, which put context setup on the scanning hot path.

    Parameters
    ----------
    key:
        The secret ``k1`` from the paper.  Accepts bytes, str or int.
    algorithm:
        Hash algorithm name (default ``"md5"``, as in the paper's
        proof-of-concept implementation).
    """

    key: bytes = field(repr=False)
    algorithm: str = "md5"

    def __init__(self, key: "bytes | str | int", algorithm: str = "md5"):
        object.__setattr__(self, "key", _coerce_key(key))
        if algorithm not in _SUPPORTED_ALGORITHMS:
            raise ParameterError(
                f"unsupported hash algorithm {algorithm!r}; "
                f"choose one of {_SUPPORTED_ALGORITHMS}"
            )
        object.__setattr__(self, "algorithm", algorithm)
        base = hashlib.new(algorithm)
        base.update(self.key)
        object.__setattr__(self, "_base_context", base)

    def __reduce__(self):
        """Pickle as ``(key, algorithm)`` — the digest context is not
        picklable, but it is derived state the constructor rebuilds.
        Needed so detection tasks can cross a process-pool boundary.
        """
        return (KeyedHasher, (self.key, self.algorithm))

    def hash_int(self, value: "int | bytes | str") -> int:
        """Return ``H(value, key)`` as an unbounded integer."""
        digest_context = self._base_context.copy()
        digest_context.update(_coerce_value(value))
        digest_context.update(self.key)
        return int.from_bytes(digest_context.digest(), "big")

    def mod(self, value: "int | bytes | str", modulus: int) -> int:
        """Return ``H(value, key) mod modulus`` (paper's selection form)."""
        if modulus <= 0:
            raise ParameterError(f"modulus must be positive, got {modulus}")
        return self.hash_int(value) % modulus

    def mod_text(self, text: str, modulus: int) -> int:
        """:meth:`mod` of a string input, with the coercion inlined.

        Identical digest input to ``mod(text, modulus)`` (length-prefixed
        UTF-8 between the two key copies); this is the per-major-extreme
        selection probe, hot enough that the generic dispatch layers
        show up in profiles.  The modulus is trusted (validated once at
        parameter construction).
        """
        body = text.encode("utf-8")
        digest_context = self._base_context.copy()
        digest_context.update(len(body).to_bytes(4, "big"))
        digest_context.update(body)
        digest_context.update(self.key)
        return int.from_bytes(digest_context.digest(), "big") % modulus

    def low_bits(self, value: "int | bytes | str", n_bits: int) -> int:
        """Return the ``n_bits`` least significant bits of ``H(value, key)``.

        This is the ``lsb(H(...), omega)`` operation of the multi-hash
        bit-encoding convention (paper Sec 4.3).
        """
        if n_bits <= 0:
            raise ParameterError(f"n_bits must be positive, got {n_bits}")
        return self.hash_int(value) & ((1 << n_bits) - 1)

    def derive(self, purpose: str) -> "KeyedHasher":
        """Return a domain-separated sub-hasher for an auxiliary purpose.

        Used to keep e.g. the additive-attack distribution fitting and
        the encoding convention from sharing hash inputs with selection.
        """
        sub_key = hashlib.sha256(self.key + purpose.encode("utf-8")).digest()
        return KeyedHasher(sub_key, self.algorithm)


class PatternProber:
    """Batched ``lsb(H(avg_key, label), ω)`` probes with a bounded memo.

    This is the multi-hash convention probe (paper Sec 4.3) factored out
    of the encoding so both search and detection share one memo and one
    pre-fed digest context.  The payload is the fixed-width keyed
    sandwich ``hash(k ; avg_key_8B ; label_8B ; k)`` — identical bytes to
    :func:`repro.core.encoding_multihash.convention_pattern`.

    The memo is bounded; when full, the *oldest half* is evicted
    (dict insertion order) instead of wiping the table.  A full wipe
    throws away the hot ``(avg_key, label)`` pairs the pruned search is
    actively re-testing across backtracking candidates, forcing a
    re-hash storm exactly when the search is struggling; keeping the
    young half preserves the working set at the same O(1) amortized
    bookkeeping cost.

    ``probes``/``misses`` count lifetime lookups and memo misses for
    the observability layer (hit rate = 1 - misses/probes).  They are
    plain ints maintained amortized — one add per bulk call, one add
    per miss (the branch that already pays for an md5 digest) — and are
    *read* only at snapshot time, never pushed into a registry from the
    hot loop.
    """

    __slots__ = ("_key", "_mask", "_copy", "_memo", "_limit",
                 "probes", "misses")

    def __init__(self, key: bytes, omega: int, algorithm: str = "md5",
                 memo_limit: int = 1 << 16) -> None:
        if algorithm not in _SUPPORTED_ALGORITHMS:
            raise ParameterError(
                f"unsupported hash algorithm {algorithm!r}; "
                f"choose one of {_SUPPORTED_ALGORITHMS}"
            )
        if omega < 1:
            raise ParameterError(f"omega must be >= 1, got {omega}")
        if memo_limit < 2:
            raise ParameterError(
                f"memo_limit must be >= 2, got {memo_limit}")
        self._key = _coerce_key(key)
        self._mask = (1 << omega) - 1
        base = hashlib.new(algorithm)
        base.update(self._key)
        self._copy = base.copy
        self._memo: "dict[tuple[int, int], int]" = {}
        self._limit = memo_limit
        self.probes = 0
        self.misses = 0

    def pattern(self, avg_key: int, label: int) -> int:
        """One convention probe (memoized)."""
        probe = (avg_key, label)
        memo = self._memo
        self.probes += 1
        found = memo.get(probe)
        if found is None:
            self.misses += 1
            context = self._copy()
            context.update(avg_key.to_bytes(8, "big")
                           + label.to_bytes(8, "big") + self._key)
            found = int.from_bytes(context.digest()[-3:], "big") & self._mask
            if len(memo) >= self._limit:
                self._evict()
            memo[probe] = found
        return found

    def patterns(self, avg_keys, label: int) -> "list[int]":
        """Probe many averages against one label in a tight loop.

        Accepts any iterable of ints (numpy arrays included); returns a
        plain list aligned with the input.  Locals are bound outside the
        loop — this is the per-candidate hot path of the batched search.
        """
        memo = self._memo
        copy = self._copy
        mask = self._mask
        tail = label.to_bytes(8, "big") + self._key
        out: "list[int]" = []
        append = out.append
        misses = 0
        for avg_key in (avg_keys.tolist()
                        if hasattr(avg_keys, "tolist") else avg_keys):
            probe = (avg_key, label)
            found = memo.get(probe)
            if found is None:
                misses += 1
                context = copy()
                context.update(avg_key.to_bytes(8, "big") + tail)
                found = int.from_bytes(context.digest()[-3:], "big") & mask
                if len(memo) >= self._limit:
                    self._evict()
                memo[probe] = found
            append(found)
        self.probes += len(out)
        self.misses += misses
        return out

    def _evict(self) -> None:
        """Drop the oldest half of the memo, keeping the recent entries."""
        memo = self._memo
        survivors = list(memo.items())[len(memo) // 2:]
        memo.clear()
        memo.update(survivors)

    def __len__(self) -> int:
        return len(self._memo)
