"""Low-level utilities shared across the :mod:`repro` package.

Contents
--------
:mod:`repro.util.bitops`
    Bit-level helpers implementing the paper's ``b(x)``, ``msb(x, b)`` and
    ``lsb(x, b)`` notation plus guard-bit manipulation.
:mod:`repro.util.hashing`
    The keyed one-way hash ``H(V, k) = crypto_hash(k; V; k)`` used by the
    selection criterion, the bit-position derivation and the multi-hash
    bit-encoding convention.
:mod:`repro.util.rng`
    Seeded random-number helpers so every experiment is replayable.
:mod:`repro.util.validation`
    Small argument validators shared by public entry points.
"""

from repro.util.bitops import (
    bit_length,
    clear_bit,
    get_bit,
    lsb,
    msb,
    set_bit,
    with_bit,
)
from repro.util.hashing import H, KeyedHasher, hash_to_int
from repro.util.rng import make_rng, split_rng

__all__ = [
    "bit_length",
    "clear_bit",
    "get_bit",
    "lsb",
    "msb",
    "set_bit",
    "with_bit",
    "H",
    "KeyedHasher",
    "hash_to_int",
    "make_rng",
    "split_rng",
]
