"""Seeded random-number helpers.

Every stochastic component in the library (generators, sampling
transforms, attacks, the multi-hash search) takes either a seed or a
:class:`numpy.random.Generator`.  Centralizing the coercion here keeps
experiments exactly replayable, which the benchmark harness relies on to
compare paper-vs-measured series across runs.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def make_rng(seed: "int | np.random.Generator | None" = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` yields a fresh OS-seeded generator; an existing generator is
    passed through untouched (so callers can share one stream of
    randomness across components when they want correlated draws).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def split_rng(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    Uses numpy's ``spawn`` when available (numpy >= 1.25) and falls back
    to seeding children from the parent's bit stream otherwise.
    """
    if n <= 0:
        return []
    if hasattr(rng, "spawn"):
        return list(rng.spawn(n))
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
