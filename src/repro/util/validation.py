"""Small argument validators shared by public entry points."""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError, StreamError


def require_positive(name: str, value: "int | float") -> None:
    """Raise :class:`ParameterError` unless ``value > 0``."""
    if not value > 0:
        raise ParameterError(f"{name} must be positive, got {value}")


def require_in_range(name: str, value: float, low: float, high: float,
                     inclusive: bool = False) -> None:
    """Raise unless ``value`` lies in ``(low, high)`` (or ``[low, high]``)."""
    ok = low <= value <= high if inclusive else low < value < high
    if not ok:
        bracket = "[]" if inclusive else "()"
        raise ParameterError(
            f"{name} must be in {bracket[0]}{low}, {high}{bracket[1]}, "
            f"got {value}"
        )


def as_float_array(values, name: str = "values") -> np.ndarray:
    """Coerce ``values`` into a 1-D float64 array, validating shape."""
    array = np.asarray(values, dtype=np.float64)
    if array.ndim != 1:
        raise StreamError(f"{name} must be one-dimensional, got shape {array.shape}")
    if array.size == 0:
        raise StreamError(f"{name} must not be empty")
    if not np.all(np.isfinite(array)):
        raise StreamError(f"{name} contains non-finite entries")
    return array


def require_normalized(values: np.ndarray, name: str = "values") -> None:
    """Check the paper's normalization precondition: values in (-0.5, 0.5)."""
    low = float(np.min(values))
    high = float(np.max(values))
    if low <= -0.5 or high >= 0.5:
        raise StreamError(
            f"{name} must be normalized into (-0.5, 0.5); "
            f"observed range [{low:.6g}, {high:.6g}]. "
            "Use repro.streams.normalize.Normalizer first."
        )
