"""repro — resilient rights protection for sensor streams.

A from-scratch Python reproduction of Sion, Atallah & Prabhakar,
*Resilient Rights Protection for Sensor Streams* (VLDB 2004): resilient
watermarking of numeric data streams in a single-pass, finite-window
model, surviving sampling, summarization, segmentation and random
alteration attacks.

The public API has two layers:

* **Streaming sessions** (production face): push-based
  :class:`ProtectionSession` / :class:`DetectionSession` with
  checkpoint/resume, composable via :class:`Pipeline`; a multi-tenant
  :class:`StreamHub` routes interleaved traffic across many
  independently-keyed sessions, checkpointing them through pluggable
  :class:`CheckpointStore` backends and recovering bit-identically
  after a crash; :mod:`repro.server` serves hubs over TCP (``repro
  serve``) with a framed protocol, credit-based flow control and a
  reconnect-and-resume client SDK; every pluggable component
  (encodings, transforms, attacks, generators, stores) resolves by
  name through the central :data:`REGISTRY`.
* **Offline conveniences** (paper-experiment face):
  :func:`watermark_stream`, :func:`detect_watermark` and
  :func:`detect_best` over in-memory arrays — thin wrappers over the
  same single-pass machinery.

Quickstart (offline)
--------------------
>>> import numpy as np
>>> from repro import WatermarkParams, watermark_stream, detect_watermark
>>> from repro.streams import TemperatureSensorGenerator
>>> from repro.transforms import uniform_random_sampling
>>>
>>> stream = TemperatureSensorGenerator(eta=60, seed=7).generate(6000)
>>> marked, report = watermark_stream(stream, watermark="1", key=b"k1")
>>> sampled = uniform_random_sampling(marked, degree=3, rng=0)
>>> result = detect_watermark(sampled, 1, key=b"k1", transform_degree=3.0)
>>> result.bias(0) > 0
True

Quickstart (streaming sessions)
-------------------------------
>>> from repro import ProtectionSession, DetectionSession
>>> session = ProtectionSession("1", key=b"k1")
>>> marked_chunks = [session.feed(chunk) for chunk in [stream[:3000]]]
>>> state = session.to_state()          # checkpoint, migrate anywhere ...
>>> session = ProtectionSession.from_state(state, key=b"k1")
>>> tail = [session.feed(stream[3000:]), session.finish()]

See README.md for the architecture overview and DESIGN.md for the
paper-to-module map.
"""

from repro.core.detector import (
    DetectionResult,
    StreamDetector,
    detect_best,
    detect_watermark,
)
from repro.core.embedder import EmbedReport, StreamWatermarker, watermark_stream
from repro.core.params import WatermarkParams
from repro.core.quality import (
    MaxAlteredFraction,
    MaxMeanDrift,
    MaxPerItemChange,
    MaxStdDrift,
    QualityMonitor,
)
from repro.core.quantize import Quantizer
from repro.core.watermark import bits_to_bytes, bits_to_text, to_bits
from repro.errors import (
    CheckpointStoreError,
    DetectionError,
    EncodingError,
    EncodingSearchExhausted,
    HubError,
    NormalizationError,
    ParameterError,
    ProtocolError,
    QualityConstraintViolated,
    RegistryError,
    RemoteError,
    ReproError,
    SessionStateError,
    StreamError,
)
from repro.hub import StreamHub, StreamStats, store_summary
from repro.pipeline import (
    DetectionSession,
    FunctionStage,
    NormalizeStage,
    Pipeline,
    ProtectionSession,
    TransformStage,
    session_from_state,
)
from repro.registry import REGISTRY, ComponentRegistry
from repro.stores import (
    CheckpointStore,
    DirectoryCheckpointStore,
    MemoryCheckpointStore,
    build_store,
)
from repro.streams.normalize import Normalizer
from repro.util.hashing import KeyedHasher

__version__ = "1.0.0"

__all__ = [
    "DetectionResult",
    "StreamDetector",
    "detect_best",
    "detect_watermark",
    "EmbedReport",
    "StreamWatermarker",
    "watermark_stream",
    "WatermarkParams",
    "MaxAlteredFraction",
    "MaxMeanDrift",
    "MaxPerItemChange",
    "MaxStdDrift",
    "QualityMonitor",
    "Quantizer",
    "bits_to_bytes",
    "bits_to_text",
    "to_bits",
    "DetectionError",
    "EncodingError",
    "EncodingSearchExhausted",
    "NormalizationError",
    "ParameterError",
    "QualityConstraintViolated",
    "RegistryError",
    "ReproError",
    "SessionStateError",
    "StreamError",
    "CheckpointStoreError",
    "HubError",
    "ProtocolError",
    "RemoteError",
    "DetectionSession",
    "FunctionStage",
    "NormalizeStage",
    "Pipeline",
    "ProtectionSession",
    "TransformStage",
    "session_from_state",
    "StreamHub",
    "StreamStats",
    "store_summary",
    "CheckpointStore",
    "DirectoryCheckpointStore",
    "MemoryCheckpointStore",
    "build_store",
    "REGISTRY",
    "ComponentRegistry",
    "Normalizer",
    "KeyedHasher",
    "__version__",
]
