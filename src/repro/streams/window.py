"""The finite processing window (paper Sec 2.2).

Any stream processing is space-bound: at any point in time no more than
``$`` stream values (or equivalent amounts of arbitrary data) can be
stored at the processing point.  As new data arrives, the default window
behaviour is to *push* the oldest items out (they are transmitted
further, out of the processing facility) and *shift* the window to free
space for new entries.

:class:`SlidingWindow` models exactly this: ``push`` admits new items and
returns whatever got evicted (the downstream/output side), ``advance``
implements the algorithms' "advance the window past ε" step, and
``flush`` drains the remainder at end-of-stream.  The watermarking
embedder mutates items *inside* the window before they are evicted, so
the single-pass constraint holds: once a value leaves the window it is
never touched again.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator

import numpy as np

from repro.errors import StreamError, WindowOverflowError


class SlidingWindow:
    """A bounded FIFO window over stream values with eviction on push.

    Parameters
    ----------
    capacity:
        The paper's ``$`` — maximum number of items held at once.

    Notes
    -----
    Items are stored as Python floats in a deque; the window is the only
    place where the embedder may rewrite values, via :meth:`replace`.
    ``start_index`` tracks the absolute stream position of the window's
    first element so extremes can be reported in stream coordinates.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 1:
            raise StreamError(
                f"window capacity must be at least 2, got {capacity}"
            )
        self._capacity = int(capacity)
        self._items: deque[float] = deque()
        self._start_index = 0

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Maximum number of items the window holds (``$``)."""
        return self._capacity

    @property
    def start_index(self) -> int:
        """Absolute stream index of the first item currently in-window."""
        return self._start_index

    @property
    def end_index(self) -> int:
        """Absolute stream index one past the last in-window item."""
        return self._start_index + len(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[float]:
        return iter(self._items)

    def is_full(self) -> bool:
        """True when a further push must evict."""
        return len(self._items) >= self._capacity

    def values(self) -> np.ndarray:
        """Snapshot of the current window contents as a float array."""
        return np.asarray(self._items, dtype=np.float64)

    def __getitem__(self, offset: int) -> float:
        """Read the item ``offset`` positions from the window start."""
        return self._items[offset]

    # ------------------------------------------------------------------
    # checkpoint / resume
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """JSON-compatible snapshot: capacity, start index and contents.

        Floats survive the JSON round-trip exactly (Python serializes
        the shortest repr that reparses to the same double), which is
        what makes checkpoint-resumed detection bit-identical.
        """
        return {
            "capacity": self._capacity,
            "start_index": self._start_index,
            "items": [float(v) for v in self._items],
        }

    @classmethod
    def from_state(cls, state: dict) -> "SlidingWindow":
        """Rebuild a window from :meth:`to_state` output."""
        window = cls(int(state["capacity"]))
        items = [float(v) for v in state["items"]]
        if len(items) > window.capacity:
            raise StreamError(
                f"window state holds {len(items)} items, capacity is "
                f"{window.capacity}"
            )
        window._items.extend(items)
        window._start_index = int(state["start_index"])
        return window

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def replace(self, offset: int, value: float) -> None:
        """Overwrite the in-window item at ``offset`` (embedder use only)."""
        if not 0 <= offset < len(self._items):
            raise StreamError(
                f"replace offset {offset} outside window of {len(self._items)}"
            )
        self._items[offset] = float(value)

    def push(self, value: float) -> "float | None":
        """Admit one new item; return the evicted oldest item if full.

        Eviction models the window "shift": the evicted value is the one
        leaving the processing facility and must be forwarded downstream
        by the caller.
        """
        evicted: "float | None" = None
        if len(self._items) >= self._capacity:
            evicted = self._items.popleft()
            self._start_index += 1
        self._items.append(float(value))
        return evicted

    def push_many(self, values: Iterable[float]) -> list[float]:
        """Push a batch; return all evicted items in order."""
        out: list[float] = []
        for value in values:
            evicted = self.push(value)
            if evicted is not None:
                out.append(evicted)
        return out

    def extend_no_evict(self, values: Iterable[float]) -> None:
        """Fill the window during warm-up; raises if capacity is exceeded."""
        for value in values:
            if len(self._items) >= self._capacity:
                raise WindowOverflowError(
                    f"extend_no_evict overflow at capacity {self._capacity}"
                )
            self._items.append(float(value))

    def advance(self, n: int) -> list[float]:
        """Evict (and return) the ``n`` oldest items.

        Implements the algorithms' ``advance win[] past ε`` step: after an
        extreme has been processed, everything up to and including it is
        released downstream.
        """
        if n < 0:
            raise StreamError(f"advance count must be >= 0, got {n}")
        n = min(n, len(self._items))
        out = [self._items.popleft() for _ in range(n)]
        self._start_index += n
        return out

    def flush(self) -> list[float]:
        """Evict everything (end-of-stream drain)."""
        return self.advance(len(self._items))
