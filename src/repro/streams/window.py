"""The finite processing window (paper Sec 2.2).

Any stream processing is space-bound: at any point in time no more than
``$`` stream values (or equivalent amounts of arbitrary data) can be
stored at the processing point.  As new data arrives, the default window
behaviour is to *push* the oldest items out (they are transmitted
further, out of the processing facility) and *shift* the window to free
space for new entries.

:class:`SlidingWindow` models exactly this: ``push`` admits new items and
returns whatever got evicted (the downstream/output side), ``advance``
implements the algorithms' "advance the window past ε" step, and
``flush`` drains the remainder at end-of-stream.  The watermarking
embedder mutates items *inside* the window before they are evicted, so
the single-pass constraint holds: once a value leaves the window it is
never touched again.

Performance architecture
------------------------
The window is backed by a preallocated float64 buffer of twice the
capacity.  Live items always occupy one contiguous run ``[head, head +
count)``; when the run's tail reaches the end of the buffer, the run is
compacted back to the front (amortized O(1) per item, and never more
than one copy of at most ``capacity`` items per ``capacity`` pushes).
Contiguity is what lets :meth:`values` hand out a **zero-copy view**:
the scanner's drain loop reads the window once per pending pivot, and
rebuilding an O(window) array each time used to dominate the hot path.
Bulk ingestion (:meth:`push_chunk`) and bulk eviction
(:meth:`advance_array`) move whole chunks with array copies instead of
per-item Python calls.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.errors import StreamError, WindowOverflowError

_EMPTY = np.empty(0, dtype=np.float64)


class SlidingWindow:
    """A bounded FIFO window over stream values with eviction on push.

    Parameters
    ----------
    capacity:
        The paper's ``$`` — maximum number of items held at once.

    Notes
    -----
    Items are stored in a preallocated float64 ring buffer; the window is
    the only place where the embedder may rewrite values, via
    :meth:`replace`.  ``start_index`` tracks the absolute stream position
    of the window's first element so extremes can be reported in stream
    coordinates.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 1:
            raise StreamError(
                f"window capacity must be at least 2, got {capacity}"
            )
        self._capacity = int(capacity)
        self._buffer = np.empty(2 * self._capacity, dtype=np.float64)
        self._head = 0
        self._count = 0
        self._start_index = 0

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Maximum number of items the window holds (``$``)."""
        return self._capacity

    @property
    def start_index(self) -> int:
        """Absolute stream index of the first item currently in-window."""
        return self._start_index

    @property
    def end_index(self) -> int:
        """Absolute stream index one past the last in-window item."""
        return self._start_index + self._count

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[float]:
        return iter(self.values().tolist())

    def is_full(self) -> bool:
        """True when a further push must evict."""
        return self._count >= self._capacity

    def values(self) -> np.ndarray:
        """The current window contents as a contiguous float64 array.

        This is a **zero-copy view** into the window's backing buffer: it
        stays valid (and tracks :meth:`replace` mutations) until the next
        push or compaction.  Callers that need an immutable snapshot
        across pushes must copy.
        """
        return self._buffer[self._head:self._head + self._count]

    def __getitem__(self, offset: int) -> float:
        """Read the item ``offset`` positions from the window start."""
        if not -self._count <= offset < self._count:
            raise IndexError(
                f"window offset {offset} outside window of {self._count}"
            )
        if offset < 0:
            offset += self._count
        return float(self._buffer[self._head + offset])

    # ------------------------------------------------------------------
    # checkpoint / resume
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """JSON-compatible snapshot: capacity, start index and contents.

        Floats survive the JSON round-trip exactly (Python serializes
        the shortest repr that reparses to the same double), which is
        what makes checkpoint-resumed detection bit-identical.
        """
        return {
            "capacity": self._capacity,
            "start_index": self._start_index,
            "items": self.values().tolist(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "SlidingWindow":
        """Rebuild a window from :meth:`to_state` output."""
        window = cls(int(state["capacity"]))
        items = np.asarray(state["items"], dtype=np.float64).ravel()
        if items.size > window.capacity:
            raise StreamError(
                f"window state holds {items.size} items, capacity is "
                f"{window.capacity}"
            )
        start_index = int(state["start_index"])
        if start_index < 0:
            raise StreamError(
                f"window state has negative start_index {start_index}; "
                "absolute extreme indices would silently corrupt on resume"
            )
        window._buffer[:items.size] = items
        window._count = items.size
        window._start_index = start_index
        return window

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def replace(self, offset: int, value: float) -> None:
        """Overwrite the in-window item at ``offset`` (embedder use only)."""
        if not 0 <= offset < self._count:
            raise StreamError(
                f"replace offset {offset} outside window of {self._count}"
            )
        self._buffer[self._head + offset] = float(value)

    def _make_room(self, incoming: int) -> None:
        """Compact the live run to the buffer front if the tail would
        overrun.  Disjointness holds because ``count <= capacity`` and the
        tail only reaches ``2 * capacity`` once ``head >= capacity``."""
        if self._head + self._count + incoming > self._buffer.size:
            self._buffer[:self._count] = \
                self._buffer[self._head:self._head + self._count]
            self._head = 0

    def push(self, value: float) -> "float | None":
        """Admit one new item; return the evicted oldest item if full.

        Eviction models the window "shift": the evicted value is the one
        leaving the processing facility and must be forwarded downstream
        by the caller.
        """
        evicted: "float | None" = None
        if self._count >= self._capacity:
            evicted = float(self._buffer[self._head])
            self._head += 1
            self._count -= 1
            self._start_index += 1
        self._make_room(1)
        self._buffer[self._head + self._count] = float(value)
        self._count += 1
        return evicted

    def push_chunk(self, values: np.ndarray) -> np.ndarray:
        """Admit a whole chunk; return the evicted items as an array.

        Equivalent to pushing every item in order (evictions interleave
        with admissions item-by-item, but the evicted sequence and final
        window contents are identical), executed with bulk copies.
        """
        chunk = np.asarray(values, dtype=np.float64).ravel()
        k = chunk.size
        if k == 0:
            return _EMPTY
        evict_n = max(0, self._count + k - self._capacity)
        if evict_n == 0:
            evicted = _EMPTY
        else:
            from_window = min(evict_n, self._count)
            head = self._head
            evicted = np.empty(evict_n, dtype=np.float64)
            evicted[:from_window] = self._buffer[head:head + from_window]
            # When the chunk exceeds the free space plus the whole window,
            # the leading chunk items pass straight through.
            evicted[from_window:] = chunk[:evict_n - from_window]
            self._head = head + from_window
            self._count -= from_window
            self._start_index += evict_n
            chunk = chunk[evict_n - from_window:]
            k = chunk.size
        self._make_room(k)
        tail = self._head + self._count
        self._buffer[tail:tail + k] = chunk
        self._count += k
        return evicted

    def push_many(self, values: Iterable[float]) -> list[float]:
        """Push a batch; return all evicted items in order."""
        return self.push_chunk(
            np.fromiter(values, dtype=np.float64)).tolist()

    def extend_no_evict(self, values: Iterable[float]) -> None:
        """Fill the window during warm-up; raises if capacity is exceeded.

        Items are admitted up to capacity before the overflow is raised,
        mirroring an item-by-item fill.
        """
        chunk = np.fromiter(values, dtype=np.float64)
        room = self._capacity - self._count
        admitted = chunk[:room]
        self._make_room(admitted.size)
        tail = self._head + self._count
        self._buffer[tail:tail + admitted.size] = admitted
        self._count += admitted.size
        if chunk.size > room:
            raise WindowOverflowError(
                f"extend_no_evict overflow at capacity {self._capacity}"
            )

    def advance_array(self, n: int) -> np.ndarray:
        """Evict (and return, as a fresh array) the ``n`` oldest items.

        Implements the algorithms' ``advance win[] past ε`` step: after an
        extreme has been processed, everything up to and including it is
        released downstream.
        """
        if n < 0:
            raise StreamError(f"advance count must be >= 0, got {n}")
        n = min(n, self._count)
        out = self._buffer[self._head:self._head + n].copy()
        self._head += n
        self._count -= n
        self._start_index += n
        return out

    def advance(self, n: int) -> list[float]:
        """List-returning form of :meth:`advance_array`."""
        return self.advance_array(n).tolist()

    def flush_array(self) -> np.ndarray:
        """Evict everything (end-of-stream drain) as a fresh array."""
        return self.advance_array(self._count)

    def flush(self) -> list[float]:
        """List-returning form of :meth:`flush_array`."""
        return self.flush_array().tolist()
