"""Stream persistence helpers (CSV and NPY).

Watermarked streams are plain value sequences; these helpers exist so the
examples can hand data between the producer, the (simulated) licensed
consumer and the detector the way the paper's Fig-1 scenario describes —
through files rather than in-process arrays.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.errors import StreamError
from repro.util.validation import as_float_array


def save_stream_csv(path: "str | Path", values, header: str = "value") -> None:
    """Write one value per row with a single-column header."""
    array = as_float_array(values, "values")
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([header])
        for value in array:
            writer.writerow([repr(float(value))])


def load_stream_csv(path: "str | Path") -> np.ndarray:
    """Read a single-column CSV written by :func:`save_stream_csv`."""
    path = Path(path)
    if not path.exists():
        raise StreamError(f"no such stream file: {path}")
    values: list[float] = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header_skipped = False
        for row in reader:
            if not row:
                continue
            if not header_skipped:
                header_skipped = True
                try:
                    float(row[0])
                except ValueError:
                    continue  # it really was a header line
            values.append(float(row[0]))
    if not values:
        raise StreamError(f"stream file {path} contains no values")
    return np.asarray(values, dtype=np.float64)


def save_stream_npy(path: "str | Path", values) -> None:
    """Binary (lossless float64) persistence for large streams."""
    array = as_float_array(values, "values")
    np.save(Path(path), array)


def load_stream_npy(path: "str | Path") -> np.ndarray:
    """Load a stream saved by :func:`save_stream_npy`."""
    path = Path(path)
    if not path.exists():
        raise StreamError(f"no such stream file: {path}")
    array = np.load(path)
    return as_float_array(array, "values")
