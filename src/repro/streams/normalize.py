"""Normalization of stream values into the paper's ``(-0.5, +0.5)`` range.

The paper assumes stream values normalized into ``(-0.5, +0.5)``
(Sec 2.2) and notes that linear changes — attack (A4), scaling the data
to exploit trends — are "taken care of by the initial normalization
step" (footnote 1).  :class:`Normalizer` makes that concrete: it maps a
physical value range affinely onto a sub-interval of ``(-0.5, 0.5)``,
remembers the transform so watermarked data can be mapped back to
physical units, and can *re-fit* on attacked data so that a scaled or
shifted copy of the stream normalizes to (approximately) the same
canonical form before detection.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import NormalizationError
from repro.util.validation import as_float_array

#: Fraction of the (-0.5, 0.5) interval actually used.  Keeping a small
#: margin guarantees strict inequality after round-trips and leaves
#: headroom for watermark perturbations near the range edges.
DEFAULT_MARGIN = 0.02


@dataclass(frozen=True)
class Normalizer:
    """Affine map between a physical range and normalized stream values.

    ``normalize(v) = (v - mid) / span * scale`` where ``mid`` and ``span``
    describe the physical range and ``scale = 1 - margin`` keeps values
    strictly inside ``(-0.5, 0.5)``.

    Use :meth:`fit` to construct one from data, or give explicit bounds
    (e.g. the 0–35 °C range of the IRTF temperature feed).
    """

    low: float
    high: float
    margin: float = DEFAULT_MARGIN

    def __post_init__(self) -> None:
        if not np.isfinite(self.low) or not np.isfinite(self.high):
            raise NormalizationError("bounds must be finite")
        if not self.high > self.low:
            raise NormalizationError(
                f"degenerate range [{self.low}, {self.high}]"
            )
        if not 0.0 < self.margin < 1.0:
            raise NormalizationError(
                f"margin must be in (0, 1), got {self.margin}"
            )

    # ------------------------------------------------------------------
    @classmethod
    def fit(cls, values, margin: float = DEFAULT_MARGIN) -> "Normalizer":
        """Fit bounds from observed data.

        Re-fitting on a linearly transformed copy (A4 attack) recovers an
        equivalent normalizer, which is why detection is scale-invariant:
        ``Normalizer.fit(a * x + b).normalize(a * x + b)`` equals
        ``Normalizer.fit(x).normalize(x)`` up to floating-point error for
        ``a > 0``.
        """
        array = as_float_array(values, "values")
        low = float(np.min(array))
        high = float(np.max(array))
        if high == low:
            raise NormalizationError("cannot fit a constant stream")
        return cls(low=low, high=high, margin=margin)

    # ------------------------------------------------------------------
    @property
    def _scale(self) -> float:
        return (1.0 - self.margin) / (self.high - self.low)

    def normalize(self, values) -> np.ndarray:
        """Map physical values into ``(-0.5, 0.5)``.

        Values outside the fitted range are clipped to the range edge
        (still strictly inside the open interval thanks to the margin);
        this mirrors a sensor's saturation behaviour and keeps the
        quantizer's domain total.
        """
        array = np.asarray(values, dtype=np.float64)
        mid = 0.5 * (self.low + self.high)
        out = (array - mid) * self._scale
        half = 0.5 * (1.0 - self.margin)
        return np.clip(out, -half, half)

    def denormalize(self, values) -> np.ndarray:
        """Inverse of :meth:`normalize` (watermarked data back to units)."""
        array = np.asarray(values, dtype=np.float64)
        mid = 0.5 * (self.low + self.high)
        return array / self._scale + mid

    def normalize_scalar(self, value: float) -> float:
        """Scalar convenience wrapper around :meth:`normalize`."""
        return float(self.normalize(np.asarray([value]))[0])

    def denormalize_scalar(self, value: float) -> float:
        """Scalar convenience wrapper around :meth:`denormalize`."""
        return float(self.denormalize(np.asarray([value]))[0])
