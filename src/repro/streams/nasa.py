"""Synthetic stand-in for the paper's NASA IRTF temperature dataset.

The paper's real-world evaluation data were *"once-every-two-minutes
environmental sensor (i.e. temperature) readings at various telescope
site locations"* from the NASA Infrared Telescope Facility on Mauna Kea:
30 days of September 2003, 21 630 readings, roughly 0–35 °C.

That feed is not redistributable (and this environment has no network
access), so :func:`synthetic_irtf_month` builds the closest synthetic
equivalent and every "(real data)" experiment in the benchmark harness
runs on it.  The watermarking pipeline only interacts with the data
through (a) the frequency and prominence of extremes, (b) the fatness of
characteristic subsets around extremes, and (c) the value range — so the
substitute matches those properties rather than any astronomical truth:

* **diurnal cycle** — a ~24 h quasi-sinusoid (period 720 samples at the
  2-minute cadence) with day-to-day amplitude variation, producing the
  dominant major extremes (2/day);
* **synoptic weather** — a slow AR(1) process (correlation time ≈ 1 day)
  adding multi-day warm/cold episodes, which modulates extreme heights;
* **sensor smoothing + jitter** — a short moving average (thermal mass of
  the sensor housing) plus small gaussian noise, giving extremes plateaus
  of nearby values: the characteristic subsets;
* **range** — mean and amplitudes tuned so readings stay inside 0–35 °C.

The deterministic ``seed`` makes the dataset reproducible across runs,
playing the role of the fixed September-2003 reference file.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.streams.model import StreamMeta
from repro.util.rng import make_rng

#: Number of readings in the paper's reference dataset (30 days).
IRTF_N_READINGS = 21630

#: Cadence of the IRTF environmental monitors (seconds between readings).
IRTF_CADENCE_SECONDS = 120.0

#: Samples per day at the 2-minute cadence.
_SAMPLES_PER_DAY = int(24 * 3600 / IRTF_CADENCE_SECONDS)  # 720


def synthetic_irtf_month(
    n_readings: int = IRTF_N_READINGS,
    seed: int = 20030901,
    smoothing: int = 9,
    noise_std: float = 0.03,
) -> tuple[np.ndarray, StreamMeta]:
    """Generate the synthetic IRTF-like month of temperature readings.

    Parameters
    ----------
    n_readings:
        Number of samples (default: the paper's 21 630).
    seed:
        Deterministic seed; the default plays the role of the fixed
        September-2003 reference dataset.
    smoothing:
        Moving-average width (samples) modelling sensor thermal mass.
    noise_std:
        Post-smoothing measurement jitter in °C.

    Returns
    -------
    (values, meta):
        ``values`` — float array of °C readings in [0, 35];
        ``meta`` — stream metadata with the 1/120 Hz rate.
    """
    if n_readings < _SAMPLES_PER_DAY:
        raise ParameterError(
            f"n_readings must cover at least one day "
            f"({_SAMPLES_PER_DAY} samples), got {n_readings}"
        )
    rng = make_rng(seed)
    t = np.arange(n_readings, dtype=np.float64)
    day_phase = 2.0 * np.pi * t / _SAMPLES_PER_DAY

    # Day-to-day varying diurnal amplitude and phase jitter.
    n_days = int(np.ceil(n_readings / _SAMPLES_PER_DAY)) + 1
    day_amp = rng.uniform(4.0, 7.5, size=n_days)
    day_amp_per_sample = np.repeat(day_amp, _SAMPLES_PER_DAY)[:n_readings]
    diurnal = day_amp_per_sample * np.sin(day_phase - 0.6)

    # Synoptic (weather-front) component: AR(1) with ~1 day correlation.
    rho = np.exp(-1.0 / _SAMPLES_PER_DAY)
    shocks = rng.normal(0.0, 1.0, size=n_readings)
    synoptic = np.empty(n_readings)
    level = rng.normal(0.0, 2.0)
    innovation_std = 2.0 * np.sqrt(1.0 - rho * rho)
    for i in range(n_readings):
        level = rho * level + innovation_std * shocks[i]
        synoptic[i] = level

    # Slow monthly trend (seasonal drift over the 30-day window).
    trend = 2.0 * np.sin(2.0 * np.pi * t / n_readings + rng.uniform(0, 2 * np.pi))

    values = 14.0 + diurnal + 2.5 * synoptic / max(1e-9, np.std(synoptic)) + trend

    # Sensor thermal mass: moving average, then measurement jitter.
    if smoothing > 1:
        kernel = np.ones(smoothing) / smoothing
        values = np.convolve(values, kernel, mode="same")
    if noise_std > 0.0:
        values = values + rng.normal(0.0, noise_std, size=n_readings)

    values = np.clip(values, 0.0, 35.0)
    meta = StreamMeta(rate_hz=1.0 / IRTF_CADENCE_SECONDS,
                      name="synthetic-irtf-sep2003", units="celsius")
    return values, meta
