"""Stream substrate: model, finite window, normalization, generators, I/O.

This package implements the data/transform model of paper Sec 2.2: a
stream ``(x[.], ς)`` is an (almost) infinite timed sequence of values at
rate ``ς``; processing is single-pass through a finite window of ``$``
items; values are normalized into ``(-0.5, +0.5)`` before watermarking.
"""

from repro.streams.generators import (
    GaussianStream,
    RandomWalkStream,
    TemperatureSensorGenerator,
)
from repro.streams.io import load_stream_csv, load_stream_npy, save_stream_csv, save_stream_npy
from repro.streams.model import StreamMeta, chunked, stream_from_array
from repro.streams.nasa import IRTF_CADENCE_SECONDS, IRTF_N_READINGS, synthetic_irtf_month
from repro.streams.normalize import Normalizer
from repro.streams.window import SlidingWindow

__all__ = [
    "GaussianStream",
    "RandomWalkStream",
    "TemperatureSensorGenerator",
    "load_stream_csv",
    "load_stream_npy",
    "save_stream_csv",
    "save_stream_npy",
    "StreamMeta",
    "chunked",
    "stream_from_array",
    "IRTF_CADENCE_SECONDS",
    "IRTF_N_READINGS",
    "synthetic_irtf_month",
    "Normalizer",
    "SlidingWindow",
]
