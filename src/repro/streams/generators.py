"""Synthetic stream sources (paper Sec 6, "temperature sensor generator").

The paper's experimental setup used *"a temperature sensor synthetic data
stream generator with controllable parameters, including the ability to
adjust the data stream distribution, fluctuating behavior (e.g. η(σ, δ))
and rate (ς)"*.  :class:`TemperatureSensorGenerator` reproduces those
knobs:

* ``eta`` — target average number of items per major extreme, the paper's
  ``η(σ, δ)`` (default 100, matching Sec 6's reference setup);
* ``extreme_scale`` / ``distribution`` — controls the magnitude
  distribution of the extremes (the reference setup is a normalized
  stream with mean 0 and standard deviation 0.5);
* ``rate_hz`` — the stream rate ``ς`` (default 100 Hz, as in Sec 6).

The generator synthesizes the stream as a chain of half-cosine arcs
between alternating maxima and minima.  Cosine arcs have zero slope at
their endpoints, so every generated extreme has a naturally "fat"
characteristic subset — exactly the temporal shape the paper's Fig 2
illustrates as favourable for surviving sampling.  Small additive noise
(kept well below the characteristic-subset radius δ) models sensor
jitter without creating spurious major extremes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.errors import ParameterError
from repro.registry import REGISTRY
from repro.streams.model import StreamMeta
from repro.util.rng import make_rng


@REGISTRY.register("generator", "temperature",
                   description="Sec-6 controllable temperature-sensor "
                               "stream (eta, shape, noise)")
@dataclass
class TemperatureSensorGenerator:
    """Controllable synthetic sensor stream (normalized domain).

    Parameters
    ----------
    eta:
        Target ``η(σ, δ)``: average items between consecutive major
        extremes.  Segment lengths are jittered ±``eta_jitter``·eta so the
        extreme spacing is irregular, like real sensor data.
    extreme_scale:
        Scale of the extreme-value distribution.  Maxima are drawn from
        the positive side, minima from the negative side, giving the
        stream an overall near-zero mean and a spread comparable to the
        paper's "mean 0, standard deviation 0.5" reference stream once
        clipped into the normalized range.
    noise_std:
        Standard deviation of additive gaussian jitter.  Must stay small
        relative to the watermarking radius δ; the Sec-6 experiment
        configuration checks this invariant.
    eta_jitter:
        Relative jitter on segment lengths, in ``[0, 0.9]``.
    min_swing:
        Minimum vertical distance between consecutive extremes, so arcs
        never degenerate into flat lines (which would merge extremes).
    shape:
        Arc shape between extremes: ``"cosine"`` (default) yields
        flat-topped extremes with fat characteristic subsets — the
        favourable temporal shape of paper Fig 2; ``"triangle"`` yields
        sharp peaks with thin subsets, the adversarial shape used by the
        label-fragility experiments (Fig 8(a)).
    rate_hz:
        Stream rate ``ς`` recorded in the generated :class:`StreamMeta`.
    seed:
        Seed for replayability.
    """

    eta: int = 100
    extreme_scale: float = 0.22
    noise_std: float = 0.0
    eta_jitter: float = 0.3
    min_swing: float = 0.08
    shape: str = "cosine"
    rate_hz: float = 100.0
    seed: "int | None" = None
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.eta < 4:
            raise ParameterError(f"eta must be >= 4, got {self.eta}")
        if not 0.0 < self.extreme_scale < 0.5:
            raise ParameterError(
                f"extreme_scale must be in (0, 0.5), got {self.extreme_scale}"
            )
        if self.noise_std < 0.0:
            raise ParameterError(f"noise_std must be >= 0, got {self.noise_std}")
        if not 0.0 <= self.eta_jitter <= 0.9:
            raise ParameterError(
                f"eta_jitter must be in [0, 0.9], got {self.eta_jitter}"
            )
        if not 0.0 < self.min_swing < 2 * self.extreme_scale:
            raise ParameterError(
                "min_swing must be positive and below the extreme swing range"
            )
        if self.shape not in ("cosine", "triangle"):
            raise ParameterError(
                f"shape must be 'cosine' or 'triangle', got {self.shape!r}"
            )
        self._rng = make_rng(self.seed)

    # ------------------------------------------------------------------
    def meta(self) -> StreamMeta:
        """Metadata describing this source."""
        return StreamMeta(rate_hz=self.rate_hz, name="synthetic-temperature",
                          units="normalized")

    def _draw_extreme(self, is_maximum: bool, previous: float) -> float:
        """Draw the next extreme value on the required side of ``previous``.

        Magnitudes are drawn uniformly over a wide band (scaled by
        ``extreme_scale``): well-separated extreme magnitudes keep the
        labeling scheme's order comparisons stable under value noise,
        mirroring the broad spread of the paper's reference distribution
        (normal with standard deviation 0.5 over a unit range).
        """
        half = 0.47  # hard bound keeping values strictly inside (-0.5, 0.5)
        low = min(0.3 * self.extreme_scale, half - self.min_swing)
        high = min(2.0 * self.extreme_scale, half)
        for _ in range(64):
            magnitude = self._rng.uniform(low, high)
            value = magnitude if is_maximum else -magnitude
            if is_maximum and value >= previous + self.min_swing:
                return value
            if not is_maximum and value <= previous - self.min_swing:
                return value
        # Fallback: force a valid swing if rejection sampling stalled.
        if is_maximum:
            return min(previous + self.min_swing, half)
        return max(previous - self.min_swing, -half)

    def _segment_length(self) -> int:
        """Items between consecutive extremes: η/2 on average.

        A full min→max→min oscillation spans two segments, so segments of
        mean η/2 yield one extreme per η/2 items and one *major* extreme
        per ≈η items once the majorness filter prunes the shallower ones;
        in practice (see the calibration test-suite) the measured η(σ, δ)
        tracks the requested value.
        """
        mean = self.eta / 2.0
        jitter = self.eta_jitter * mean
        length = int(round(self._rng.uniform(mean - jitter, mean + jitter)))
        return max(3, length)

    def generate(self, n_items: int) -> np.ndarray:
        """Produce ``n_items`` normalized stream values."""
        if n_items <= 0:
            raise ParameterError(f"n_items must be positive, got {n_items}")
        out = np.empty(n_items, dtype=np.float64)
        produced = 0
        is_maximum = bool(self._rng.integers(0, 2))
        current = self._draw_extreme(not is_maximum, 0.0)
        while produced < n_items:
            target = self._draw_extreme(is_maximum, current)
            length = self._segment_length()
            s = np.arange(1, length + 1, dtype=np.float64) / length
            if self.shape == "cosine":
                # Half-cosine arc: flat (zero derivative) at both ends.
                arc = current + (target - current) * 0.5 \
                    * (1.0 - np.cos(np.pi * s))
            else:
                # Linear ramp: sharp extremes, thin subsets.
                arc = current + (target - current) * s
            take = min(length, n_items - produced)
            out[produced:produced + take] = arc[:take]
            produced += take
            current = target
            is_maximum = not is_maximum
        if self.noise_std > 0.0:
            out += self._rng.normal(0.0, self.noise_std, size=n_items)
        return np.clip(out, -0.495, 0.495)

    def iter_values(self, chunk: int = 1024) -> Iterator[float]:
        """Unbounded value iterator (for streaming-API demonstrations)."""
        while True:
            for value in self.generate(chunk):
                yield float(value)


@REGISTRY.register("generator", "gaussian",
                   description="i.i.d. truncated-gaussian stream "
                               "(unwatermarked false-positive baseline)")
@dataclass
class GaussianStream:
    """I.i.d. gaussian stream — the paper's *random, un-watermarked data*.

    Used by detector false-positive tests: on data like this the
    true/false voting buckets must stay statistically balanced
    (paper Sec 3.3).  Defaults follow the Sec 6 reference distribution
    (mean 0, standard deviation 0.5), truncated to the normalized open
    interval by *resampling* out-of-range draws.  Hard clipping would
    pile identical saturated values at the boundaries — artificial
    plateaus that no normalized real stream exhibits and that would
    correlate detector votes.
    """

    mean: float = 0.0
    std: float = 0.5
    rate_hz: float = 100.0
    seed: "int | None" = None
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.std <= 0:
            raise ParameterError(f"std must be positive, got {self.std}")
        self._rng = make_rng(self.seed)

    def meta(self) -> StreamMeta:
        """Metadata describing this source."""
        return StreamMeta(rate_hz=self.rate_hz, name="gaussian", units="normalized")

    def generate(self, n_items: int) -> np.ndarray:
        """Produce ``n_items`` truncated-gaussian stream values."""
        if n_items <= 0:
            raise ParameterError(f"n_items must be positive, got {n_items}")
        values = self._rng.normal(self.mean, self.std, size=n_items)
        for _ in range(64):
            outside = (values <= -0.495) | (values >= 0.495)
            n_outside = int(np.sum(outside))
            if n_outside == 0:
                return values
            values[outside] = self._rng.normal(self.mean, self.std,
                                               size=n_outside)
        # Pathological parameters (e.g. |mean| near the boundary): give
        # up on resampling and clip the stragglers.
        return np.clip(values, -0.4949, 0.4949)


@REGISTRY.register("generator", "random-walk",
                   description="mean-reverting smoothed random walk "
                               "(irregular-extreme stress source)")
@dataclass
class RandomWalkStream:
    """Mean-reverting smoothed random walk (Ornstein–Uhlenbeck flavour).

    A rougher source than :class:`TemperatureSensorGenerator`: extremes
    appear at irregular scales, which stresses the majorness filter and
    the degree-estimation module the way noisy field data would.
    """

    step_std: float = 0.01
    reversion: float = 0.005
    smoothing: int = 5
    rate_hz: float = 100.0
    seed: "int | None" = None
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.step_std <= 0:
            raise ParameterError(f"step_std must be positive, got {self.step_std}")
        if not 0.0 <= self.reversion < 1.0:
            raise ParameterError(
                f"reversion must be in [0, 1), got {self.reversion}"
            )
        if self.smoothing < 1:
            raise ParameterError(f"smoothing must be >= 1, got {self.smoothing}")
        self._rng = make_rng(self.seed)

    def meta(self) -> StreamMeta:
        """Metadata describing this source."""
        return StreamMeta(rate_hz=self.rate_hz, name="random-walk",
                          units="normalized")

    def generate(self, n_items: int) -> np.ndarray:
        """Produce ``n_items`` smoothed random-walk stream values."""
        if n_items <= 0:
            raise ParameterError(f"n_items must be positive, got {n_items}")
        steps = self._rng.normal(0.0, self.step_std, size=n_items)
        values = np.empty(n_items, dtype=np.float64)
        level = 0.0
        for i in range(n_items):
            level = level * (1.0 - self.reversion) + steps[i]
            values[i] = level
        if self.smoothing > 1:
            kernel = np.ones(self.smoothing) / self.smoothing
            values = np.convolve(values, kernel, mode="same")
        return np.clip(values, -0.495, 0.495)
