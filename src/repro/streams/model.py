"""Stream data model (paper Sec 2.2).

A *simple data stream* is an (almost) infinite timed sequence of values
``x[t]`` produced by one or more data sources at rate ``ς`` values per
time unit.  After domain transforms such as sampling and summarization
the timestamp-to-value association is destroyed, so — exactly as the
paper's model states — the stream is ultimately *just a sequence of
values*; ``x[t]`` only distinguishes items, it does not promise that the
timestamp survives.

The library therefore represents stream content as 1-D float arrays (or
iterables of floats for unbounded sources) plus a :class:`StreamMeta`
carrying the rate and provenance.  All watermarking components consume
streams through the chunked single-pass iterator :func:`chunked`, which
enforces the finite-window discipline.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Iterator

import numpy as np

from repro.errors import StreamError
from repro.util.validation import as_float_array


@dataclass(frozen=True)
class StreamMeta:
    """Descriptive metadata for a stream.

    Parameters
    ----------
    rate_hz:
        The paper's ``ς`` — incoming data values per second.  The
        watermarking algorithms never rely on the actual rate (paper
        footnote 3); it is carried for the time-vs-confidence analysis of
        Sec 5 and for reporting.
    name:
        Human-readable provenance (e.g. ``"synthetic-irtf"``).
    units:
        Physical units of the raw values (e.g. ``"celsius"``).
    """

    rate_hz: float = 100.0
    name: str = "stream"
    units: str = ""

    def __post_init__(self) -> None:
        if not self.rate_hz > 0:
            raise StreamError(f"rate_hz must be positive, got {self.rate_hz}")

    def resampled(self, degree: float) -> "StreamMeta":
        """Metadata after a degree-``degree`` rate-reducing transform.

        Sampling or summarization of degree σ turns ``(x[.], ς)`` into
        ``(x'[.], ς/σ)`` (paper Sec 2.2).
        """
        if not degree > 0:
            raise StreamError(f"transform degree must be positive, got {degree}")
        return replace(self, rate_hz=self.rate_hz / degree)

    def seconds_for(self, n_items: int) -> float:
        """Wall-clock seconds covered by ``n_items`` stream values."""
        return n_items / self.rate_hz


def stream_from_array(values, meta: "StreamMeta | None" = None) -> tuple[np.ndarray, StreamMeta]:
    """Validate an in-memory array as a stream and attach metadata."""
    array = as_float_array(values, "stream values")
    return array, (meta or StreamMeta())


def chunked(source: Iterable[float], chunk_size: int) -> Iterator[np.ndarray]:
    """Yield successive ``chunk_size`` arrays from an unbounded source.

    This is the ingestion shape used by the streaming embedder/detector:
    they never see more than one chunk (plus their window) at a time, so
    memory stays bounded regardless of stream length.  The final chunk
    may be shorter.
    """
    if chunk_size <= 0:
        raise StreamError(f"chunk_size must be positive, got {chunk_size}")
    buffer: list[float] = []
    for value in source:
        buffer.append(float(value))
        if len(buffer) == chunk_size:
            yield np.asarray(buffer, dtype=np.float64)
            buffer = []
    if buffer:
        yield np.asarray(buffer, dtype=np.float64)
