"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch a single base class at an API boundary.  The hierarchy
mirrors the major subsystems: parameter validation, stream handling,
encoding search, and detection.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class ParameterError(ReproError, ValueError):
    """A watermarking or stream parameter violates a documented invariant.

    Raised eagerly at construction time (e.g. by
    :class:`repro.core.params.WatermarkParams`) rather than deep inside the
    embedding loop, so misconfiguration surfaces immediately.
    """


class StreamError(ReproError):
    """A stream source or window operation was used incorrectly."""


class WindowOverflowError(StreamError):
    """More items were pushed into a :class:`SlidingWindow` than it holds."""


class NormalizationError(StreamError, ValueError):
    """Values cannot be normalized (e.g. degenerate or empty range)."""


class EncodingError(ReproError):
    """A bit could not be embedded into a characteristic subset."""


class EncodingSearchExhausted(EncodingError):
    """The multi-hash (or quadratic-residue) search hit its iteration cap.

    The embedder treats this as a soft failure: the extreme is skipped and
    counted in :class:`repro.core.embedder.EmbedReport.search_failures`.
    """


class QualityConstraintViolated(ReproError):
    """A semantic quality constraint rejected a watermarking alteration.

    Carries the name of the violated constraint so the undo log can report
    which guarantee triggered the rollback (paper Sec 4.4).
    """

    def __init__(self, constraint_name: str, message: str = "") -> None:
        self.constraint_name = constraint_name
        text = message or f"quality constraint violated: {constraint_name}"
        super().__init__(text)


class DetectionError(ReproError):
    """The detector was asked for results it cannot produce."""


class RegistryError(ReproError, ValueError):
    """A component registry lookup or registration failed.

    Raised on duplicate registration of a (kind, name) pair and on
    lookups of unknown names; the lookup message always lists the valid
    names so typos are self-correcting at the call site.
    """


class SessionStateError(ReproError):
    """A session checkpoint could not be produced or restored.

    Raised by :meth:`repro.pipeline.ProtectionSession.to_state` /
    ``from_state`` (and the detection counterparts) when the session
    configuration is not serializable (e.g. a strategy *object* instead
    of a registered encoding name) or a state dict is malformed.
    """


class CheckpointStoreError(ReproError):
    """A checkpoint store operation failed or its payload is invalid.

    Raised by :mod:`repro.stores` backends on missing stream ids,
    unreadable/corrupt entries (truncated JSON, wrong envelope kind,
    newer format versions) and states that cannot be serialized — a
    corrupt checkpoint must fail loudly, never restore half a session.
    """


class HubError(ReproError):
    """A :class:`repro.hub.StreamHub` was driven incorrectly.

    Raised on routing errors (unknown or duplicate stream ids — the
    message carries a did-you-mean suggestion), on recovery without the
    stream's key, and on reading detection evidence from a protection
    stream.
    """


class ProtocolError(ReproError):
    """A network frame violates the ``repro.server`` wire protocol.

    Raised by :mod:`repro.server.protocol` on malformed frames:
    truncated or oversized length prefixes, invalid JSON, unknown frame
    types, missing or unknown fields, wrong field types, and payload
    arrays that do not decode — a corrupt frame must fail loudly, never
    half-apply.
    """


class RemoteError(ReproError):
    """The server answered a client request with an ERROR frame.

    Carries the server-reported error ``code`` (e.g. ``"unknown-stream"``,
    ``"flow"``, ``"busy"``) so SDK callers can branch on the failure
    class without parsing the message text.
    """

    def __init__(self, code: str, message: str = "") -> None:
        self.code = code
        super().__init__(message or code)


class KeyError_(ReproError, ValueError):
    """A secret key is malformed (empty, wrong type, or too short)."""
