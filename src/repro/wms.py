"""``wms`` — the paper's notation, as a thin compatibility layer.

The paper's proof-of-concept was called ``wms.*`` and its pseudo-code
uses ``wm_embed`` / ``wm_detect`` / ``wm_construct`` (Figs 3-4).  This
module exposes the library under exactly those names and argument
shapes, for readers working side-by-side with the paper:

>>> from repro import wms
>>> stream = wms.synthetic_stream(eta=100, n_items=6000, seed=1)
>>> marked = wms.wm_embed(stream, wm="1", k1=b"secret")
>>> buckets_t, buckets_f = wms.wm_detect(marked, b_wm=1, k1=b"secret")
>>> wms.wm_construct(buckets_t, buckets_f, kappa=0)
[True]

The paper's greek parameters map onto :class:`WatermarkParams` fields:
σ→``sigma``, δ→``delta``, φ→``phi``, λ→``lambda_bits``, %→``skip``,
ω→``omega``, α→``lsb_bits``, β→``msb_bits``, $→``window_size``,
κ→``vote_threshold``.
"""

from __future__ import annotations

import numpy as np

from repro.core.detector import detect_watermark
from repro.core.embedder import watermark_stream
from repro.core.params import WatermarkParams
from repro.streams.generators import TemperatureSensorGenerator


def paper_params(sigma: int = 3, delta: float = 0.02, phi: int = 2,
                 lam: int = 16, skip: int = 2, omega: int = 1,
                 alpha: int = 16, beta: int = 5,
                 window: int = 2048, kappa: int = 0) -> WatermarkParams:
    """Build :class:`WatermarkParams` from the paper's symbol names."""
    return WatermarkParams(sigma=sigma, delta=delta, phi=phi,
                           lambda_bits=lam, skip=skip, omega=omega,
                           lsb_bits=alpha, msb_bits=beta,
                           window_size=window, vote_threshold=kappa)


def synthetic_stream(eta: int = 100, n_items: int = 5000,
                     seed: "int | None" = None,
                     rate_hz: float = 100.0) -> np.ndarray:
    """The Sec-6 synthetic temperature stream, by its paper knobs."""
    return TemperatureSensorGenerator(eta=eta, seed=seed,
                                      rate_hz=rate_hz).generate(n_items)


def wm_embed(x, wm, k1, params: "WatermarkParams | None" = None
             ) -> np.ndarray:
    """Fig 3's ``wm_embed(sigma, delta, phi, wm, k1, alpha)``.

    Parameters travel inside ``params`` (they are all secrets of the
    same key holder); returns the watermarked stream.
    """
    marked, _ = watermark_stream(x, wm, k1, params=params)
    return marked


def wm_detect(x, b_wm: int, k1, params: "WatermarkParams | None" = None,
              rho: float = 1.0) -> tuple[list[int], list[int]]:
    """Fig 4's ``wm_detect``: returns the (wm^T, wm^F) bucket arrays."""
    result = detect_watermark(x, b_wm, k1, params=params,
                              transform_degree=rho)
    return list(result.buckets_true), list(result.buckets_false)


def wm_construct(buckets_t: list[int], buckets_f: list[int],
                 kappa: int = 0) -> "list[bool | None]":
    """Fig 4's ``wm_construct``: bucket difference vs threshold κ.

    ``None`` entries are the paper's "undefined" bits — the verdict on
    un-watermarked data.
    """
    estimate: "list[bool | None]" = []
    for t, f in zip(buckets_t, buckets_f):
        if t - f > kappa:
            estimate.append(True)
        elif f - t > kappa:
            estimate.append(False)
        else:
            estimate.append(None)
    return estimate
