"""Court-time confidence: false-positive math (paper Sec 5).

The scheme's persuasion power is quantified as the probability that the
observed detection evidence arises in *random, un-watermarked* data.
Sec 5 derives:

* per-extreme false-positive probability ``2^(-ω·a(a+1)/2)`` — each of
  the ``a(a+1)/2`` sub-range averages matches the "true" convention with
  probability ``2^-ω``;
* detection-time false-positive after ``t`` seconds of stream at rate ς:
  ``Pfp(t) = (2^(-ω·a(a+1)/2))^(t·ς / (η(σ,δ)·φ))`` — one selected,
  bit-carrying major extreme every ``η·φ`` items;
* the Sec-6 working rule (footnote 5): a detected watermark *bias* of
  ``B`` — net count of extremes voting the embedded way — has
  false-positive probability about ``2^-B``, i.e. confidence
  ``1 - 2^-B``.

Both the paper's closed forms and exact binomial tails are provided; the
exact forms back the library's :class:`DetectionResult.confidence`.
"""

from __future__ import annotations

import math

from repro.errors import ParameterError


def per_extreme_fp(subset_size: int, omega: int = 1,
                   n_constrained: "int | None" = None) -> float:
    """``2^(-ω·c)`` — chance one random extreme fully encodes "true".

    ``n_constrained`` overrides the constraint count (defaults to the
    paper's full set ``a(a+1)/2``); pass the active-set size when the
    computation-reducing technique is in use.
    """
    if subset_size < 1:
        raise ParameterError(f"subset_size must be >= 1, got {subset_size}")
    if omega < 1:
        raise ParameterError(f"omega must be >= 1, got {omega}")
    c = n_constrained if n_constrained is not None else \
        subset_size * (subset_size + 1) // 2
    if c < 1:
        raise ParameterError(f"constraint count must be >= 1, got {c}")
    return 2.0 ** (-omega * c)


def fp_probability(detection_seconds: float, rate_hz: float, eta: float,
                   phi: int, subset_size: int, omega: int = 1,
                   n_constrained: "int | None" = None) -> float:
    """Sec-5 ``Pfp(t)`` for a one-bit watermark.

    >>> fp = fp_probability(2.0, 100.0, 50.0, 5, 5, omega=1)
    >>> fp < 1e-100   # the paper's "close to 100% confidence" example
    True
    """
    if detection_seconds <= 0:
        raise ParameterError("detection_seconds must be positive")
    if rate_hz <= 0 or eta <= 0:
        raise ParameterError("rate_hz and eta must be positive")
    if phi < 1:
        raise ParameterError(f"phi must be >= 1, got {phi}")
    extremes_seen = detection_seconds * rate_hz / (eta * phi)
    per_extreme = per_extreme_fp(subset_size, omega, n_constrained)
    # Work in log-space: these probabilities underflow doubles instantly.
    log_fp = extremes_seen * math.log(per_extreme)
    return math.exp(log_fp) if log_fp > -745.0 else 0.0


def fp_probability_degraded(detection_seconds: float, rate_hz: float,
                            eta: float, phi: int) -> float:
    """Sec-5 worst case: only one ``m_ij`` per extreme survives.

    Each surviving average matches "true" with probability 1/2, so
    ``Pfp = 2^-(number of selected extremes)``.  The paper's example:
    2 seconds at 100 Hz, η = 50, φ = 5 gives "roughly one in a million".
    """
    if detection_seconds <= 0 or rate_hz <= 0 or eta <= 0 or phi < 1:
        raise ParameterError("arguments must be positive")
    extremes_seen = detection_seconds * rate_hz / (eta * phi)
    return 2.0 ** (-extremes_seen)


def confidence_from_bias(bias: float) -> float:
    """Footnote-5 rule: confidence ``1 - 2^-bias`` (clamped to [0, 1]).

    Negative or zero bias yields zero confidence: the data shows no
    evidence of the embedded bit.
    """
    if bias <= 0:
        return 0.0
    return min(1.0, 1.0 - 2.0 ** (-bias))


def exact_bias_fp(n_votes: int, bias: int) -> float:
    """Exact P[net vote >= bias] under the null (fair-coin votes).

    ``n_votes`` extremes each vote +1/-1 with probability 1/2 on random
    data; the false-positive probability of observing a net bias at least
    ``bias`` is a binomial tail.  This refines the ``2^-bias`` rule (which
    is the single-path bound).
    """
    if n_votes < 0:
        raise ParameterError(f"n_votes must be >= 0, got {n_votes}")
    if bias <= 0:
        return 1.0
    if bias > n_votes:
        return 0.0
    # net = 2k - n >= bias  <=>  k >= (n + bias) / 2
    k_min = math.ceil((n_votes + bias) / 2)
    total = sum(math.comb(n_votes, k) for k in range(k_min, n_votes + 1))
    return total / 2.0 ** n_votes


def min_segment_items(eta: float, skip: int) -> float:
    """Sec-5 minimum segment enabling better-than-coin-flip detection.

    Two consistent bits from adjacent extremes need correct labels, i.e.
    all the previous ``%`` major extremes: ``η(σ, δ) · %`` items.
    """
    if eta <= 0:
        raise ParameterError(f"eta must be positive, got {eta}")
    if skip < 1:
        raise ParameterError(f"skip must be >= 1, got {skip}")
    return eta * skip


def seconds_to_confidence(target_confidence: float, rate_hz: float,
                          eta: float, phi: int, subset_size: int,
                          omega: int = 1) -> float:
    """Invert :func:`fp_probability`: time needed to reach a confidence.

    Useful for provisioning: "how long must the detector watch the
    stream before the proof is court-ready?"
    """
    if not 0.0 < target_confidence < 1.0:
        raise ParameterError(
            f"target_confidence must be in (0, 1), got {target_confidence}"
        )
    per_extreme = per_extreme_fp(subset_size, omega)
    target_fp = 1.0 - target_confidence
    extremes_needed = math.log(target_fp) / math.log(per_extreme)
    return extremes_needed * eta * phi / rate_hz
