"""Watermark payload coercion.

The algorithms operate on a bit string ``wm`` (``wm[i]`` is bit ``i``).
Users hold watermarks as text ("(c) 2004 DataCorp"), bytes, bit strings
or bit lists; these helpers normalize between the forms.

Coercion rules for strings: a string consisting solely of ``'0'``/``'1'``
characters is interpreted as a literal bit string; any other string is
encoded as UTF-8 bytes, most significant bit first.
"""

from __future__ import annotations

from repro.errors import ParameterError


def to_bits(watermark) -> list[bool]:
    """Normalize a watermark payload into a list of bits.

    >>> to_bits("101")
    [True, False, True]
    >>> len(to_bits("A"))
    8
    >>> to_bits([1, 0, True])
    [True, False, True]
    """
    if isinstance(watermark, str):
        if watermark and set(watermark) <= {"0", "1"}:
            return [ch == "1" for ch in watermark]
        raw = watermark.encode("utf-8")
        if not raw:
            raise ParameterError("watermark string must not be empty")
        return _bytes_to_bits(raw)
    if isinstance(watermark, (bytes, bytearray)):
        if not watermark:
            raise ParameterError("watermark bytes must not be empty")
        return _bytes_to_bits(bytes(watermark))
    if isinstance(watermark, (list, tuple)):
        if not watermark:
            raise ParameterError("watermark bit list must not be empty")
        bits: list[bool] = []
        for item in watermark:
            if isinstance(item, bool):
                bits.append(item)
            elif isinstance(item, int) and item in (0, 1):
                bits.append(bool(item))
            else:
                raise ParameterError(
                    f"watermark bit list contains non-bit {item!r}"
                )
        return bits
    raise ParameterError(
        f"unsupported watermark type: {type(watermark).__name__}"
    )


def _bytes_to_bits(raw: bytes) -> list[bool]:
    bits: list[bool] = []
    for byte in raw:
        for position in range(7, -1, -1):
            bits.append(bool((byte >> position) & 1))
    return bits


def bits_to_bytes(bits: "list[bool | None]",
                  undefined_as: bool = False) -> bytes:
    """Pack decided bits back into bytes (detector output convenience).

    ``None`` entries (undecided bits, Sec 3.3's "undefined") are replaced
    by ``undefined_as``.  The bit count must be a multiple of 8.
    """
    if len(bits) % 8 != 0:
        raise ParameterError(
            f"bit count must be a multiple of 8, got {len(bits)}"
        )
    out = bytearray()
    for i in range(0, len(bits), 8):
        byte = 0
        for bit in bits[i:i + 8]:
            effective = undefined_as if bit is None else bit
            byte = (byte << 1) | int(bool(effective))
        out.append(byte)
    return bytes(out)


def bits_to_text(bits: "list[bool | None]",
                 undefined_as: bool = False) -> str:
    """Decode detector output bits as UTF-8 text (replacement on errors)."""
    return bits_to_bytes(bits, undefined_as).decode("utf-8",
                                                    errors="replace")
