"""Shared single-pass stream scanning for the embedder and detector.

Both `wm_embed` and `wm_detect` (paper Figs 3 and 4) run the same outer
loop: maintain the finite window, find the next confirmed extreme,
compute its characteristic subset, test majorness, derive the label,
apply the selection criterion, act on the extreme (embed or decode) and
*advance the window past it*.  :class:`StreamScanner` implements that
loop once; the embedder and detector subclass it with their
``_handle_selected`` action.

Properties maintained:

* **single pass / bounded memory** — each item enters the window once;
  once evicted it is never touched again.  Auxiliary state (zigzag
  candidates, label history, voting buckets) is O(λ·% + b(wm)), the
  "equivalent amounts of arbitrary data" the window model allows;
* **continuation-exactness** — the incremental zigzag yields the same
  pivot sequence a whole-array scan would (property-tested), so offline
  detection and streaming detection agree;
* **graceful degradation** — extremes evicted before confirmation
  (window too small for the stream's η) are counted, not silently lost.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.extremes import Extreme, ZigzagState, characteristic_subset, zigzag_pivots
from repro.core.labels import StreamingLabeler
from repro.core.params import WatermarkParams
from repro.core.quantize import Quantizer
from repro.core.selection import select_watermark_bit
from repro.errors import ParameterError
from repro.util.hashing import KeyedHasher


@dataclass
class ScanCounters:
    """Shared bookkeeping of one scanning pass."""

    items: int = 0
    extremes_confirmed: int = 0
    majors: int = 0
    warmup_skips: int = 0
    selected: int = 0
    missed_evictions: int = 0
    subset_size_sum: int = 0

    @property
    def average_subset_size(self) -> float:
        """Mean ``|ξ(ε, δ)|`` over confirmed extremes (Sec 4.2 reference)."""
        if self.extremes_confirmed == 0:
            return 0.0
        return self.subset_size_sum / self.extremes_confirmed

    @property
    def eta_estimate(self) -> float:
        """Measured items per major extreme, ``η(σ, δ)``."""
        if self.majors == 0:
            return float("inf")
        return self.items / self.majors

    def to_dict(self) -> dict:
        """JSON-compatible snapshot of every counter.

        Derived from the dataclass fields so a newly added counter
        round-trips through checkpoints automatically.
        """
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ScanCounters":
        """Rebuild counters from :meth:`to_dict` output.

        Missing fields default to 0 and unknown fields are ignored, so a
        checkpoint written before a counter existed (or after one was
        retired) still restores.
        """
        return cls(**{f.name: int(data.get(f.name, 0))
                      for f in dataclasses.fields(cls)})


class StreamScanner:
    """Base class: windowed, single-pass extreme scanning.

    Subclasses override :meth:`_handle_selected` (and may override
    :meth:`_handle_major` for label-independent behaviour).
    """

    def __init__(self, params: WatermarkParams, quantizer: Quantizer,
                 hasher: KeyedHasher, wm_length: int,
                 effective_sigma: "int | None" = None,
                 require_labels: bool = True) -> None:
        from repro.streams.window import SlidingWindow  # local: avoid cycle

        params.validate_for_watermark(wm_length)
        self._params = params
        self._quantizer = quantizer
        self._hasher = hasher
        self._wm_length = wm_length
        self._sigma = effective_sigma if effective_sigma is not None \
            else params.sigma
        if self._sigma < 1:
            raise ParameterError(f"effective sigma must be >= 1, got {self._sigma}")
        self._require_labels = require_labels
        # Fixed-parameter form of Extreme.is_major's threshold test.
        self._major_threshold = self._sigma * params.majority_relaxation
        self._window = SlidingWindow(params.window_size)
        self._zigzag = ZigzagState.fresh()
        self._pending: deque[tuple[int, int]] = deque()
        self._labeler = StreamingLabeler(params.lambda_bits, params.skip,
                                         quantizer, params.label_msb_bits)
        self._next_index = 0
        self.counters = ScanCounters()

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def process(self, values) -> np.ndarray:
        """Feed a chunk of stream values; return the released output items.

        Output items are final: the embedder has already rewritten any it
        intended to rewrite.  Ingestion is internally sub-batched to a
        fraction of the window so that pivot processing keeps up with
        eviction — pushing more than the window holds before draining
        would silently discard unprocessed extremes.
        """
        array = np.asarray(values, dtype=np.float64).ravel()
        released: list[np.ndarray] = []
        batch = max(16, self._params.window_size // 4)
        for batch_start in range(0, array.size, batch):
            sub = array[batch_start:batch_start + batch]
            chunk_start = self._next_index
            self._admit_chunk(sub)
            evicted = self._window.push_chunk(sub)
            if evicted.size:
                released.append(evicted)
            self._next_index += sub.size
            self.counters.items += sub.size
            pivots, self._zigzag = zigzag_pivots(
                sub, self._params.prominence, self._zigzag,
                offset=chunk_start)
            self._pending.extend(pivots)
            if self._pending:
                released.extend(self._drain_pending())
        if not released:
            return np.empty(0, dtype=np.float64)
        return np.concatenate(released)

    def finalize(self) -> np.ndarray:
        """Drain every remaining item at end-of-stream."""
        released = self._drain_pending()
        released.append(self._window.flush_array())
        return np.concatenate(released)

    @property
    def items_pending(self) -> int:
        """Ingested items still held back by the window (not yet released).

        ``counters.items - items_pending`` is therefore the number of
        output items this scanner has released so far — the output-side
        offset a network peer needs to deduplicate redelivered chunks
        after a resume (see :mod:`repro.server`).  Restoring a
        checkpoint restores the window, so the property stays correct
        across :meth:`restore_scan_state`.
        """
        return len(self._window)

    # ------------------------------------------------------------------
    # checkpoint / resume
    # ------------------------------------------------------------------
    def scan_state(self) -> dict:
        """JSON-compatible snapshot of the full scanning state.

        Captures everything the outer loop owns: window contents, zigzag
        continuation, pending unconfirmed pivots, label history, the
        absolute stream cursor and the counters.  Configuration (params,
        key, encoding) is *not* included — it is the secret the caller
        re-supplies on resume.  Restoring this state into a scanner
        built with the same configuration continues the scan exactly
        where it stopped (bit-identical output, property-tested).
        """
        return {
            "window": self._window.to_state(),
            "zigzag": self._zigzag.to_state(),
            "pending": [[int(index), int(kind)]
                        for index, kind in self._pending],
            "label_history": self._labeler.history(),
            "next_index": self._next_index,
            "counters": self.counters.to_dict(),
        }

    def restore_scan_state(self, state: dict) -> None:
        """Load a :meth:`scan_state` snapshot into this scanner.

        The scanner must have been constructed with the same
        configuration (params, window size, labeling setup) that
        produced the snapshot; only dynamic state is replaced.
        """
        from repro.streams.window import SlidingWindow  # local: avoid cycle

        window = SlidingWindow.from_state(state["window"])
        if window.capacity != self._params.window_size:
            raise ParameterError(
                f"checkpoint window capacity {window.capacity} does not "
                f"match configured window_size {self._params.window_size}"
            )
        self._window = window
        self._zigzag = ZigzagState.from_state(state["zigzag"])
        self._pending = deque((int(index), int(kind))
                              for index, kind in state["pending"])
        self._labeler.restore(state["label_history"])
        self._next_index = int(state["next_index"])
        self.counters = ScanCounters.from_dict(state["counters"])

    def run(self, values, chunk_size: int = 4096) -> np.ndarray:
        """Convenience: stream an in-memory array through the scanner."""
        array = np.asarray(values, dtype=np.float64).ravel()
        if chunk_size < 1:
            raise ParameterError(f"chunk_size must be >= 1, got {chunk_size}")
        pieces: list[np.ndarray] = []
        for start in range(0, array.size, chunk_size):
            pieces.append(self.process(array[start:start + chunk_size]))
        pieces.append(self.finalize())
        return np.concatenate(pieces) if pieces else np.asarray([])

    # ------------------------------------------------------------------
    # the shared outer loop
    # ------------------------------------------------------------------
    def _recenter(self, window_values: np.ndarray, local: int,
                  current_size: int) -> "int | None":
        """Snap a suspiciously thin pivot onto the adjacent plateau.

        Part of the robustness ("hysteresis") suite: a targeted or random
        value spike can displace a pivot off its plateau, shrinking the
        apparent characteristic subset and demoting a genuine major
        extreme — which desynchronizes the label chain.  When the pivot's
        subset is thinner than the majorness degree but a same-plateau
        neighbour (value within ``prominence``) carries a subset at least
        twice as fat and major-sized, the neighbour is the real extreme.
        Clean streams never trigger this (their pivots already own the
        fattest subsets), so embedder/detector symmetry is preserved.
        """
        n = len(window_values)
        radius = self._params.max_subset_detect
        pivot_value = float(window_values[local])
        best_offset: "int | None" = None
        best_size = current_size
        for offset in range(max(0, local - radius),
                            min(n - 1, local + radius) + 1):
            if offset == local:
                continue
            if abs(float(window_values[offset]) - pivot_value) \
                    >= self._params.prominence:
                continue
            start, end = characteristic_subset(window_values, offset,
                                               self._params.delta)
            size = end - start + 1
            if size > best_size:
                best_offset, best_size = offset, size
        if best_offset is None:
            return None
        if best_size >= max(self._sigma, 2 * current_size):
            return best_offset
        return None

    def _drain_pending(self) -> "list[np.ndarray]":
        released: "list[np.ndarray]" = []
        window = self._window
        counters = self.counters
        pending = self._pending
        delta = self._params.delta
        recenter_enabled = self._params.recenter_extremes
        sigma = self._sigma
        # is_major() with fixed (σ, relaxation) is this threshold test;
        # parameters were validated at construction time.
        major_threshold = self._major_threshold
        while pending:
            index, kind = pending.popleft()
            start_index = window.start_index
            if index < start_index:
                # Confirmed after its data already left the window: the
                # window is undersized for this stream's eta.
                counters.missed_evictions += 1
                continue
            local = index - start_index
            window_values = window.values()
            start, end = characteristic_subset(window_values, local, delta)
            if recenter_enabled and end - start + 1 < sigma:
                recentered = self._recenter(window_values, local,
                                            end - start + 1)
                if recentered is not None:
                    local = recentered
                    index = local + start_index
                    start, end = characteristic_subset(window_values, local,
                                                       delta)
            size = end - start + 1
            counters.extremes_confirmed += 1
            counters.subset_size_sum += size
            if size >= major_threshold:
                counters.majors += 1
                extreme = Extreme(
                    index=index, value=float(window_values[local]),
                    kind=kind, subset_start=start + start_index,
                    subset_end=end + start_index)
                self._handle_major(extreme, window_values, local, start, end)
            released.append(window.advance_array(local + 1))
        return released

    def _reference_value(self, extreme: Extreme,
                         window_values: np.ndarray,
                         start: int, end: int) -> float:
        """The value representing this extreme in labels and selection.

        With ``robust_extreme_value`` (the library's realization of the
        paper's Sec-4 "hysteresis" improvement against targeted extreme-
        value alteration) this is the *characteristic-subset mean*: it is
        stable under ε-noise (averaging), under sampling (the survivors'
        mean stays within δ of the full-subset mean) and under
        summarization (chunk averages preserve the subset mean).  With
        the flag off, the raw extreme value is used — the paper's
        original Sec-4.1 formulation.
        """
        if self._params.robust_extreme_value:
            segment = window_values[start:end + 1]
            # np.add.reduce(x) / n is exactly np.mean's computation
            # (pairwise sum, then true-divide) without the wrapper
            # machinery; this runs once per confirmed extreme.
            return float(np.add.reduce(segment) / segment.size)
        return extreme.value

    def _handle_major(self, extreme: Extreme, window_values: np.ndarray,
                      local: int, start: int, end: int) -> None:
        """Label + selection for one major extreme, then dispatch."""
        reference = self._reference_value(extreme, window_values, start, end)
        label = self._labeler.preview(reference)
        if label is None and self._require_labels:
            self.counters.warmup_skips += 1
            self._labeler.push(reference)
            return
        effective_label = label if label is not None else 1
        bit_index = select_watermark_bit(reference, self._wm_length,
                                         self._params, self._quantizer,
                                         self._hasher, effective_label)
        if bit_index is None:
            self._labeler.push(reference)
            return
        self.counters.selected += 1
        post_value = self._handle_selected(extreme, window_values, local,
                                           start, end, effective_label,
                                           bit_index)
        self._labeler.push(post_value)

    # ------------------------------------------------------------------
    # subclass hooks
    # ------------------------------------------------------------------
    def _admit(self, value: float) -> None:
        """Called for every incoming item (quality monitor hook)."""

    def _admit_chunk(self, values: np.ndarray) -> None:
        """Batch form of :meth:`_admit`; base ingestion calls only this.

        The default fans out to :meth:`_admit` per item when a subclass
        overrides it, and is a no-op otherwise so the vectorized hot
        path skips per-item Python calls entirely.
        """
        if type(self)._admit is not StreamScanner._admit:
            for value in values.tolist():
                self._admit(value)

    def _handle_selected(self, extreme: Extreme, window_values: np.ndarray,
                         local: int, start: int, end: int, label: int,
                         bit_index: int) -> float:
        """Act on a selected extreme; return its (possibly new) value."""
        raise NotImplementedError
