"""On-the-fly quality assessment with an undo log (paper Sec 4.4).

Watermarking alters its input; the embedder therefore accepts *semantic
constraints* — limits on the allowable change — and re-evaluates them for
every proposed alteration.  An undo log (the paper's "rollback" log from
[19], adapted to the window model) reverses the current watermarking
step when a constraint trips, and the step is counted as a rollback in
the embed report.

Consistent with the paper's storage argument, constraints are evaluated
against *running aggregates* (a handful of scalars: counts, sums, sums
of squares, max change), never against stored history: including history
would cost window slots better spent on incoming data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Protocol

from repro.errors import ParameterError


@dataclass(frozen=True)
class Alteration:
    """One proposed item rewrite (stream index, before, after)."""

    index: int
    old: float
    new: float

    @property
    def change(self) -> float:
        """Signed value change introduced by this rewrite."""
        return self.new - self.old


@dataclass
class QualityStats:
    """Running aggregates maintained by the monitor.

    ``n_seen`` counts every item that passed through the embedder;
    ``n_altered`` only the rewritten ones.  Original and watermarked
    moments are tracked in parallel so drifts can be computed exactly.
    """

    n_seen: int = 0
    n_altered: int = 0
    sum_original: float = 0.0
    sumsq_original: float = 0.0
    sum_marked: float = 0.0
    sumsq_marked: float = 0.0
    max_abs_change: float = 0.0

    # -- derived -------------------------------------------------------
    def mean_original(self) -> float:
        """Mean of the stream before watermarking."""
        return self.sum_original / self.n_seen if self.n_seen else 0.0

    def mean_marked(self) -> float:
        """Mean of the stream after watermarking."""
        return self.sum_marked / self.n_seen if self.n_seen else 0.0

    def std_original(self) -> float:
        """Population standard deviation before watermarking."""
        if self.n_seen == 0:
            return 0.0
        mean = self.mean_original()
        variance = max(0.0, self.sumsq_original / self.n_seen - mean * mean)
        return math.sqrt(variance)

    def std_marked(self) -> float:
        """Population standard deviation after watermarking."""
        if self.n_seen == 0:
            return 0.0
        mean = self.mean_marked()
        variance = max(0.0, self.sumsq_marked / self.n_seen - mean * mean)
        return math.sqrt(variance)

    def mean_drift(self) -> float:
        """Absolute change of the mean introduced so far."""
        return abs(self.mean_marked() - self.mean_original())

    def std_drift(self) -> float:
        """Absolute change of the standard deviation introduced so far."""
        return abs(self.std_marked() - self.std_original())

    def altered_fraction(self) -> float:
        """Fraction of seen items that were rewritten."""
        return self.n_altered / self.n_seen if self.n_seen else 0.0


class QualityConstraint(Protocol):
    """A named predicate over the running quality statistics."""

    name: str

    def check(self, stats: QualityStats) -> bool:
        """Return True when the constraint is satisfied."""
        ...


@dataclass(frozen=True)
class MaxPerItemChange:
    """No single item may move more than ``limit`` (normalized units).

    The paper's example of a domain metric: "the total alteration
    introduced per data item should not exceed a certain threshold".
    """

    limit: float
    name: str = "max-per-item-change"

    def __post_init__(self) -> None:
        if self.limit <= 0:
            raise ParameterError(f"limit must be positive, got {self.limit}")

    def check(self, stats: QualityStats) -> bool:
        """Satisfied while the largest single-item change is in budget."""
        return stats.max_abs_change <= self.limit


@dataclass(frozen=True)
class MaxMeanDrift:
    """The stream mean may not drift more than ``limit`` (absolute)."""

    limit: float
    name: str = "max-mean-drift"

    def __post_init__(self) -> None:
        if self.limit <= 0:
            raise ParameterError(f"limit must be positive, got {self.limit}")

    def check(self, stats: QualityStats) -> bool:
        """Satisfied while the accumulated mean drift is in budget."""
        return stats.mean_drift() <= self.limit


@dataclass(frozen=True)
class MaxStdDrift:
    """The stream standard deviation may not drift more than ``limit``."""

    limit: float
    name: str = "max-std-drift"

    def __post_init__(self) -> None:
        if self.limit <= 0:
            raise ParameterError(f"limit must be positive, got {self.limit}")

    def check(self, stats: QualityStats) -> bool:
        """Satisfied while the accumulated std drift is in budget."""
        return stats.std_drift() <= self.limit


@dataclass(frozen=True)
class MaxAlteredFraction:
    """At most ``limit`` of all items may be rewritten."""

    limit: float
    name: str = "max-altered-fraction"

    def __post_init__(self) -> None:
        if not 0.0 < self.limit <= 1.0:
            raise ParameterError(f"limit must be in (0, 1], got {self.limit}")

    def check(self, stats: QualityStats) -> bool:
        """Satisfied while the rewritten-item fraction is in budget."""
        return stats.altered_fraction() <= self.limit


@dataclass
class UndoRecord:
    """Undo-log entry: the alterations of one rolled-back step."""

    alterations: list[Alteration]
    violated: str


class QualityMonitor:
    """Constraint evaluation with rollback, driven by the embedder.

    Usage protocol (mirrors Fig 5's architecture):

    1. :meth:`admit` every item entering the window (updates the
       original-stream aggregates);
    2. :meth:`propose` each watermarking step's alterations — the monitor
       tentatively applies them to the aggregates, evaluates every
       constraint, and either commits (returns True) or rolls back
       (returns False and appends to the undo log).
    """

    def __init__(self, constraints: "list[QualityConstraint] | None" = None
                 ) -> None:
        self._constraints = list(constraints or [])
        self.stats = QualityStats()
        self.undo_log: list[UndoRecord] = []

    @property
    def constraints(self) -> list:
        """The active constraints (read-only view)."""
        return list(self._constraints)

    def admit(self, value: float) -> None:
        """Record one item passing through the embedder, unaltered so far."""
        v = float(value)
        self.stats.n_seen += 1
        self.stats.sum_original += v
        self.stats.sumsq_original += v * v
        self.stats.sum_marked += v
        self.stats.sumsq_marked += v * v

    def admit_many(self, values) -> None:
        """Batch form of :meth:`admit`."""
        for value in values:
            self.admit(value)

    def propose(self, alterations: list[Alteration]) -> bool:
        """Tentatively apply a watermarking step; commit or roll back."""
        if not alterations:
            return True
        saved_max = self.stats.max_abs_change
        for alt in alterations:
            self.stats.sum_marked += alt.new - alt.old
            self.stats.sumsq_marked += alt.new ** 2 - alt.old ** 2
            self.stats.max_abs_change = max(self.stats.max_abs_change,
                                            abs(alt.change))
        self.stats.n_altered += len(alterations)
        violated = next((c.name for c in self._constraints
                         if not c.check(self.stats)), None)
        if violated is None:
            return True
        # Roll back: reverse the aggregate updates, log the undo.
        for alt in alterations:
            self.stats.sum_marked -= alt.new - alt.old
            self.stats.sumsq_marked -= alt.new ** 2 - alt.old ** 2
        self.stats.max_abs_change = saved_max
        self.stats.n_altered -= len(alterations)
        self.undo_log.append(UndoRecord(alterations=list(alterations),
                                        violated=violated))
        return False

    @property
    def rollbacks(self) -> int:
        """Number of watermarking steps rejected so far."""
        return len(self.undo_log)
