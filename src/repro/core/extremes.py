"""Extremes, characteristic subsets, and majorness (paper Sec 2.2).

An *extreme* is a local minimum or maximum of the stream.  Its
*characteristic subset of radius δ*, ``ξ(ε, δ)``, is the contiguous run
of items around the extreme whose values stay within δ of the extreme's
value.  A *major extreme of degree σ and radius δ* is one whose subset is
fat enough that some member survives any uniform sampling of degree σ —
operationally ``|ξ(ε, δ)| >= σ`` (with the paper's optional relaxation:
subsets smaller than σ are accepted when ``|ξ|/σ`` exceeds a survival
ratio, Sec 3.2).

Extreme *detection* here is a prominence-gated zigzag: a candidate
becomes a confirmed extreme only once the stream has moved at least
``prominence`` away from it in the opposite direction.  The paper keeps
this filter implicit (its streams had controlled fluctuation η(σ, δ));
making it explicit is what keeps the extreme sequence stable on noisy
data and under the small value perturbations introduced by embedding —
alterations are confined to the low ``alpha`` bits, orders of magnitude
below any sensible prominence, so embedder and detector agree on the
extreme sequence.

The zigzag supports *stateful continuation* (:class:`ZigzagState`): the
single-pass embedder advances its window past each processed extreme and
resumes the scan mid-slope; continuation reproduces exactly the pivots a
whole-array scan would find, which the property-based test-suite checks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError
from repro.util.validation import as_float_array

#: Kind markers for extremes.
MAXIMUM = 1
MINIMUM = -1


@dataclass(frozen=True)
class Extreme:
    """A confirmed stream extreme with its characteristic subset.

    Indices are *absolute* stream positions (the embedder adds its window
    offset), ``subset_start``/``subset_end`` are inclusive bounds of
    ``ξ(ε, δ)``.
    """

    index: int
    value: float
    kind: int
    subset_start: int
    subset_end: int

    @property
    def subset_size(self) -> int:
        """Number of items in the characteristic subset, ``|ξ(ε, δ)|``."""
        return self.subset_end - self.subset_start + 1

    def is_major(self, sigma: int, relaxation: float = 1.0) -> bool:
        """Majorness test of degree ``sigma``.

        With ``relaxation == 1.0`` this is the strict ``|ξ| >= σ`` rule;
        smaller values implement the paper's fallback ("subsets smaller
        than σ that guarantee an acceptable chance of survival, e.g.
        ``|ξ|/σ > 70%``").
        """
        if sigma < 1:
            raise ParameterError(f"sigma must be >= 1, got {sigma}")
        if not 0.0 < relaxation <= 1.0:
            raise ParameterError(
                f"relaxation must be in (0, 1], got {relaxation}"
            )
        return self.subset_size >= sigma * relaxation


@dataclass
class ZigzagState:
    """Resumable scan state: current trend and best candidate so far.

    ``trend`` is 0 while the initial direction is unknown, else
    ``MAXIMUM``/``MINIMUM`` meaning "currently tracking a candidate of
    that kind".  Candidates store absolute indices.  ``origin`` records
    the first index ever seen by this scan so that the boundary item of
    a fresh scan is never reported as an extreme (a monotone stream has
    no extremes, even though its first item is technically a running
    min/max).
    """

    trend: int = 0
    max_index: int = 0
    max_value: float = float("-inf")
    min_index: int = 0
    min_value: float = float("inf")
    origin: "int | None" = None

    @classmethod
    def fresh(cls) -> "ZigzagState":
        """State for a scan starting with unknown direction."""
        return cls()

    @classmethod
    def after_extreme(cls, extreme_kind: int, next_index: int,
                      next_value: float) -> "ZigzagState":
        """State for resuming just past a confirmed extreme.

        After a maximum the stream is descending, so the scan tracks a
        minimum candidate (and vice versa).
        """
        if extreme_kind == MAXIMUM:
            return cls(trend=MINIMUM, min_index=next_index,
                       min_value=next_value,
                       max_index=next_index, max_value=next_value)
        if extreme_kind == MINIMUM:
            return cls(trend=MAXIMUM, max_index=next_index,
                       max_value=next_value,
                       min_index=next_index, min_value=next_value)
        raise ParameterError(f"extreme_kind must be +-1, got {extreme_kind}")

    # ------------------------------------------------------------------
    # checkpoint / resume
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """JSON-compatible snapshot of the continuation state.

        The ±infinity sentinels of a direction-unknown scan are encoded
        as the strings ``"inf"`` / ``"-inf"`` so the state stays valid
        under strict JSON parsers.
        """
        def encode(value: float):
            if value == float("inf"):
                return "inf"
            if value == float("-inf"):
                return "-inf"
            return float(value)

        return {
            "trend": self.trend,
            "max_index": self.max_index,
            "max_value": encode(self.max_value),
            "min_index": self.min_index,
            "min_value": encode(self.min_value),
            "origin": self.origin,
        }

    @classmethod
    def from_state(cls, state: dict) -> "ZigzagState":
        """Rebuild a continuation state from :meth:`to_state` output."""
        return cls(
            trend=int(state["trend"]),
            max_index=int(state["max_index"]),
            max_value=float(state["max_value"]),
            min_index=int(state["min_index"]),
            min_value=float(state["min_value"]),
            origin=None if state["origin"] is None else int(state["origin"]))


def _zigzag_machine(indices, values, prominence: float, st: ZigzagState,
                    pivots: "list[tuple[int, int]]") -> None:
    """The prominence-gated zigzag state machine over (index, value) pairs.

    ``indices`` are absolute stream positions; the machine mutates ``st``
    and appends confirmed pivots.  This is the seed's per-item scan body,
    factored out so the vectorized :func:`zigzag_pivots` can drive it
    over the reduced candidate sequence and :func:`zigzag_pivots_scalar`
    over every item.
    """
    for i, v in zip(indices, values):
        if st.trend == 0:
            if v > st.max_value:
                st.max_index, st.max_value = i, v
            if v < st.min_value:
                st.min_index, st.min_value = i, v
            if st.max_value - v >= prominence:
                if st.max_index != st.origin:
                    pivots.append((st.max_index, MAXIMUM))
                st.trend = MINIMUM
                st.min_index, st.min_value = i, v
            elif v - st.min_value >= prominence:
                if st.min_index != st.origin:
                    pivots.append((st.min_index, MINIMUM))
                st.trend = MAXIMUM
                st.max_index, st.max_value = i, v
        elif st.trend == MAXIMUM:
            if v > st.max_value:
                st.max_index, st.max_value = i, v
            elif st.max_value - v >= prominence:
                pivots.append((st.max_index, MAXIMUM))
                st.trend = MINIMUM
                st.min_index, st.min_value = i, v
        else:  # tracking a minimum candidate
            if v < st.min_value:
                st.min_index, st.min_value = i, v
            elif v - st.min_value >= prominence:
                pivots.append((st.min_index, MINIMUM))
                st.trend = MAXIMUM
                st.max_index, st.max_value = i, v


def _prepare_scan(prominence: float, state: "ZigzagState | None",
                  offset: int) -> ZigzagState:
    if prominence <= 0:
        raise ParameterError(f"prominence must be positive, got {prominence}")
    st = state if state is not None else ZigzagState.fresh()
    if st.origin is None:
        st.origin = offset
    return st


def zigzag_pivots_scalar(values, prominence: float,
                         state: "ZigzagState | None" = None,
                         offset: int = 0
                         ) -> tuple[list[tuple[int, int]], ZigzagState]:
    """Per-item reference scan — the seed implementation, kept verbatim.

    :func:`zigzag_pivots` is property-tested to be bit-identical to this
    on random, noisy and plateau streams, including chunked continuation.
    """
    st = _prepare_scan(prominence, state, offset)
    pivots: list[tuple[int, int]] = []
    arr = np.asarray(values, dtype=np.float64).ravel()
    _zigzag_machine(range(offset, offset + arr.size), arr.tolist(),
                    prominence, st, pivots)
    return pivots, st


def zigzag_pivots(values: np.ndarray, prominence: float,
                  state: "ZigzagState | None" = None,
                  offset: int = 0) -> tuple[list[tuple[int, int]], ZigzagState]:
    """Confirmed alternating pivots of ``values``.

    Parameters
    ----------
    values:
        The scan range (e.g. the current window contents).
    prominence:
        Minimum counter-move that confirms a pivot.
    state:
        Resumable scan state; ``None`` starts a fresh scan.
    offset:
        Absolute index of ``values[0]`` (pivot indices are absolute).

    Returns
    -------
    (pivots, state):
        ``pivots`` — list of ``(absolute_index, kind)`` confirmed within
        this range; ``state`` — continuation state for the next range.

    Notes
    -----
    The scan is vectorized by *candidate reduction*: the state machine's
    transitions (candidate updates use strict comparisons, confirmations
    compare against running extremes) can only take effect at monotone-run
    boundaries — the first occurrence of each run's terminal value — plus
    the range's first item (where a carried-in extreme may confirm
    immediately).  Those candidates are extracted with array ops and the
    exact per-item machine (:func:`zigzag_pivots_scalar`'s body) runs
    over the reduced sequence, producing bit-identical pivots *and*
    continuation state.
    """
    st = _prepare_scan(prominence, state, offset)
    pivots: list[tuple[int, int]] = []
    arr = np.asarray(values, dtype=np.float64).ravel()
    n = arr.size
    if n == 0:
        return pivots, st
    if n <= 32:
        _zigzag_machine(range(offset, offset + n), arr.tolist(),
                        prominence, st, pivots)
        return pivots, st
    moves = np.nonzero(np.diff(arr))[0]
    if moves.size == 0:
        candidates = np.asarray([0])
    else:
        rising = arr[moves + 1] > arr[moves]
        turns = np.nonzero(rising[:-1] != rising[1:])[0]
        # Run vertices are first occurrences of each run's extremum; the
        # final movement's endpoint covers the (possibly partial) last
        # run.  Trailing-plateau items past it are no-ops: strict
        # comparisons skip them and any confirmation they could make was
        # already made at the first occurrence of their value.  The
        # concatenation is already strictly increasing: vertices are
        # >= 1, and the last movement's endpoint exceeds every turn
        # vertex (turns index into movements before the last one).
        candidates = np.concatenate(
            ([0], moves[turns] + 1, [moves[-1] + 1]))
    if offset:
        indices = (candidates + offset).tolist()
    else:
        indices = candidates.tolist()
    _zigzag_machine(indices, arr[candidates].tolist(), prominence, st,
                    pivots)
    return pivots, st


def characteristic_subset(values: np.ndarray, index: int,
                          delta: float) -> tuple[int, int]:
    """Inclusive bounds of ``ξ(ε, δ)`` around ``values[index]``.

    Expands left and right while items stay within ``delta`` of the
    extreme's value; contiguity is inherent to the expansion (paper's
    "all the items between i and the extreme also belong").
    """
    if delta <= 0:
        raise ParameterError(f"delta must be positive, got {delta}")
    values = np.asarray(values, dtype=np.float64)
    n = values.size
    if not 0 <= index < n:
        raise ParameterError(f"extreme index {index} outside array of {n}")
    # Typical subsets are a dozen items wide: one boxing of a small
    # probe around the extreme plus a Python-float scan beats both the
    # seed's per-element array indexing and full-block ufunc dispatch.
    # Comparisons are the same IEEE doubles either way (``tolist``
    # round-trips float64 exactly), so the bounds are bit-identical.
    # Fat subsets fall through to vectorized block scans.
    probe = 16
    lo = max(0, index - probe)
    hi = min(n, index + 1 + probe)
    vals = values[lo:hi].tolist()
    center = vals[index - lo]
    local = index - lo
    while local > 0 and abs(vals[local - 1] - center) < delta:
        local -= 1
    start = lo + local
    if local == 0 and lo > 0:
        # The probe's left edge is still within delta: continue in
        # vectorized blocks.
        block = 64
        while start > 0:
            block_lo = max(0, start - block)
            bad = (np.abs(values[block_lo:start] - center)
                   >= delta).nonzero()[0]
            if bad.size:
                start = block_lo + int(bad[-1]) + 1
                break
            start = block_lo
    local = index - lo
    limit = len(vals) - 1
    while local < limit and abs(vals[local + 1] - center) < delta:
        local += 1
    end = lo + local
    if local == limit and hi < n:
        block = 64
        last = n - 1
        while end < last:
            block_hi = min(n, end + 1 + block)
            bad = (np.abs(values[end + 1:block_hi] - center)
                   >= delta).nonzero()[0]
            if bad.size:
                end += int(bad[0])
                break
            end = block_hi - 1
    return start, end


def find_extremes(values, prominence: float, delta: float,
                  offset: int = 0) -> list[Extreme]:
    """All confirmed extremes of an array, with characteristic subsets.

    Offline counterpart of the embedder's windowed scan; used by the
    detector (which is allowed to buffer a segment) and by experiments.
    """
    array = as_float_array(values, "values")
    pivots, _ = zigzag_pivots(array, prominence)
    out: list[Extreme] = []
    for absolute_index, kind in pivots:
        local = absolute_index  # offset applied only to reported indices
        start, end = characteristic_subset(array, local, delta)
        out.append(Extreme(index=absolute_index + offset,
                           value=float(array[local]), kind=kind,
                           subset_start=start + offset,
                           subset_end=end + offset))
    return out


def find_major_extremes(values, prominence: float, delta: float,
                        sigma: int, relaxation: float = 1.0,
                        offset: int = 0) -> list[Extreme]:
    """Extremes passing the majorness test of degree ``sigma``."""
    return [e for e in find_extremes(values, prominence, delta, offset)
            if e.is_major(sigma, relaxation)]


def average_subset_size(values, prominence: float, delta: float) -> float:
    """Mean ``|ξ(ε, δ)|`` over all extremes of the array.

    This is the stream statistic the degree-estimation procedure
    (Sec 4.2) preserves from the original stream: transformed streams
    have proportionally thinner subsets, and the ratio estimates the
    transform degree ρ.  Returns 0.0 when the array has no confirmed
    extremes.
    """
    extremes = find_extremes(values, prominence, delta)
    if not extremes:
        return 0.0
    return float(np.mean([e.subset_size for e in extremes]))


def estimate_eta(values, prominence: float, delta: float,
                 sigma: int, relaxation: float = 1.0) -> float:
    """Measured ``η(σ, δ)``: items per major extreme.

    Returns ``inf`` when the array contains no major extreme (useful for
    calibration sweeps that probe overly strict parameters).
    """
    array = as_float_array(values, "values")
    majors = find_major_extremes(array, prominence, delta, sigma, relaxation)
    if not majors:
        return float("inf")
    return array.size / len(majors)
