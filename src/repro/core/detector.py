"""Watermark detection with majority-voting buckets (paper Fig 4).

Detection mirrors the embedding scan: the same window discipline, the
same extreme/label/selection machinery.  For every selected extreme the
encoding strategy produces a :class:`Vote` (true-pattern hits vs
false-pattern hits over the recovered subset); votes accumulate in the
per-bit buckets ``wm[i]^T`` / ``wm[i]^F``, and ``wm_construct``
(:meth:`DetectionResult.wm_estimate`) decides each bit by bucket
difference against the threshold κ — bits whose difference stays within
κ remain *undefined*, which is exactly how un-watermarked data presents.

The detector accepts a known transform degree ρ (stream-rate ratio,
Sec 4.2), or an externally estimated one via
:func:`repro.core.degree.estimate_degree`; majorness is tested at the
adjusted degree σ/ρ.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.confidence import confidence_from_bias, exact_bias_fp
from repro.core.degree import adjusted_sigma, estimate_degree
from repro.core.encoding_factory import build_encoding
from repro.core.extremes import Extreme
from repro.core.params import WatermarkParams
from repro.core.quantize import Quantizer
from repro.core.scanner import ScanCounters, StreamScanner
from repro.core.watermark import to_bits
from repro.errors import DetectionError, ParameterError
from repro.util.hashing import KeyedHasher


@dataclass
class DetectionResult:
    """Voting buckets plus derived verdicts for one detection run."""

    buckets_true: list[int]
    buckets_false: list[int]
    counters: ScanCounters
    abstentions: int
    vote_threshold: int

    # ------------------------------------------------------------------
    @property
    def wm_length(self) -> int:
        """Number of watermark bits being reconstructed."""
        return len(self.buckets_true)

    def bias(self, bit_index: int = 0) -> int:
        """``wm[i]^T - wm[i]^F`` — the figures' "detected watermark bias"."""
        self._check_index(bit_index)
        return self.buckets_true[bit_index] - self.buckets_false[bit_index]

    @property
    def total_bias(self) -> int:
        """Net votes toward the embedded payload across all bits.

        For bit i, "toward the payload" cannot be known without the
        payload; this sums |T - F| signed by the majority, which equals
        bias for the common one-bit case and is reported by the
        resilience experiments.
        """
        return sum(abs(t - f) for t, f in zip(self.buckets_true,
                                              self.buckets_false))

    def votes(self, bit_index: int = 0) -> int:
        """Total votes cast for one bit (``T + F``)."""
        self._check_index(bit_index)
        return self.buckets_true[bit_index] + self.buckets_false[bit_index]

    def wm_estimate(self, threshold: "int | None" = None
                    ) -> "list[bool | None]":
        """Per-bit decision: True / False / None (undefined), Fig 4's
        ``wm_construct`` with threshold κ."""
        kappa = self.vote_threshold if threshold is None else threshold
        if kappa < 0:
            raise ParameterError(f"threshold must be >= 0, got {kappa}")
        estimate: "list[bool | None]" = []
        for t, f in zip(self.buckets_true, self.buckets_false):
            if t - f > kappa:
                estimate.append(True)
            elif f - t > kappa:
                estimate.append(False)
            else:
                estimate.append(None)
        return estimate

    def confidence(self, bit_index: int = 0) -> float:
        """Footnote-5 confidence ``1 - 2^-bias`` for one bit."""
        return confidence_from_bias(self.bias(bit_index))

    def exact_false_positive(self, bit_index: int = 0) -> float:
        """Exact binomial tail for this bit's bias under the null."""
        return exact_bias_fp(self.votes(bit_index), self.bias(bit_index))

    def match_fraction(self, watermark) -> float:
        """Fraction of *decided* bits matching an expected payload.

        Undefined bits are excluded from the denominator; returns 0.0
        when no bit was decided.
        """
        expected = to_bits(watermark)
        if len(expected) != self.wm_length:
            raise DetectionError(
                f"expected payload has {len(expected)} bits, detector ran "
                f"with {self.wm_length}"
            )
        decided = [(est, exp) for est, exp in zip(self.wm_estimate(), expected)
                   if est is not None]
        if not decided:
            return 0.0
        return sum(est == exp for est, exp in decided) / len(decided)

    def recovered_bits(self) -> "list[bool | None]":
        """Alias of :meth:`wm_estimate` with the configured threshold."""
        return self.wm_estimate()

    def summary(self) -> dict:
        """Flat dict for logging / EXPERIMENTS.md tables."""
        c = self.counters
        return {
            "items": c.items,
            "extremes": c.extremes_confirmed,
            "majors": c.majors,
            "selected": c.selected,
            "warmup_skips": c.warmup_skips,
            "abstentions": self.abstentions,
            "total_bias": self.total_bias,
            "bias_bit0": self.bias(0) if self.wm_length else 0,
        }

    def _check_index(self, bit_index: int) -> None:
        if not 0 <= bit_index < self.wm_length:
            raise ParameterError(
                f"bit index {bit_index} outside watermark of {self.wm_length}"
            )


class StreamDetector(StreamScanner):
    """Streaming detector: feed (possibly transformed) chunks, read votes.

    Parameters
    ----------
    wm_length:
        Number of payload bits to reconstruct (or pass the expected
        payload itself — its length is used).
    key, params, encoding:
        Must match the embedding configuration (they are the secret).
    transform_degree:
        Known or estimated ρ; majorness runs at σ/ρ (Sec 4.2).
    """

    def __init__(self, wm_length, key,
                 params: "WatermarkParams | None" = None,
                 encoding="multihash", transform_degree: float = 1.0,
                 require_labels: bool = True,
                 encoding_options: "dict | None" = None) -> None:
        if not isinstance(wm_length, int):
            wm_length = len(to_bits(wm_length))
        if wm_length < 1:
            raise ParameterError(f"wm_length must be >= 1, got {wm_length}")
        params = params or WatermarkParams()
        if transform_degree < 1.0:
            raise ParameterError(
                f"transform_degree must be >= 1, got {transform_degree}"
            )
        quantizer = Quantizer(params.value_bits, params.avg_extra_bits)
        hasher = key if isinstance(key, KeyedHasher) else KeyedHasher(key)
        super().__init__(params, quantizer, hasher, wm_length,
                         effective_sigma=adjusted_sigma(params.sigma,
                                                        transform_degree),
                         require_labels=require_labels)
        self._encoding = build_encoding(encoding, params, quantizer, hasher,
                                        **(encoding_options or {}))
        self._buckets_true = [0] * wm_length
        self._buckets_false = [0] * wm_length
        self._abstentions = 0

    @property
    def wm_length(self) -> int:
        """Number of payload bits this detector reconstructs."""
        return len(self._buckets_true)

    def _handle_selected(self, extreme: Extreme, window_values: np.ndarray,
                         local: int, start: int, end: int, label: int,
                         bit_index: int) -> float:
        # window_values is already a contiguous float64 view; the
        # encoding only reads it, so no defensive copy is needed.
        subset = window_values[start:end + 1]
        vote = self._encoding.detect(subset, local - start, label)
        decision = vote.decision
        if decision is True:
            self._buckets_true[bit_index] += 1
        elif decision is False:
            self._buckets_false[bit_index] += 1
        else:
            self._abstentions += 1
        return self._reference_value(extreme, window_values, start, end)

    def result(self) -> DetectionResult:
        """Snapshot of the evidence accumulated so far."""
        return DetectionResult(
            buckets_true=list(self._buckets_true),
            buckets_false=list(self._buckets_false),
            counters=self.counters,
            abstentions=self._abstentions,
            vote_threshold=self._params.vote_threshold)

    def encoding_stats(self) -> dict:
        """Lifetime telemetry from the encoding strategy, if it keeps any.

        Detection never embeds, but encodings with a shared probe memo
        (multi-hash) still accrue pattern probes/hits here — the same
        pull-based observability hook the embedder exposes.
        """
        snapshot = getattr(self._encoding, "stats_snapshot", None)
        return snapshot() if snapshot is not None else {}

    # ------------------------------------------------------------------
    # checkpoint / resume
    # ------------------------------------------------------------------
    def vote_state(self) -> dict:
        """JSON-compatible snapshot of the voting buckets."""
        return {
            "buckets_true": list(self._buckets_true),
            "buckets_false": list(self._buckets_false),
            "abstentions": self._abstentions,
        }

    def restore_vote_state(self, state: dict) -> None:
        """Load a :meth:`vote_state` snapshot into this detector."""
        buckets_true = [int(x) for x in state["buckets_true"]]
        buckets_false = [int(x) for x in state["buckets_false"]]
        if len(buckets_true) != len(self._buckets_true) \
                or len(buckets_false) != len(self._buckets_false):
            raise ParameterError(
                f"checkpoint holds {len(buckets_true)} vote buckets, "
                f"detector was built for {len(self._buckets_true)} bits"
            )
        self._buckets_true = buckets_true
        self._buckets_false = buckets_false
        self._abstentions = int(state["abstentions"])


def detect_best(values, wm_length, key,
                params: "WatermarkParams | None" = None,
                encoding="multihash",
                candidate_degrees: "list[float] | None" = None,
                reference_subset_size: "float | None" = None,
                expected=None,
                require_labels: bool = True,
                encoding_options: "dict | None" = None,
                workers: "int | None" = None
                ) -> tuple[DetectionResult, float]:
    """Multi-pass offline detection over candidate transform degrees.

    The paper lists "handling ability of offline multi-pass detection"
    among its improvements: when the transform applied by Mallory is
    unknown, the detector can afford several passes, one per candidate
    ρ, and keep the most decisive evidence.  By default the candidates
    are ρ = 1 (value-only attacks preserve the rate) plus the Sec-4.2
    subset-shrinkage estimate when a reference statistic is available.
    Candidate degrees are deduplicated at the same 0.25 tolerance the
    shrinkage estimate uses, so a caller-supplied list cannot enqueue a
    near-identical (and equally expensive) pass twice.

    ``expected`` (the payload the rights owner embedded, when known)
    scores each pass by the *signed* vote margin toward that payload;
    without it the unsigned total bias is used.  Each pass is scored
    exactly once; ties keep the earliest candidate (the scan is
    deterministic, so "strictly better replaces" and "first wins ties"
    together make the outcome order-stable).

    ``workers`` fans the passes across a process pool (they are
    independent scans of the same values); the winner is identical to
    the serial sweep because all results come back in candidate order.

    Returns ``(best_result, best_degree)``.  Note the multiple-
    comparisons caveat: testing k hypotheses scales the false-positive
    probability by at most k (Bonferroni), which is immaterial against
    the scheme's exponentially small Pfp values.
    """
    params = params or WatermarkParams()
    degrees: list[float] = []
    for degree in (candidate_degrees or [1.0]):
        if all(abs(float(degree) - d) > 0.25 for d in degrees):
            degrees.append(float(degree))
    if reference_subset_size is not None:
        estimated = estimate_degree(reference_subset_size, values,
                                    params.prominence, params.delta)
        if all(abs(estimated - d) > 0.25 for d in degrees):
            degrees.append(estimated)
    expected_bits = to_bits(expected) if expected is not None else None

    def score(result: DetectionResult) -> int:
        if expected_bits is None:
            return result.total_bias
        return sum((t - f) if bit else (f - t)
                   for t, f, bit in zip(result.buckets_true,
                                        result.buckets_false,
                                        expected_bits))

    if workers is not None and workers > 1 and len(degrees) > 1:
        from repro.core.parallel_detect import DetectionTask, run_tasks

        tasks = [DetectionTask(values=values, wm_length=wm_length, key=key,
                               params=params, encoding=encoding,
                               transform_degree=degree,
                               require_labels=require_labels,
                               encoding_options=encoding_options)
                 for degree in degrees]
        results = run_tasks(tasks, workers=workers)
    else:
        results = [detect_watermark(values, wm_length, key, params=params,
                                    encoding=encoding,
                                    transform_degree=degree,
                                    require_labels=require_labels,
                                    encoding_options=encoding_options)
                   for degree in degrees]

    best: "DetectionResult | None" = None
    best_score = 0
    best_degree = degrees[0]
    for degree, result in zip(degrees, results):
        result_score = score(result)
        if best is None or result_score > best_score:
            best = result
            best_score = result_score
            best_degree = degree
    assert best is not None  # degrees is never empty
    return best, best_degree


def detect_watermark(values, wm_length, key,
                     params: "WatermarkParams | None" = None,
                     encoding="multihash",
                     transform_degree: "float | str" = 1.0,
                     reference_subset_size: "float | None" = None,
                     require_labels: bool = True,
                     encoding_options: "dict | None" = None,
                     chunk_size: int = 4096,
                     workers: "int | None" = None,
                     spans: "int | None" = None) -> DetectionResult:
    """Offline detection over an in-memory (possibly transformed) stream.

    ``transform_degree="auto"`` estimates ρ from characteristic-subset
    shrinkage (Sec 4.2) and requires ``reference_subset_size`` — the
    ``average_subset_size`` recorded in the :class:`EmbedReport`.

    ``workers`` > 1 cuts the stream into contiguous spans (``spans``,
    default one per worker), scans them in a process pool and merges the
    vote buckets exactly (they are additive — see
    :mod:`repro.core.parallel_detect` for the merge law and the
    span-boundary warmup caveat).
    """
    array = np.asarray(values, dtype=np.float64).ravel()
    if array.size == 0:
        raise ParameterError("cannot detect in an empty stream")
    params = params or WatermarkParams()
    if transform_degree == "auto":
        if reference_subset_size is None:
            raise ParameterError(
                "transform_degree='auto' requires reference_subset_size "
                "(the EmbedReport's average_subset_size)"
            )
        rho = estimate_degree(reference_subset_size, array,
                              params.prominence, params.delta)
    else:
        rho = float(transform_degree)
    if (workers is not None and workers > 1) or \
            (spans is not None and spans > 1):
        from repro.core.parallel_detect import detect_watermark_spans

        return detect_watermark_spans(
            array, wm_length, key, params=params, encoding=encoding,
            transform_degree=rho, require_labels=require_labels,
            encoding_options=encoding_options,
            spans=spans if spans is not None else (workers or 1),
            workers=workers)
    detector = StreamDetector(wm_length, key, params=params,
                              encoding=encoding, transform_degree=rho,
                              require_labels=require_labels,
                              encoding_options=encoding_options)
    detector.run(array, chunk_size=chunk_size)
    return detector.result()
