"""Multi-layer watermarks (the paper's Sec-4 "multi-layer marks").

The paper lists "multi-layer marks aiming to better handle
summarization" among its improvements without elaborating.  The natural
construction — and the one real data demands — embeds the same payload
at several *extreme scales* simultaneously: a fine layer on the
small-amplitude fluctuations (weather wiggles, in the IRTF setting) and
a coarse layer on the large ones (diurnal cycles).  Deep summarization
flattens the fine layer but leaves the coarse extremes standing, so the
coarse layer keeps testifying exactly when the fine one fades; milder
transforms are answered by the fine layer's greater carrier density.

Layers are ordered coarse-to-fine at embedding: every encoding only
rewrites the low ``alpha`` bits (orders of magnitude below any layer's
prominence), so a later, finer pass never disturbs an earlier layer's
extremes — the layers are independent channels by construction.
Detection runs once per layer and combines evidence by adding the
per-bit voting buckets, which is sound because each layer's votes are
keyed hashes over disjoint carrier sets (bucket sums of independent
fair coins remain fair coins under the null).

Layer parameter sets share everything except the extreme-detection
scale; :func:`default_layers` derives a standard coarse+fine pair from
a base parameter set.
"""

from __future__ import annotations

import numpy as np

from repro.core.detector import DetectionResult, detect_watermark
from repro.core.embedder import EmbedReport, watermark_stream
from repro.core.params import WatermarkParams
from repro.core.scanner import ScanCounters
from repro.errors import ParameterError


def default_layers(base: "WatermarkParams | None" = None,
                   fine_factor: float = 0.3) -> list[WatermarkParams]:
    """A coarse+fine layer pair derived from ``base``.

    The fine layer scales prominence and radius by ``fine_factor``; both
    layers keep the base's selection, labeling and encoding settings.
    """
    base = base or WatermarkParams()
    if not 0.05 <= fine_factor < 1.0:
        raise ParameterError(
            f"fine_factor must be in [0.05, 1), got {fine_factor}"
        )
    fine = base.with_updates(prominence=base.prominence * fine_factor,
                             delta=base.delta * fine_factor)
    return [base, fine]


def _check_layers(layers: list[WatermarkParams]) -> None:
    if len(layers) < 2:
        raise ParameterError("multi-layer embedding needs >= 2 layers")
    for coarser, finer in zip(layers, layers[1:]):
        if finer.prominence >= coarser.prominence:
            raise ParameterError(
                "layers must be ordered coarse-to-fine by prominence "
                f"({finer.prominence} >= {coarser.prominence})"
            )


def watermark_multilayer(values, watermark, key,
                         layers: "list[WatermarkParams] | None" = None,
                         encoding="multihash"
                         ) -> tuple[np.ndarray, list[EmbedReport]]:
    """Embed ``watermark`` at every layer's extreme scale.

    Returns the marked stream and one :class:`EmbedReport` per layer
    (coarse first).  Layer keys are domain-separated from ``key`` so the
    layers' carrier selections are independent.
    """
    layers = layers if layers is not None else default_layers()
    _check_layers(layers)
    marked = np.asarray(values, dtype=np.float64).copy()
    reports: list[EmbedReport] = []
    for depth, params in enumerate(layers):
        layer_key = _layer_key(key, depth)
        marked, report = watermark_stream(marked, watermark, layer_key,
                                          params=params, encoding=encoding)
        reports.append(report)
    return marked, reports


def detect_multilayer(values, wm_length, key,
                      layers: "list[WatermarkParams] | None" = None,
                      encoding="multihash",
                      transform_degree: float = 1.0) -> DetectionResult:
    """Detect across all layers and combine the voting buckets."""
    layers = layers if layers is not None else default_layers()
    _check_layers(layers)
    if not isinstance(wm_length, int):
        from repro.core.watermark import to_bits

        wm_length = len(to_bits(wm_length))
    combined_true = [0] * wm_length
    combined_false = [0] * wm_length
    combined_counters = ScanCounters()
    abstentions = 0
    for depth, params in enumerate(layers):
        result = detect_watermark(values, wm_length, _layer_key(key, depth),
                                  params=params, encoding=encoding,
                                  transform_degree=transform_degree)
        for i in range(wm_length):
            combined_true[i] += result.buckets_true[i]
            combined_false[i] += result.buckets_false[i]
        counters = result.counters
        combined_counters.items = max(combined_counters.items,
                                      counters.items)
        combined_counters.extremes_confirmed += counters.extremes_confirmed
        combined_counters.majors += counters.majors
        combined_counters.selected += counters.selected
        combined_counters.warmup_skips += counters.warmup_skips
        combined_counters.subset_size_sum += counters.subset_size_sum
        abstentions += result.abstentions
    return DetectionResult(buckets_true=combined_true,
                           buckets_false=combined_false,
                           counters=combined_counters,
                           abstentions=abstentions,
                           vote_threshold=layers[0].vote_threshold)


def _layer_key(key, depth: int) -> bytes:
    """Domain-separated per-layer key."""
    from repro.util.hashing import KeyedHasher

    hasher = key if isinstance(key, KeyedHasher) else KeyedHasher(key)
    return hasher.derive(f"layer-{depth}").key
