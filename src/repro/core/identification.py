"""Key and payload identification across candidate sets.

Court scenarios the offline API leaves to the caller, packaged:

* **Which of my keys marked this stream?**  A distributor watermarks
  each licensed customer's feed with a *different* key (fingerprinting);
  when a leak surfaces, :func:`identify_key` detects against every
  candidate key and ranks the evidence — the leaking customer's key
  stands out with an exponentially better false-positive bound.
* **Is it my payload?**  :func:`verify_payload` condenses a multi-bit
  detection into one decision with an explicit evidence margin.

Statistical note: scanning ``k`` candidate keys multiplies the chance
that *some* clean key shows a given bias by at most ``k`` (union bound);
:class:`KeyVerdict` therefore reports the Bonferroni-adjusted
false-positive alongside the raw one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.detector import detect_watermark
from repro.core.params import WatermarkParams
from repro.errors import ParameterError


@dataclass(frozen=True)
class KeyVerdict:
    """Evidence for one candidate key."""

    key_id: str
    bias: int
    votes: int
    false_positive: float
    adjusted_false_positive: float

    @property
    def decisive(self) -> bool:
        """True when even the adjusted bound is below one in a thousand."""
        return self.adjusted_false_positive < 1e-3 and self.bias > 0


def identify_key(values, candidate_keys: dict, wm_length: int = 1,
                 params: "WatermarkParams | None" = None,
                 encoding="multihash", transform_degree: float = 1.0
                 ) -> list[KeyVerdict]:
    """Rank candidate keys by detection evidence (best first).

    ``candidate_keys`` maps an identifier (e.g. a customer name) to that
    customer's secret key.
    """
    if not candidate_keys:
        raise ParameterError("candidate_keys must not be empty")
    n_candidates = len(candidate_keys)
    verdicts: list[KeyVerdict] = []
    for key_id, key in candidate_keys.items():
        result = detect_watermark(values, wm_length, key, params=params,
                                  encoding=encoding,
                                  transform_degree=transform_degree)
        fp = result.exact_false_positive(0)
        verdicts.append(KeyVerdict(
            key_id=str(key_id), bias=result.bias(0),
            votes=result.votes(0), false_positive=fp,
            adjusted_false_positive=min(1.0, fp * n_candidates)))
    verdicts.sort(key=lambda v: (v.adjusted_false_positive, -v.bias))
    return verdicts


@dataclass(frozen=True)
class PayloadVerdict:
    """Evidence that a specific multi-bit payload is present."""

    matched_bits: int
    decided_bits: int
    total_bits: int
    net_margin: int

    @property
    def present(self) -> bool:
        """Practical decision rule: most bits decided, all matching,
        with positive net vote margin."""
        return (self.decided_bits >= max(1, self.total_bits // 2)
                and self.matched_bits == self.decided_bits
                and self.net_margin > 0)


def verify_payload(values, payload, key,
                   params: "WatermarkParams | None" = None,
                   encoding="multihash",
                   transform_degree: float = 1.0) -> PayloadVerdict:
    """Test for one specific payload; returns a condensed verdict."""
    from repro.core.watermark import to_bits

    bits = to_bits(payload)
    result = detect_watermark(values, len(bits), key, params=params,
                              encoding=encoding,
                              transform_degree=transform_degree)
    estimate = result.wm_estimate()
    decided = [(est, exp) for est, exp in zip(estimate, bits)
               if est is not None]
    matched = sum(1 for est, exp in decided if est == exp)
    margin = sum((t - f) if bit else (f - t)
                 for t, f, bit in zip(result.buckets_true,
                                      result.buckets_false, bits))
    return PayloadVerdict(matched_bits=matched, decided_bits=len(decided),
                          total_bits=len(bits), net_margin=margin)
