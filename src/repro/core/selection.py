"""Hash-based extreme selection and bit-position derivation (Sec 3.2/4.1).

Selection decides *which* major extremes carry watermark bits and *which*
bit each one carries::

    i = H(msb(ε, β), k1) mod φ        — carry wm[i] iff i < b(wm)

Only a fraction ``b(wm)/φ`` of major extremes are selected; the
one-wayness of H forces Mallory to guess the carrier locations.

The *bit position* inside the alterable low bits is derived differently
by the two generations of the scheme:

* the **initial** scheme (Sec 3.2) uses ``H(msb(ε, β), k1) mod α`` — the
  same variable that selects the bit *value*, which is exactly the
  correlation Mallory's bucket-counting attack exploits;
* the **labeled** scheme (Sec 4.1) uses ``H(label(ε), k1) mod α`` — an
  independent, shape-derived source, defeating the attack.

Both are provided; the ablation benchmark contrasts them under the
correlation attack.  Positions returned leave room for the two guard
bits of the initial encoding (``1 <= position <= α - 2``).
"""

from __future__ import annotations

from repro.core.params import WatermarkParams
from repro.core.quantize import Quantizer
from repro.errors import ParameterError
from repro.util.hashing import KeyedHasher


def selection_index(extreme_value: float, params: WatermarkParams,
                    quantizer: Quantizer, hasher: KeyedHasher,
                    label: int = 1) -> int:
    """The raw selection hash ``H(msb(ε, β); label, k1) mod φ``.

    The paper's Sec-3.2 criterion hashes ``msb(ε, β)`` alone; with the
    coarse selection cells a robust deployment needs, that caps the
    number of *distinct* selection outcomes at ``2^β`` — the "repeated
    labels" problem the paper lists among its improvements.  Mixing the
    extreme's label into the hash restores full selection entropy while
    keeping exactly the recoverability properties labels already have
    (a broken label already voids the vote through the bit-encoding
    convention, so no new fragility is introduced).  With ``label=1``
    (the labeling-disabled mode) this reduces to the paper's original
    criterion.
    """
    msb_value = quantizer.msb(extreme_value, params.msb_bits)
    return hasher.mod_text(f"sel:{msb_value}:{label}", params.phi)


def select_watermark_bit(extreme_value: float, wm_length: int,
                         params: WatermarkParams, quantizer: Quantizer,
                         hasher: KeyedHasher, label: int = 1) -> "int | None":
    """Watermark bit index carried by this extreme, or ``None``.

    Implements the Sec-3.2 criterion: the extreme carries ``wm[i]`` iff
    ``H(msb(ε, β); label, k1) mod φ = i`` with ``i < b(wm)``.
    """
    if wm_length < 1:
        raise ParameterError(f"wm_length must be >= 1, got {wm_length}")
    index = selection_index(extreme_value, params, quantizer, hasher, label)
    return index if index < wm_length else None


def bit_position_from_label(label: int, params: WatermarkParams,
                            hasher: KeyedHasher) -> int:
    """Labeled-scheme embedding position (Sec 4.1), guard-safe.

    ``1 + H(label, k1) mod (α - 2)`` — uncorrelated with the embedded
    value because the label derives from preceding stream shape.
    """
    if label <= 0:
        raise ParameterError(f"label must be a positive int, got {label}")
    return 1 + hasher.mod_text(f"pos:{label}", params.payload_positions)


def bit_position_from_value(extreme_value: float, params: WatermarkParams,
                            quantizer: Quantizer, hasher: KeyedHasher) -> int:
    """Initial-scheme embedding position (Sec 3.2) — value-correlated.

    Kept for the correlation-attack ablation; production embedding uses
    :func:`bit_position_from_label`.
    """
    msb_value = quantizer.msb(extreme_value, params.msb_bits)
    return 1 + hasher.mod_text(f"pos:{msb_value}", params.payload_positions)
