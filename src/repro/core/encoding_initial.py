"""The initial guarded-bit encoding (paper Sec 3.2 / 3.3).

One watermark bit is written at a secret position ``bit`` inside the
alterable low ``alpha`` bits of *every* item of the characteristic
subset (and the extreme itself)::

    v[bit - 1] <- false ; v[bit] <- wm[i] ; v[bit + 1] <- false

The zeroed guard bits keep averaging (summarization) from carrying into
the payload position, and replicating the write across the subset lets
any sampled survivor testify.  Detection simply reads ``v[bit]`` of the
recovered extreme.

This encoding is fast (the paper measured ~5.7% per-item overhead) but
leaves a statistical fingerprint — a whole subset sharing one bit value
with zeroed neighbours — that the bias-detection attack (Sec 4.3) and
the bucket-counting correlation attack (Sec 4.1) exploit.  The
multi-hash encoding supersedes it; this implementation is kept both as
the paper's baseline and for the throughput/ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.params import WatermarkParams
from repro.core.quantize import Quantizer
from repro.core.selection import bit_position_from_label, bit_position_from_value
from repro.errors import ParameterError
from repro.util import bitops
from repro.util.hashing import KeyedHasher


@dataclass(frozen=True)
class EmbedOutcome:
    """Result of embedding one bit into one characteristic subset."""

    q_values: list[int]
    iterations: int


@dataclass(frozen=True)
class Vote:
    """Per-extreme detection evidence: true-pattern vs false-pattern hits."""

    n_true: int
    n_false: int

    @property
    def decision(self) -> "bool | None":
        """Majority decision, ``None`` on a tie (abstain)."""
        if self.n_true > self.n_false:
            return True
        if self.n_false > self.n_true:
            return False
        return None


class InitialEncoding:
    """Strategy object for the Sec-3.2 guarded-bit scheme.

    Parameters
    ----------
    params, quantizer, hasher:
        Shared pipeline state.
    use_label_positions:
        ``True`` (default) derives the bit position from the extreme's
        label (the Sec-4.1 fix); ``False`` reproduces the original
        value-derived position — vulnerable to the correlation attack,
        retained for the ablation benchmark.
    """

    name = "initial"

    def __init__(self, params: WatermarkParams, quantizer: Quantizer,
                 hasher: KeyedHasher,
                 use_label_positions: bool = True) -> None:
        self._params = params
        self._quantizer = quantizer
        self._hasher = hasher
        self._use_label_positions = use_label_positions

    # ------------------------------------------------------------------
    def _position(self, extreme_value: float, label: int) -> int:
        if self._use_label_positions:
            return bit_position_from_label(label, self._params, self._hasher)
        return bit_position_from_value(extreme_value, self._params,
                                       self._quantizer, self._hasher)

    def embed(self, q_subset: list[int], extreme_offset: int, label: int,
              bit: bool) -> EmbedOutcome:
        """Write ``bit`` (with guards) into every subset member."""
        if not 0 <= extreme_offset < len(q_subset):
            raise ParameterError(
                f"extreme_offset {extreme_offset} outside subset of "
                f"{len(q_subset)}"
            )
        extreme_value = self._quantizer.dequantize(q_subset[extreme_offset])
        position = self._position(extreme_value, label)
        if position < 1:
            raise ParameterError(
                f"guarded bit position must be >= 1 to fit the low guard, "
                f"got {position}"
            )
        # Fused form of bitops.apply_guarded_bit: clear both guards and
        # the payload position in one mask, then set the payload bit.
        clear = ~((1 << (position - 1)) | (1 << position)
                  | (1 << (position + 1)))
        payload = int(bool(bit)) << position
        new_values = [(q & clear) | payload for q in q_subset]
        return EmbedOutcome(q_values=new_values, iterations=len(q_subset))

    def detect(self, float_subset: np.ndarray, extreme_offset: int,
               label: int) -> Vote:
        """Read the payload bit back from the recovered extreme.

        Follows the paper's detection loop (Fig 4), which tests the
        extreme item itself; surviving subset members re-create the same
        extreme value under sampling, and the guard bits protect the
        payload under (sub-degree) summarization.
        """
        if not 0 <= extreme_offset < len(float_subset):
            raise ParameterError(
                f"extreme_offset {extreme_offset} outside subset of "
                f"{len(float_subset)}"
            )
        extreme_value = float(float_subset[extreme_offset])
        position = self._position(extreme_value, label)
        q = self._quantizer.quantize(extreme_value)
        bit = bitops.read_guarded_bit(q, position)
        return Vote(n_true=int(bit), n_false=int(not bit))
