"""The multi-hash bit encoding (paper Sec 4.3).

For a characteristic subset ``ξ(ε, δ) = {x1 .. xa}`` consider all
contiguous sub-range averages ``m_ij = mean(x_i .. x_j)``.  The *bit
encoding convention* declares

* **true**  embedded iff ``lsb(H(lsb(m_ij), label(ε)), ω) == 2^ω - 1``
* **false** embedded iff ``lsb(H(lsb(m_ij), label(ε)), ω) == 0``

for every *active* ``m_ij``.  Embedding searches the low ``alpha`` bits
of the subset members until the convention holds; because the search
target is a hash pattern, the resulting alterations are computationally
indistinguishable from random noise — defeating the bias-detection
attack — while any summarized chunk that lands inside the subset *is*
one of the ``m_ij`` and therefore still testifies at detection time.

Two search procedures are provided:

* ``method="random"`` — the paper's baseline: draw the subset's low bits
  at random until all active constraints hold.  Expected iterations are
  ``2^(ω·|active|)`` — exponential, exactly the cost curve of Fig 11(a).
* ``method="pruned"`` — the "efficient pruned-space algorithm" the paper
  calls for as future work: fix items left-to-right, backtracking; item
  ``k`` only has to satisfy the constraints of runs *ending* at ``k``, so
  the expected cost drops to roughly ``a · 2^(ω·g)`` for run length
  ``g`` — linear in the subset size.  Candidates are enumerated in order
  of increasing distance from the original value, implementing the
  paper's "minimize Euclidean distance from the starting point" aim.

The *active* set implements the computation-reducing technique of
Sec 4.3: instead of all ``a(a+1)/2`` averages, only runs of length up to
``active_run_length`` (the *guaranteed resilience*: the summarization /
sampling degree that is survived by construction) are constrained.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.encoding_initial import EmbedOutcome, Vote
from repro.core.params import WatermarkParams
from repro.core.quantize import Quantizer
from repro.errors import EncodingSearchExhausted, ParameterError
from repro.util.hashing import KeyedHasher
from repro.util.rng import make_rng


def convention_pattern(key: bytes, avg_key: int, label: int, omega: int,
                       algorithm: str = "md5") -> int:
    """Low ``omega`` hash bits deciding an average's testimony.

    This is the hot path of both embedding search and detection, so it
    hashes a fixed-width packed payload directly instead of going through
    the generic :func:`repro.util.hashing.H` serializer.  The construction
    is the same keyed sandwich ``hash(k ; avg_key ; label ; k)``; the
    label participates as the paper's second hash argument, the secret
    ``k1`` via ``key``.
    """
    payload = (key + avg_key.to_bytes(8, "big")
               + label.to_bytes(8, "big") + key)
    digest = hashlib.new(algorithm, payload).digest()
    return int.from_bytes(digest[-3:], "big") & ((1 << omega) - 1)


def active_pairs(size: int, run_length: int) -> list[tuple[int, int]]:
    """Active sub-ranges: all runs of length 1..run_length (inclusive).

    ``run_length >= size`` yields the paper's full ``a(a+1)/2`` set.
    """
    if size < 1:
        raise ParameterError(f"subset size must be >= 1, got {size}")
    if run_length < 1:
        raise ParameterError(f"run_length must be >= 1, got {run_length}")
    pairs: list[tuple[int, int]] = []
    for length in range(1, min(run_length, size) + 1):
        for start in range(0, size - length + 1):
            pairs.append((start, start + length - 1))
    return pairs


def expected_search_iterations(size: int, run_length: int, omega: int) -> float:
    """Analytic expected iterations of the random search: ``2^(ω·c)``.

    ``c`` is the number of active constraints.  This is the curve the
    paper derives in Sec 4.3 ("the expected number of configurations ...
    is 2^(ω·a(a+1)/2)" for the full set) and plots in Fig 11(a).
    """
    c = len(active_pairs(size, run_length))
    return float(2.0 ** (omega * c))


@dataclass(frozen=True)
class MultihashStats:
    """Bookkeeping from one embedding search (Fig 11(a)'s metric)."""

    iterations: int
    hash_evaluations: int
    constraints: int


class MultihashEncoding:
    """Strategy object for the Sec-4.3 multi-hash scheme."""

    name = "multihash"

    def __init__(self, params: WatermarkParams, quantizer: Quantizer,
                 hasher: KeyedHasher, method: str = "pruned",
                 rng: "int | np.random.Generator | None" = None) -> None:
        if method not in ("pruned", "random"):
            raise ParameterError(
                f"method must be 'pruned' or 'random', got {method!r}"
            )
        self._params = params
        self._quantizer = quantizer
        self._key = hasher.key
        self._algorithm = hasher.algorithm
        self._method = method
        self._rng = make_rng(rng)
        self.last_stats: "MultihashStats | None" = None
        # Hot-path machinery: a digest context pre-fed with the leading
        # key (copy() per probe beats re-hashing the prefix), plus a
        # bounded memo over (avg_key, label) — the pruned search re-tests
        # the same short-run averages across backtracking candidates, and
        # detection re-keys every average of overlapping active runs.
        base = hashlib.new(self._algorithm)
        base.update(self._key)
        self._base_context = base
        self._omega_mask = (1 << params.omega) - 1
        self._pattern_memo: "dict[tuple[int, int], int]" = {}

    # ------------------------------------------------------------------
    _PATTERN_MEMO_LIMIT = 1 << 16

    def _pattern(self, avg_key: int, label: int) -> int:
        probe = (avg_key, label)
        memo = self._pattern_memo
        pattern = memo.get(probe)
        if pattern is None:
            digest_context = self._base_context.copy()
            digest_context.update(avg_key.to_bytes(8, "big")
                                  + label.to_bytes(8, "big") + self._key)
            digest = digest_context.digest()
            pattern = int.from_bytes(digest[-3:], "big") & self._omega_mask
            if len(memo) >= self._PATTERN_MEMO_LIMIT:
                memo.clear()
            memo[probe] = pattern
        return pattern

    def _target(self, bit: bool) -> int:
        return (1 << self._params.omega) - 1 if bit else 0

    def _trim(self, length: int, extreme_offset: int,
              cap: int) -> tuple[int, int]:
        """Window of at most ``cap`` items centred on the extreme."""
        if length <= cap:
            return 0, length
        start = max(0, min(extreme_offset - cap // 2, length - cap))
        return start, start + cap

    # ------------------------------------------------------------------
    def embed(self, q_subset: list[int], extreme_offset: int, label: int,
              bit: bool) -> EmbedOutcome:
        """Search the subset's low bits until the convention encodes ``bit``.

        Raises :class:`EncodingSearchExhausted` when the iteration cap is
        reached; the embedder treats that as a skipped extreme.
        """
        if not 0 <= extreme_offset < len(q_subset):
            raise ParameterError(
                f"extreme_offset {extreme_offset} outside subset of "
                f"{len(q_subset)}"
            )
        start, end = self._trim(len(q_subset), extreme_offset,
                                self._params.max_subset_embed)
        working = list(q_subset)
        segment = working[start:end]
        target = self._target(bit)
        if self._method == "pruned":
            new_segment, stats = self._search_pruned(segment, label, target)
        else:
            new_segment, stats = self._search_random(segment, label, target)
        working[start:end] = new_segment
        self.last_stats = stats
        return EmbedOutcome(q_values=working, iterations=stats.iterations)

    # ------------------------------------------------------------------
    def _search_random(self, q_segment: list[int], label: int,
                       target: int) -> tuple[list[int], MultihashStats]:
        """Paper-baseline exhaustive/randomized search (exponential)."""
        params = self._params
        size = len(q_segment)
        pairs = active_pairs(size, params.active_run_length)
        mask = (1 << params.lsb_bits) - 1
        highs = [q & ~mask for q in q_segment]
        floats = np.asarray(self._quantizer.dequantize_array(q_segment),
                            dtype=np.float64)
        hash_evals = 0
        for iteration in range(1, params.max_search_iterations + 1):
            lows = self._rng.integers(0, mask + 1, size=size)
            candidate = [highs[i] | int(lows[i]) for i in range(size)]
            floats = self._quantizer.dequantize_array(candidate)
            ok = True
            for (i, j) in pairs:
                avg_key = self._quantizer.average_key(floats[i:j + 1])
                hash_evals += 1
                if self._pattern(avg_key, label) != target:
                    ok = False
                    break
            if ok:
                stats = MultihashStats(iterations=iteration,
                                       hash_evaluations=hash_evals,
                                       constraints=len(pairs))
                return candidate, stats
        raise EncodingSearchExhausted(
            f"random search exhausted {params.max_search_iterations} "
            f"iterations for {len(pairs)} constraints"
        )

    # ------------------------------------------------------------------
    def _candidates_by_distance(self, original_low: int,
                                limit: int) -> Iterator[int]:
        """Enumerate low-bit candidates by increasing |candidate - original|.

        Implements the minimize-distance aim: the first satisfying
        configuration found is also (per item) the closest one.
        """
        yield original_low
        distance = 1
        while True:
            emitted = False
            lower = original_low - distance
            upper = original_low + distance
            if lower >= 0:
                yield lower
                emitted = True
            if upper < limit:
                yield upper
                emitted = True
            if not emitted:
                return
            distance += 1

    def _search_pruned(self, q_segment: list[int], label: int,
                       target: int) -> tuple[list[int], MultihashStats]:
        """Backtracking left-to-right search (linear in subset size)."""
        params = self._params
        size = len(q_segment)
        pairs = active_pairs(size, params.active_run_length)
        ends_at: list[list[tuple[int, int]]] = [[] for _ in range(size)]
        for (i, j) in pairs:
            ends_at[j].append((i, j))
        mask = (1 << params.lsb_bits) - 1
        limit = mask + 1
        highs = [q & ~mask for q in q_segment]
        original_lows = [q & mask for q in q_segment]
        candidate = list(q_segment)
        floats = np.asarray(self._quantizer.dequantize_array(q_segment),
                            dtype=np.float64)

        iterators: list[Iterator[int]] = [iter(()) for _ in range(size)]
        iterations = 0
        hash_evals = 0
        k = 0
        iterators[0] = self._candidates_by_distance(original_lows[0], limit)
        while 0 <= k < size:
            advanced = False
            for low in iterators[k]:
                iterations += 1
                if iterations > params.max_search_iterations:
                    raise EncodingSearchExhausted(
                        f"pruned search exhausted "
                        f"{params.max_search_iterations} iterations"
                    )
                candidate[k] = highs[k] | low
                floats[k] = self._quantizer.dequantize(candidate[k])
                ok = True
                for (i, j) in ends_at[k]:
                    avg_key = self._quantizer.average_key(floats[i:j + 1])
                    hash_evals += 1
                    if self._pattern(avg_key, label) != target:
                        ok = False
                        break
                if ok:
                    advanced = True
                    break
            if advanced:
                k += 1
                if k < size:
                    iterators[k] = self._candidates_by_distance(
                        original_lows[k], limit)
            else:
                # Exhausted this item's space: restore and backtrack.
                candidate[k] = q_segment[k]
                floats[k] = self._quantizer.dequantize(candidate[k])
                k -= 1
        if k < 0:
            raise EncodingSearchExhausted(
                "pruned search backtracked out of the subset "
                f"({len(pairs)} constraints unsatisfiable in "
                f"{params.lsb_bits}-bit space)"
            )
        stats = MultihashStats(iterations=iterations,
                               hash_evaluations=hash_evals,
                               constraints=len(pairs))
        return candidate, stats

    # ------------------------------------------------------------------
    def detect(self, float_subset: np.ndarray, extreme_offset: int,
               label: int) -> Vote:
        """Count true/false convention hits over the recovered averages.

        Every active sub-range average of the *received* subset is keyed
        and hashed; matches of the all-ones pattern testify "true",
        matches of the all-zeroes pattern "false".  On unwatermarked data
        the two counts are statistically balanced (with ω = 1 every
        average falls in one of the two classes at random).
        """
        if len(float_subset) == 0:
            raise ParameterError("cannot detect in an empty subset")
        start, end = self._trim(len(float_subset), extreme_offset,
                                self._params.max_subset_detect)
        segment = np.asarray(float_subset[start:end], dtype=np.float64)
        pairs = active_pairs(len(segment), self._params.active_run_length)
        true_target = self._target(True)
        false_target = self._target(False)
        n_true = 0
        n_false = 0
        for (i, j) in pairs:
            avg_key = self._quantizer.average_key(segment[i:j + 1])
            pattern = self._pattern(avg_key, label)
            if pattern == true_target:
                n_true += 1
            elif pattern == false_target:
                n_false += 1
        return Vote(n_true=n_true, n_false=n_false)
