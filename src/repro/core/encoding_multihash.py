"""The multi-hash bit encoding (paper Sec 4.3).

For a characteristic subset ``ξ(ε, δ) = {x1 .. xa}`` consider all
contiguous sub-range averages ``m_ij = mean(x_i .. x_j)``.  The *bit
encoding convention* declares

* **true**  embedded iff ``lsb(H(lsb(m_ij), label(ε)), ω) == 2^ω - 1``
* **false** embedded iff ``lsb(H(lsb(m_ij), label(ε)), ω) == 0``

for every *active* ``m_ij``.  Embedding searches the low ``alpha`` bits
of the subset members until the convention holds; because the search
target is a hash pattern, the resulting alterations are computationally
indistinguishable from random noise — defeating the bias-detection
attack — while any summarized chunk that lands inside the subset *is*
one of the ``m_ij`` and therefore still testifies at detection time.

Two search procedures are provided:

* ``method="random"`` — the paper's baseline: draw the subset's low bits
  at random until all active constraints hold.  Expected iterations are
  ``2^(ω·|active|)`` — exponential, exactly the cost curve of Fig 11(a).
* ``method="pruned"`` — the "efficient pruned-space algorithm" the paper
  calls for as future work: fix items left-to-right, backtracking; item
  ``k`` only has to satisfy the constraints of runs *ending* at ``k``, so
  the expected cost drops to roughly ``a · 2^(ω·g)`` for run length
  ``g`` — linear in the subset size.  Candidates are enumerated in order
  of increasing distance from the original value, implementing the
  paper's "minimize Euclidean distance from the starting point" aim.

The *active* set implements the computation-reducing technique of
Sec 4.3: instead of all ``a(a+1)/2`` averages, only runs of length up to
``active_run_length`` (the *guaranteed resilience*: the summarization /
sampling degree that is survived by construction) are constrained.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.encoding_initial import EmbedOutcome, Vote
from repro.core.params import WatermarkParams
from repro.core.quantize import Quantizer
from repro.errors import EncodingSearchExhausted, ParameterError
from repro.util.hashing import KeyedHasher, PatternProber
from repro.util.rng import make_rng


def convention_pattern(key: bytes, avg_key: int, label: int, omega: int,
                       algorithm: str = "md5") -> int:
    """Low ``omega`` hash bits deciding an average's testimony.

    This is the hot path of both embedding search and detection, so it
    hashes a fixed-width packed payload directly instead of going through
    the generic :func:`repro.util.hashing.H` serializer.  The construction
    is the same keyed sandwich ``hash(k ; avg_key ; label ; k)``; the
    label participates as the paper's second hash argument, the secret
    ``k1`` via ``key``.
    """
    payload = (key + avg_key.to_bytes(8, "big")
               + label.to_bytes(8, "big") + key)
    digest = hashlib.new(algorithm, payload).digest()
    return int.from_bytes(digest[-3:], "big") & ((1 << omega) - 1)


def active_pairs(size: int, run_length: int) -> list[tuple[int, int]]:
    """Active sub-ranges: all runs of length 1..run_length (inclusive).

    ``run_length >= size`` yields the paper's full ``a(a+1)/2`` set.
    """
    if size < 1:
        raise ParameterError(f"subset size must be >= 1, got {size}")
    if run_length < 1:
        raise ParameterError(f"run_length must be >= 1, got {run_length}")
    pairs: list[tuple[int, int]] = []
    for length in range(1, min(run_length, size) + 1):
        for start in range(0, size - length + 1):
            pairs.append((start, start + length - 1))
    return pairs


def expected_search_iterations(size: int, run_length: int, omega: int) -> float:
    """Analytic expected iterations of the random search: ``2^(ω·c)``.

    ``c`` is the number of active constraints.  This is the curve the
    paper derives in Sec 4.3 ("the expected number of configurations ...
    is 2^(ω·a(a+1)/2)" for the full set) and plots in Fig 11(a).
    """
    c = len(active_pairs(size, run_length))
    return float(2.0 ** (omega * c))


@dataclass(frozen=True)
class MultihashStats:
    """Bookkeeping from one embedding search (Fig 11(a)'s metric)."""

    iterations: int
    hash_evaluations: int
    constraints: int


def _ladder_block(low: int, d0: int, d1: int, limit: int) -> "list[int]":
    """Candidate lows for distances ``d0 <= d < d1``, in ladder order.

    Produces the exact subsequence of ``_candidates_by_distance`` — for
    every distance ``d`` the lower neighbour (if ``>= 0``) before the
    upper (if ``< limit``), with distance 0 emitting the original low
    once — but materialized at C speed: the interleaved region where
    both neighbours are in range is two slice assignments from ``range``
    objects, and the one-sided tail past the nearer boundary is a single
    ``range`` extend.  No per-candidate Python bytecode runs.
    """
    head = [low] if d0 == 0 else []
    a = d0 or 1
    if a >= d1:
        return head
    # Distances where both neighbours are in range.
    both = min(d1 - 1, low, limit - 1 - low)
    out = head
    if both >= a:
        n = both - a + 1
        seg = [0] * (2 * n)
        seg[0::2] = range(low - a, low - both - 1, -1)
        seg[1::2] = range(low + a, low + both + 1)
        out += seg
    # Past the nearer boundary at most one side survives.
    t = both + 1 if both >= a else a
    if t < d1:
        if low >= t:
            out += range(low - t, max(low - d1, -1), -1)
        elif limit - 1 - low >= t:
            out += range(low + t, low + min(d1 - 1, limit - 1 - low) + 1)
    return out


class MultihashEncoding:
    """Strategy object for the Sec-4.3 multi-hash scheme."""

    name = "multihash"

    def __init__(self, params: WatermarkParams, quantizer: Quantizer,
                 hasher: KeyedHasher, method: str = "pruned",
                 rng: "int | np.random.Generator | None" = None,
                 batched: bool = True) -> None:
        if method not in ("pruned", "random"):
            raise ParameterError(
                f"method must be 'pruned' or 'random', got {method!r}"
            )
        self._params = params
        self._quantizer = quantizer
        self._key = hasher.key
        self._algorithm = hasher.algorithm
        self._method = method
        self._rng = make_rng(rng)
        self._batched = bool(batched)
        self.last_stats: "MultihashStats | None" = None
        # Lifetime observability totals (updated once per embed, read
        # by stats_snapshot() at STATUS-snapshot time — never pushed
        # from the search loop itself).
        self.embeds = 0
        self.total_search_iterations = 0
        # Hot-path machinery: the shared PatternProber keeps a digest
        # context pre-fed with the leading key (copy() per probe beats
        # re-hashing the prefix) plus a bounded (avg_key, label) memo —
        # the pruned search re-tests the same short-run averages across
        # backtracking candidates, and detection re-keys every average
        # of overlapping active runs.  Both the batched paths and the
        # retained scalar oracles probe through it.
        self._prober = PatternProber(self._key, params.omega,
                                     self._algorithm,
                                     self._PATTERN_MEMO_LIMIT)

    # ------------------------------------------------------------------
    _PATTERN_MEMO_LIMIT = 1 << 16

    def _pattern(self, avg_key: int, label: int) -> int:
        return self._prober.pattern(avg_key, label)

    def _target(self, bit: bool) -> int:
        return (1 << self._params.omega) - 1 if bit else 0

    def _trim(self, length: int, extreme_offset: int,
              cap: int) -> tuple[int, int]:
        """Window of at most ``cap`` items centred on the extreme."""
        if length <= cap:
            return 0, length
        start = max(0, min(extreme_offset - cap // 2, length - cap))
        return start, start + cap

    # ------------------------------------------------------------------
    def embed(self, q_subset: list[int], extreme_offset: int, label: int,
              bit: bool) -> EmbedOutcome:
        """Search the subset's low bits until the convention encodes ``bit``.

        Raises :class:`EncodingSearchExhausted` when the iteration cap is
        reached; the embedder treats that as a skipped extreme.
        """
        if not 0 <= extreme_offset < len(q_subset):
            raise ParameterError(
                f"extreme_offset {extreme_offset} outside subset of "
                f"{len(q_subset)}"
            )
        # Reset before searching: a search that raises must not leave the
        # previous embed's stats visible to the embedder's bookkeeping.
        self.last_stats = None
        start, end = self._trim(len(q_subset), extreme_offset,
                                self._params.max_subset_embed)
        working = list(q_subset)
        segment = working[start:end]
        target = self._target(bit)
        if self._method == "pruned":
            search = (self._search_pruned if self._batched
                      else self._search_pruned_scalar)
        else:
            search = (self._search_random if self._batched
                      else self._search_random_scalar)
        new_segment, stats = search(segment, label, target)
        working[start:end] = new_segment
        self.last_stats = stats
        self.embeds += 1
        self.total_search_iterations += stats.iterations
        return EmbedOutcome(q_values=working, iterations=stats.iterations)

    def stats_snapshot(self) -> dict:
        """Lifetime search/memo telemetry (JSON-safe, pull-based)."""
        prober = self._prober
        return {
            "encoding": self.name,
            "embeds": self.embeds,
            "search_iterations": self.total_search_iterations,
            "pattern_probes": prober.probes,
            "pattern_memo_hits": prober.probes - prober.misses,
            "pattern_memo_size": len(prober),
        }

    # ------------------------------------------------------------------
    def _search_random(self, q_segment: list[int], label: int,
                       target: int) -> tuple[list[int], MultihashStats]:
        """Batched form of the randomized search (matrix blocks).

        Draws geometrically growing blocks of candidate rows through the
        same numpy ``Generator`` stream the scalar search consumes,
        dequantizes them as one matrix, and evaluates the active
        constraints as per-pair survivor filtering (a row leaves the
        block at its first failing constraint, exactly where the scalar
        loop breaks).  On success the bit generator is rewound to the
        block start and re-advanced by exactly the rows the scalar
        search would have drawn, so the chosen configuration, the
        iteration/hash-evaluation stats, the raise point *and* the
        post-embed RNG stream position are all bit-identical to
        :meth:`_search_random_scalar` (property-tested).
        """
        params = self._params
        quantizer = self._quantizer
        size = len(q_segment)
        pairs = active_pairs(size, params.active_run_length)
        mask = (1 << params.lsb_bits) - 1
        highs = np.asarray([q & ~mask for q in q_segment], dtype=np.int64)
        probe_many = self._prober.patterns
        avg_scale = quantizer.average_scale
        key_upper = (1 << quantizer.avg_key_bits) - 1
        max_iter = params.max_search_iterations
        rng = self._rng
        hash_evals = 0
        done = 0
        block = 64
        while done < max_iter:
            draw = min(block, max_iter - done)
            block = min(block * 2, 4096)
            state = rng.bit_generator.state
            lows = rng.integers(0, mask + 1, size=(draw, size))
            cand_q = highs | lows
            floats = quantizer.dequantize_array(cand_q)
            alive = np.arange(draw)
            probed: "list[np.ndarray]" = []
            for (i, j) in pairs:
                if alive.size == 0:
                    break
                n = j - i + 1
                if n < 8:
                    # Left-to-right accumulation: the scalar reference
                    # sums short sub-ranges sequentially, and elementwise
                    # column adds replicate that order per row.
                    acc = floats[alive, i].copy()
                    for t in range(i + 1, j + 1):
                        acc += floats[alive, t]
                    means = acc if n == 1 else acc / n
                    keys = np.floor((means + 0.5) * avg_scale)
                    keys = np.clip(keys, 0, key_upper).astype(np.int64)
                else:
                    keys = np.fromiter(
                        (quantizer.average_key(floats[r, i:j + 1])
                         for r in alive),
                        dtype=np.int64, count=alive.size)
                pats = probe_many(keys, label)
                probed.append(alive)
                survivors = alive[np.asarray(pats, dtype=np.int64) == target]
                if survivors.size < alive.size:
                    alive = survivors
            if alive.size:
                winner = int(alive[0])
                iterations = done + winner + 1
                hash_evals += sum(int(np.count_nonzero(rows <= winner))
                                  for rows in probed)
                # Rewind and consume exactly the scalar search's draws so
                # downstream embeds see the same stream position.
                rng.bit_generator.state = state
                rng.integers(0, mask + 1, size=(winner + 1, size))
                candidate = [int(q) for q in cand_q[winner]]
                stats = MultihashStats(iterations=iterations,
                                       hash_evaluations=hash_evals,
                                       constraints=len(pairs))
                return candidate, stats
            done += draw
            hash_evals += sum(int(rows.size) for rows in probed)
        raise EncodingSearchExhausted(
            f"random search exhausted {params.max_search_iterations} "
            f"iterations for {len(pairs)} constraints"
        )

    def _search_random_scalar(self, q_segment: list[int], label: int,
                              target: int) -> tuple[list[int],
                                                    MultihashStats]:
        """Paper-baseline exhaustive/randomized search (exponential)."""
        params = self._params
        size = len(q_segment)
        pairs = active_pairs(size, params.active_run_length)
        mask = (1 << params.lsb_bits) - 1
        highs = [q & ~mask for q in q_segment]
        floats = np.asarray(self._quantizer.dequantize_array(q_segment),
                            dtype=np.float64)
        hash_evals = 0
        for iteration in range(1, params.max_search_iterations + 1):
            lows = self._rng.integers(0, mask + 1, size=size)
            candidate = [highs[i] | int(lows[i]) for i in range(size)]
            floats = self._quantizer.dequantize_array(candidate)
            ok = True
            for (i, j) in pairs:
                avg_key = self._quantizer.average_key(floats[i:j + 1])
                hash_evals += 1
                if self._pattern(avg_key, label) != target:
                    ok = False
                    break
            if ok:
                stats = MultihashStats(iterations=iteration,
                                       hash_evaluations=hash_evals,
                                       constraints=len(pairs))
                return candidate, stats
        raise EncodingSearchExhausted(
            f"random search exhausted {params.max_search_iterations} "
            f"iterations for {len(pairs)} constraints"
        )

    # ------------------------------------------------------------------
    def _candidates_by_distance(self, original_low: int,
                                limit: int) -> Iterator[int]:
        """Enumerate low-bit candidates by increasing |candidate - original|.

        Implements the minimize-distance aim: the first satisfying
        configuration found is also (per item) the closest one.
        """
        yield original_low
        distance = 1
        while True:
            emitted = False
            lower = original_low - distance
            upper = original_low + distance
            if lower >= 0:
                yield lower
                emitted = True
            if upper < limit:
                yield upper
                emitted = True
            if not emitted:
                return
            distance += 1

    def _search_pruned(self, q_segment: list[int], label: int,
                       target: int) -> tuple[list[int], MultihashStats]:
        """Batched backtracking search over precomputed candidate ladders.

        Same left-to-right/backtrack structure as the scalar reference,
        restructured around three batched primitives: candidate lows
        come from :func:`_ladder_block` in materialized distance blocks
        (built from range arithmetic, consumed in strict ladder order);
        the per-run means reuse a left-to-right *prefix sum*
        over the already-fixed items ``i..k-1`` (valid for as long as
        item ``k``'s ladder is live, because backtracking from ``k+1``
        never touches them), reducing each probe to one add, one divide
        and one keying; and the convention probes share the
        :class:`~repro.util.hashing.PatternProber` memo.  Candidates are
        still *decided* sequentially, so the accepted configuration, the
        iteration and hash-evaluation counts and both raise points are
        bit-identical to :meth:`_search_pruned_scalar` (property-tested).
        """
        params = self._params
        quantizer = self._quantizer
        size = len(q_segment)
        pairs = active_pairs(size, params.active_run_length)
        ends_at: list[list[tuple[int, int]]] = [[] for _ in range(size)]
        for (i, j) in pairs:
            ends_at[j].append((i, j))
        mask = (1 << params.lsb_bits) - 1
        limit = mask + 1
        highs = [q & ~mask for q in q_segment]
        original_lows = [q & mask for q in q_segment]
        candidate = list(q_segment)
        floats = [float(v)
                  for v in quantizer.dequantize_array(q_segment)]

        # The search probes fresh (avg_key, label) pairs almost
        # exclusively — the prober's memo serves detection's overlapping
        # subsets, but here a memoized miss costs more than the hash —
        # so the convention probe is inlined: one context copy off the
        # key-fed base, one update, and (for the usual ω <= 8) a single
        # trailing-byte mask, the lsb() of the digest.
        base = hashlib.new(self._algorithm)
        base.update(self._key)
        context_copy = base.copy
        tail = label.to_bytes(8, "big") + self._key
        to_bytes = int.to_bytes
        omega = params.omega
        omega_mask = (1 << omega) - 1
        narrow = omega <= 8

        scale = quantizer.scale
        avg_scale = quantizer.average_scale
        key_upper = (1 << quantizer.avg_key_bits) - 1
        max_iter = params.max_search_iterations

        # Static per-level metadata.  The length-1 run ``(k, k)`` always
        # ends at ``k`` and is always probed first (active_pairs emits
        # shortest runs first), so the hot loop specializes it; the rest
        # carry their (start, length) for the prefix sums.
        rest_meta: "list[list[tuple[int, int]]]" = []
        first_blocks: "list[int]" = []
        max_ds: "list[int]" = []
        for k in range(size):
            rest_meta.append([(i, j - i + 1) for (i, j) in ends_at[k][1:]])
            # Expected winner position is 2^(ω·runs) candidates; a first
            # block of that many *distances* (~2x the candidates) makes a
            # single pull cover the level ~7 times in 8 — block
            # materialization is range-arithmetic cheap, pulls are not.
            expected = 1 << min(omega * len(ends_at[k]), 10)
            first_blocks.append(max(4, expected))
            max_ds.append(max(original_lows[k], limit - 1 - original_lows[k]))

        # Per-level resumable state: the next un-generated distance, the
        # distance-block size, the current block of candidate lows, the
        # cursor into it, and the prefix sums of the longer runs ending
        # at the level.
        next_ds = [0] * size
        bsizes = [0] * size
        blocks: "list[list[int] | None]" = [None] * size
        cursors = [0] * size
        runinfo: "list[list[tuple[int, int, float | None]] | None]" = \
            [None] * size

        iterations = 0
        hash_evals = 0
        k = 0
        high = highs[0]
        # high + low + 0.5 computed as (high + 0.5) + low: both orders
        # are exact in binary64 for these magnitudes, so the float is
        # bit-identical to float(high | low) + 0.5 while keeping the
        # int-or and int->float conversion out of the hot loop.
        fhigh = high + 0.5
        next_ds[0] = 0
        bsizes[0] = first_blocks[0]
        runinfo[0] = []
        while 0 <= k < size:
            block = blocks[k]
            cursor = cursors[k]
            if block is None or cursor >= len(block):
                d0 = next_ds[k]
                if d0 > max_ds[k]:
                    # Exhausted this item's space: restore and backtrack.
                    candidate[k] = q_segment[k]
                    floats[k] = quantizer.dequantize(candidate[k])
                    blocks[k] = runinfo[k] = None
                    k -= 1
                    high = highs[k] if k >= 0 else 0
                    fhigh = high + 0.5
                    continue
                bsize = bsizes[k]
                d1 = d0 + bsize
                if d1 > max_ds[k] + 1:
                    d1 = max_ds[k] + 1
                next_ds[k] = d1
                if bsize < 4096:
                    bsizes[k] = bsize * 2
                # Never empty: every distance d <= max_d has an in-range
                # neighbour by construction of max_d.
                block = _ladder_block(original_lows[k], d0, d1, limit)
                blocks[k] = block
                cursors[k] = cursor = 0
            info = runinfo[k]
            winner_q = -1
            winner_f = 0.0
            tried = 0
            extra_probes = 0
            for low in (block[cursor:] if cursor else block):
                tried += 1
                # Inline dequantize (same ops as Quantizer.dequantize,
                # bounds guaranteed by construction).
                value = (fhigh + low) / scale - 0.5
                # Probe the length-1 run (always first, always present).
                # int() truncation == floor here: value > -0.5 by
                # construction (q >= 0), so the operand is non-negative.
                key = int((value + 0.5) * avg_scale)
                if key < 0:
                    key = 0
                elif key > key_upper:
                    key = key_upper
                context = context_copy()
                context.update(to_bytes(key, 8, "big"))
                context.update(tail)
                digest = context.digest()
                pattern = (digest[-1] & omega_mask if narrow else
                           int.from_bytes(digest[-3:], "big") & omega_mask)
                if pattern != target:
                    continue
                ok = True
                for (i, n, prefix) in info:
                    if prefix is None:
                        floats[k] = value
                        key = quantizer.average_key(floats[i:k + 1])
                    else:
                        mean = (prefix + value) / n
                        key = int((mean + 0.5) * avg_scale)
                        if key < 0:
                            key = 0
                        elif key > key_upper:
                            key = key_upper
                    extra_probes += 1
                    context = context_copy()
                    context.update(to_bytes(key, 8, "big"))
                    context.update(tail)
                    digest = context.digest()
                    pattern = (digest[-1] & omega_mask if narrow else
                               int.from_bytes(digest[-3:], "big")
                               & omega_mask)
                    if pattern != target:
                        ok = False
                        break
                if ok:
                    winner_q = high | low
                    winner_f = value
                    break
            # The iteration cap is enforced per attempt by the scalar
            # reference; counting the attempts after the block keeps the
            # raise point (and message) identical without a per-candidate
            # branch — evaluations past the cap have no observable
            # effect, the raise discards them.
            iterations += tried
            hash_evals += tried + extra_probes
            if iterations > max_iter:
                raise EncodingSearchExhausted(
                    f"pruned search exhausted "
                    f"{max_iter} iterations"
                )
            cursors[k] = cursor + tried
            if winner_q >= 0:
                candidate[k] = winner_q
                floats[k] = winner_f
                k += 1
                if k < size:
                    # (Re)initialize level k: fresh ladder position and
                    # the left-to-right partial sums of the fixed items
                    # i..k-1 of every longer run ending here — the
                    # candidate contributes the final addend, preserving
                    # the scalar reference's summation order.  Long runs
                    # (n >= 8) fall back to the pairwise-summing mean.
                    high = highs[k]
                    fhigh = high + 0.5
                    next_ds[k] = 0
                    bsizes[k] = first_blocks[k]
                    blocks[k] = None
                    info = []
                    for (i, n) in rest_meta[k]:
                        if n < 8:
                            acc = floats[i]
                            for t in range(i + 1, k):
                                acc += floats[t]
                            info.append((i, n, acc))
                        else:
                            info.append((i, n, None))
                    runinfo[k] = info
        if k < 0:
            raise EncodingSearchExhausted(
                "pruned search backtracked out of the subset "
                f"({len(pairs)} constraints unsatisfiable in "
                f"{params.lsb_bits}-bit space)"
            )
        stats = MultihashStats(iterations=iterations,
                               hash_evaluations=hash_evals,
                               constraints=len(pairs))
        return candidate, stats

    def _search_pruned_scalar(self, q_segment: list[int], label: int,
                              target: int) -> tuple[list[int],
                                                    MultihashStats]:
        """Backtracking left-to-right search (linear in subset size)."""
        params = self._params
        size = len(q_segment)
        pairs = active_pairs(size, params.active_run_length)
        ends_at: list[list[tuple[int, int]]] = [[] for _ in range(size)]
        for (i, j) in pairs:
            ends_at[j].append((i, j))
        mask = (1 << params.lsb_bits) - 1
        limit = mask + 1
        highs = [q & ~mask for q in q_segment]
        original_lows = [q & mask for q in q_segment]
        candidate = list(q_segment)
        floats = np.asarray(self._quantizer.dequantize_array(q_segment),
                            dtype=np.float64)

        iterators: list[Iterator[int]] = [iter(()) for _ in range(size)]
        iterations = 0
        hash_evals = 0
        k = 0
        iterators[0] = self._candidates_by_distance(original_lows[0], limit)
        while 0 <= k < size:
            advanced = False
            for low in iterators[k]:
                iterations += 1
                if iterations > params.max_search_iterations:
                    raise EncodingSearchExhausted(
                        f"pruned search exhausted "
                        f"{params.max_search_iterations} iterations"
                    )
                candidate[k] = highs[k] | low
                floats[k] = self._quantizer.dequantize(candidate[k])
                ok = True
                for (i, j) in ends_at[k]:
                    avg_key = self._quantizer.average_key(floats[i:j + 1])
                    hash_evals += 1
                    if self._pattern(avg_key, label) != target:
                        ok = False
                        break
                if ok:
                    advanced = True
                    break
            if advanced:
                k += 1
                if k < size:
                    iterators[k] = self._candidates_by_distance(
                        original_lows[k], limit)
            else:
                # Exhausted this item's space: restore and backtrack.
                candidate[k] = q_segment[k]
                floats[k] = self._quantizer.dequantize(candidate[k])
                k -= 1
        if k < 0:
            raise EncodingSearchExhausted(
                "pruned search backtracked out of the subset "
                f"({len(pairs)} constraints unsatisfiable in "
                f"{params.lsb_bits}-bit space)"
            )
        stats = MultihashStats(iterations=iterations,
                               hash_evaluations=hash_evals,
                               constraints=len(pairs))
        return candidate, stats

    # ------------------------------------------------------------------
    def detect(self, float_subset: np.ndarray, extreme_offset: int,
               label: int) -> Vote:
        """Count true/false convention hits over the recovered averages.

        Every active sub-range average of the *received* subset is keyed
        and hashed; matches of the all-ones pattern testify "true",
        matches of the all-zeroes pattern "false".  On unwatermarked data
        the two counts are statistically balanced (with ω = 1 every
        average falls in one of the two classes at random).

        The batched form walks run lengths instead of individual pairs:
        a sliding left-to-right sum gives every same-length average in
        one elementwise add (the accumulation order per window matches
        the scalar sum, so the keys agree bit-for-bit), the keying is
        one array op, and the probes share the memo.  Counting is
        commutative, so the vote equals :meth:`detect_scalar`'s
        (property-tested).
        """
        if not self._batched:
            return self.detect_scalar(float_subset, extreme_offset, label)
        if len(float_subset) == 0:
            raise ParameterError("cannot detect in an empty subset")
        if self._params.active_run_length < 1:
            raise ParameterError(
                f"run_length must be >= 1, got "
                f"{self._params.active_run_length}")
        start, end = self._trim(len(float_subset), extreme_offset,
                                self._params.max_subset_detect)
        segment = np.asarray(float_subset[start:end], dtype=np.float64)
        size = len(segment)
        run_cap = min(self._params.active_run_length, size)
        true_target = self._target(True)
        false_target = self._target(False)
        probe_many = self._prober.patterns
        quantizer = self._quantizer
        n_true = 0
        n_false = 0
        acc = segment
        for length in range(1, run_cap + 1):
            if 1 < length < 8:
                # acc[s] accumulates segment[s] + .. + segment[s+length-1]
                # left to right — bit-identical to the scalar sum for the
                # short windows (the only ones keyed from acc).
                acc = acc[:-1] + segment[length - 1:]
            if length < 8:
                means = segment if length == 1 else acc / length
                keys = quantizer.average_key_array(means)
            else:
                keys = np.fromiter(
                    (quantizer.average_key(segment[s:s + length])
                     for s in range(size - length + 1)),
                    dtype=np.int64, count=size - length + 1)
            for pattern in probe_many(keys, label):
                if pattern == true_target:
                    n_true += 1
                elif pattern == false_target:
                    n_false += 1
        return Vote(n_true=n_true, n_false=n_false)

    def detect_scalar(self, float_subset: np.ndarray, extreme_offset: int,
                      label: int) -> Vote:
        """Per-pair scalar reference of :meth:`detect` (the oracle)."""
        if len(float_subset) == 0:
            raise ParameterError("cannot detect in an empty subset")
        start, end = self._trim(len(float_subset), extreme_offset,
                                self._params.max_subset_detect)
        segment = np.asarray(float_subset[start:end], dtype=np.float64)
        pairs = active_pairs(len(segment), self._params.active_run_length)
        true_target = self._target(True)
        false_target = self._target(False)
        n_true = 0
        n_false = 0
        for (i, j) in pairs:
            avg_key = self._quantizer.average_key(segment[i:j + 1])
            pattern = self._pattern(avg_key, label)
            if pattern == true_target:
                n_true += 1
            elif pattern == false_target:
                n_false += 1
        return Vote(n_true=n_true, n_false=n_false)
