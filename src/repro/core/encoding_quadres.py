"""Quadratic-residue bit encoding (the Sec-4.3 "faster" alternative).

The paper cites Atallah & Wagstaff's quadratic-residue watermarking [1]
as an arguably faster alternative to the multi-hash convention: alter
the low bits of a value until *each of the longest k prefixes* of the
whole value (most significant bits included), treated as an integer, is
a quadratic residue modulo a secret large prime — for embedding "true" —
or a non-residue — for "false".

We embed per subset member (every member independently satisfies the
prefix criterion), so sampling survivors still testify.  Like the
initial encoding — and unlike the multi-hash — nothing here survives
summarization: the prefix of an average is unrelated to the members'
prefixes.  The encoding exists for the speed/resilience trade-off study
of Sec 6.4.

The secret prime is derived deterministically from the watermarking key
via Miller–Rabin (deterministic witness set, valid for all 64-bit
candidates), so embedder and detector agree without sharing extra state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.encoding_initial import EmbedOutcome, Vote
from repro.core.params import WatermarkParams
from repro.core.quantize import Quantizer
from repro.errors import EncodingSearchExhausted, ParameterError
from repro.util import bitops
from repro.util.hashing import KeyedHasher

#: Deterministic Miller-Rabin witnesses, sufficient for n < 3.3 * 10^24.
_MR_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_probable_prime(n: int) -> bool:
    """Deterministic Miller–Rabin for 64-bit-scale integers."""
    if n < 2:
        return False
    small_primes = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
    for p in small_primes:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MR_WITNESSES:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def derive_prime(hasher: KeyedHasher, bits: int = 61) -> int:
    """Secret prime derived from the watermarking key.

    Starts from the low ``bits`` of ``H("quadres-prime", k1)`` (forced
    odd, top bit set) and walks upward to the next prime.
    """
    if not 40 <= bits <= 62:
        raise ParameterError(f"prime size must be in [40, 62] bits, got {bits}")
    seed = hasher.hash_int("quadres-prime")
    candidate = (seed & ((1 << bits) - 1)) | (1 << (bits - 1)) | 1
    while not is_probable_prime(candidate):
        candidate += 2
    return candidate


def is_quadratic_residue(x: int, prime: int) -> bool:
    """Euler's criterion; 0 is conventionally a non-residue here."""
    x %= prime
    if x == 0:
        return False
    return pow(x, (prime - 1) // 2, prime) == 1


@dataclass(frozen=True)
class QuadResStats:
    """Per-subset search bookkeeping (iterations summed over members)."""

    iterations: int


class QuadResEncoding:
    """Strategy object for the quadratic-residue alternative encoding.

    Parameters
    ----------
    n_prefixes:
        The ``k`` of the construction — how many of the longest prefixes
        must agree.  Expected search cost is ``2^k`` per subset member.
    """

    name = "quadres"

    def __init__(self, params: WatermarkParams, quantizer: Quantizer,
                 hasher: KeyedHasher, n_prefixes: int = 3) -> None:
        if not 1 <= n_prefixes <= params.lsb_bits - 1:
            raise ParameterError(
                f"n_prefixes must be in [1, lsb_bits - 1], got {n_prefixes}"
            )
        self._params = params
        self._quantizer = quantizer
        self._prime = derive_prime(hasher)
        self._k = n_prefixes
        self.last_stats: "QuadResStats | None" = None

    # ------------------------------------------------------------------
    @property
    def prime(self) -> int:
        """The derived secret prime (exposed for tests)."""
        return self._prime

    def _prefixes(self, q: int) -> list[int]:
        """The longest ``k`` prefixes of the ``value_bits``-wide word."""
        width = self._params.value_bits
        return [bitops.msb(q, width - j, width) for j in range(self._k)]

    def _value_matches(self, q: int, bit: bool) -> bool:
        want = bool(bit)
        return all(is_quadratic_residue(p, self._prime) == want
                   for p in self._prefixes(q))

    def _encode_value(self, q: int, bit: bool) -> tuple[int, int]:
        """Return ``(new_q, iterations)`` for a single subset member."""
        mask = (1 << self._params.lsb_bits) - 1
        high = q & ~mask
        original_low = q & mask
        limit = mask + 1
        iterations = 0
        # Distance-ordered scan of the low-bit space (minimal alteration).
        for distance in range(0, limit):
            for low in ({original_low} if distance == 0 else
                        {original_low - distance, original_low + distance}):
                if not 0 <= low < limit:
                    continue
                iterations += 1
                if iterations > self._params.max_search_iterations:
                    raise EncodingSearchExhausted(
                        "quadratic-residue search exhausted "
                        f"{self._params.max_search_iterations} iterations"
                    )
                candidate = high | low
                if self._value_matches(candidate, bit):
                    return candidate, iterations
        raise EncodingSearchExhausted(
            f"no low-bit configuration satisfies {self._k} prefixes"
        )

    # ------------------------------------------------------------------
    def embed(self, q_subset: list[int], extreme_offset: int, label: int,
              bit: bool) -> EmbedOutcome:
        """Encode ``bit`` independently into every subset member.

        ``label`` is unused by this encoding (the prefix criterion is
        self-contained) but kept for strategy-interface uniformity.
        """
        if not 0 <= extreme_offset < len(q_subset):
            raise ParameterError(
                f"extreme_offset {extreme_offset} outside subset of "
                f"{len(q_subset)}"
            )
        total_iterations = 0
        new_values: list[int] = []
        for q in q_subset:
            new_q, iterations = self._encode_value(q, bit)
            new_values.append(new_q)
            total_iterations += iterations
        self.last_stats = QuadResStats(iterations=total_iterations)
        return EmbedOutcome(q_values=new_values, iterations=total_iterations)

    def detect(self, float_subset: np.ndarray, extreme_offset: int,
               label: int) -> Vote:
        """Vote per member: all-residue => true, all-non-residue => false."""
        if len(float_subset) == 0:
            raise ParameterError("cannot detect in an empty subset")
        n_true = 0
        n_false = 0
        for value in float_subset:
            q = self._quantizer.quantize(float(value))
            if self._value_matches(q, True):
                n_true += 1
            elif self._value_matches(q, False):
                n_false += 1
        return Vote(n_true=n_true, n_false=n_false)
