"""Quadratic-residue bit encoding (the Sec-4.3 "faster" alternative).

The paper cites Atallah & Wagstaff's quadratic-residue watermarking [1]
as an arguably faster alternative to the multi-hash convention: alter
the low bits of a value until *each of the longest k prefixes* of the
whole value (most significant bits included), treated as an integer, is
a quadratic residue modulo a secret large prime — for embedding "true" —
or a non-residue — for "false".

We embed per subset member (every member independently satisfies the
prefix criterion), so sampling survivors still testify.  Like the
initial encoding — and unlike the multi-hash — nothing here survives
summarization: the prefix of an average is unrelated to the members'
prefixes.  The encoding exists for the speed/resilience trade-off study
of Sec 6.4.

The secret prime is derived deterministically from the watermarking key
via Miller–Rabin (deterministic witness set, valid for all 64-bit
candidates), so embedder and detector agree without sharing extra state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.encoding_initial import EmbedOutcome, Vote
from repro.core.params import WatermarkParams
from repro.core.quantize import Quantizer
from repro.errors import EncodingSearchExhausted, ParameterError
from repro.util import bitops
from repro.util.hashing import KeyedHasher

#: Deterministic Miller-Rabin witnesses, sufficient for n < 3.3 * 10^24.
_MR_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_probable_prime(n: int) -> bool:
    """Deterministic Miller–Rabin for 64-bit-scale integers."""
    if n < 2:
        return False
    small_primes = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
    for p in small_primes:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MR_WITNESSES:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def derive_prime(hasher: KeyedHasher, bits: int = 61) -> int:
    """Secret prime derived from the watermarking key.

    Starts from the low ``bits`` of ``H("quadres-prime", k1)`` (forced
    odd, top bit set) and walks upward to the next prime.
    """
    if not 40 <= bits <= 62:
        raise ParameterError(f"prime size must be in [40, 62] bits, got {bits}")
    seed = hasher.hash_int("quadres-prime")
    candidate = (seed & ((1 << bits) - 1)) | (1 << (bits - 1)) | 1
    while not is_probable_prime(candidate):
        candidate += 2
    return candidate


def is_quadratic_residue(x: int, prime: int) -> bool:
    """Euler's criterion; 0 is conventionally a non-residue here."""
    x %= prime
    if x == 0:
        return False
    return pow(x, (prime - 1) // 2, prime) == 1


def jacobi_symbol(a: int, n: int) -> int:
    """Jacobi symbol ``(a/n)`` for odd ``n > 0`` (binary algorithm).

    For an odd prime ``n`` this is the Legendre symbol, so
    ``jacobi_symbol(x, p) == 1`` decides quadratic residuosity with
    O(log^2) word operations instead of Euler's modular exponentiation —
    roughly an order of magnitude cheaper for the 61-bit primes
    :func:`derive_prime` produces (property-tested against
    :func:`is_quadratic_residue`).
    """
    if n <= 0 or n & 1 == 0:
        raise ParameterError(f"Jacobi symbol needs odd n > 0, got {n}")
    a %= n
    negative = 0
    while a:
        # Strip every factor of 2 at once; each one flips the sign
        # iff n ≡ ±3 (mod 8), so the parity of the 2-count matters
        # only when that residue condition holds.
        twos = (a & -a).bit_length() - 1
        if twos:
            a >>= twos
            if twos & 1 and n & 7 in (3, 5):
                negative ^= 1
        # Quadratic reciprocity flip, then reduce.
        if a & 3 == 3 and n & 3 == 3:
            negative ^= 1
        a, n = n % a, a
    if n != 1:
        return 0
    return -1 if negative else 1


class _ResidueTable:
    """Bounded memo of quadratic residuosity modulo the secret prime.

    The prime is fixed per key, so residuosity of a prefix integer is a
    pure one-bit fact — the table turns the per-probe modular
    exponentiation of the original code path into a dict hit.  Prefix
    values repeat heavily: the distance-ordered low-bit scan re-tests
    the same coarse prefixes for runs of ``2^j`` consecutive candidates,
    and detection re-keys prefixes shared across subset members.  One
    table serves every prefix width (residuosity depends only on the
    integer, not on where it was cut).  When full, the oldest half is
    evicted — same recency-preserving policy as the multihash pattern
    memo.
    """

    __slots__ = ("_prime", "_memo", "_limit")

    def __init__(self, prime: int, limit: int = 1 << 16) -> None:
        if limit < 2:
            raise ParameterError(f"table limit must be >= 2, got {limit}")
        self._prime = prime
        self._memo: "dict[int, bool]" = {}
        self._limit = limit

    def residue(self, value: int) -> bool:
        """``is_quadratic_residue(value, prime)``, memoized via Jacobi."""
        memo = self._memo
        found = memo.get(value)
        if found is None:
            prime = self._prime
            found = value % prime != 0 and jacobi_symbol(value, prime) == 1
            if len(memo) >= self._limit:
                self._evict()
            memo[value] = found
        return found

    def _evict(self) -> None:
        """Drop the oldest half of the memo, keeping recent entries."""
        memo = self._memo
        survivors = list(memo.items())[len(memo) // 2:]
        memo.clear()
        memo.update(survivors)

    def __len__(self) -> int:
        return len(self._memo)


@dataclass(frozen=True)
class QuadResStats:
    """Per-subset search bookkeeping (iterations summed over members)."""

    iterations: int


class QuadResEncoding:
    """Strategy object for the quadratic-residue alternative encoding.

    Parameters
    ----------
    n_prefixes:
        The ``k`` of the construction — how many of the longest prefixes
        must agree.  Expected search cost is ``2^k`` per subset member.
    """

    name = "quadres"

    def __init__(self, params: WatermarkParams, quantizer: Quantizer,
                 hasher: KeyedHasher, n_prefixes: int = 3,
                 batched: bool = True) -> None:
        if not 1 <= n_prefixes <= params.lsb_bits - 1:
            raise ParameterError(
                f"n_prefixes must be in [1, lsb_bits - 1], got {n_prefixes}"
            )
        self._params = params
        self._quantizer = quantizer
        self._prime = derive_prime(hasher)
        self._k = n_prefixes
        self._batched = bool(batched)
        self._table = _ResidueTable(self._prime)
        self.last_stats: "QuadResStats | None" = None
        # Lifetime observability totals (updated once per embed, read
        # by stats_snapshot() at STATUS-snapshot time).
        self.embeds = 0
        self.total_search_iterations = 0

    # ------------------------------------------------------------------
    @property
    def prime(self) -> int:
        """The derived secret prime (exposed for tests)."""
        return self._prime

    def _prefixes(self, q: int) -> list[int]:
        """The longest ``k`` prefixes of the ``value_bits``-wide word."""
        width = self._params.value_bits
        return [bitops.msb(q, width - j, width) for j in range(self._k)]

    def _value_matches(self, q: int, bit: bool) -> bool:
        """Does every one of the ``k`` longest prefixes carry ``bit``?

        The batched path walks the prefixes coarsest-first (``q >> j``
        for descending ``j`` — ``msb(q, width - j, width)`` is exactly
        the right shift): the coarsest prefix is shared by ``2^(k-1)``
        consecutive candidate lows, so its memoized residue prunes most
        failing candidates on a single dict hit.  ``all()`` over a pure
        predicate is order-independent, so the decision is identical to
        the scalar oracle (property-tested).
        """
        if not self._batched:
            return self._value_matches_scalar(q, bit)
        want = bool(bit)
        residue = self._table.residue
        for j in range(self._k - 1, -1, -1):
            if residue(q >> j) != want:
                return False
        return True

    def _value_matches_scalar(self, q: int, bit: bool) -> bool:
        """Per-prefix Euler-criterion reference (the oracle)."""
        want = bool(bit)
        return all(is_quadratic_residue(p, self._prime) == want
                   for p in self._prefixes(q))

    def _encode_value(self, q: int, bit: bool) -> tuple[int, int]:
        """Return ``(new_q, iterations)`` for a single subset member.

        The batched branch inlines the residue-table probe into the
        candidate loop (saving two call layers per probe on the hot
        path); the candidate *order* — including the two-element set
        literal whose iteration order breaks the ±distance tie — is
        kept verbatim from the scalar branch below, so the chosen
        candidate and the iteration count are bit-identical to the
        oracle (property-tested).
        """
        mask = (1 << self._params.lsb_bits) - 1
        high = q & ~mask
        original_low = q & mask
        limit = mask + 1
        iterations = 0
        max_iterations = self._params.max_search_iterations
        if self._batched:
            want = bool(bit)
            table = self._table
            memo = table._memo
            memo_get = memo.get
            memo_limit = table._limit
            prime = table._prime
            jacobi = jacobi_symbol
            k_top = self._k - 1
            for distance in range(0, limit):
                for low in ({original_low} if distance == 0 else
                            {original_low - distance,
                             original_low + distance}):
                    if not 0 <= low < limit:
                        continue
                    iterations += 1
                    if iterations > max_iterations:
                        raise EncodingSearchExhausted(
                            "quadratic-residue search exhausted "
                            f"{max_iterations} iterations"
                        )
                    candidate = high | low
                    # Coarsest prefix first: it is shared by 2^(k-1)
                    # consecutive lows, so its memo entry rejects most
                    # failing candidates on one dict hit.
                    for j in range(k_top, -1, -1):
                        prefix = candidate >> j
                        found = memo_get(prefix)
                        if found is None:
                            found = (prefix % prime != 0
                                     and jacobi(prefix, prime) == 1)
                            if len(memo) >= memo_limit:
                                table._evict()
                            memo[prefix] = found
                        if found is not want:
                            break
                    else:
                        return candidate, iterations
            raise EncodingSearchExhausted(
                f"no low-bit configuration satisfies {self._k} prefixes"
            )
        # Distance-ordered scan of the low-bit space (minimal alteration).
        for distance in range(0, limit):
            for low in ({original_low} if distance == 0 else
                        {original_low - distance, original_low + distance}):
                if not 0 <= low < limit:
                    continue
                iterations += 1
                if iterations > max_iterations:
                    raise EncodingSearchExhausted(
                        "quadratic-residue search exhausted "
                        f"{max_iterations} iterations"
                    )
                candidate = high | low
                if self._value_matches(candidate, bit):
                    return candidate, iterations
        raise EncodingSearchExhausted(
            f"no low-bit configuration satisfies {self._k} prefixes"
        )

    # ------------------------------------------------------------------
    def embed(self, q_subset: list[int], extreme_offset: int, label: int,
              bit: bool) -> EmbedOutcome:
        """Encode ``bit`` independently into every subset member.

        ``label`` is unused by this encoding (the prefix criterion is
        self-contained) but kept for strategy-interface uniformity.
        """
        if not 0 <= extreme_offset < len(q_subset):
            raise ParameterError(
                f"extreme_offset {extreme_offset} outside subset of "
                f"{len(q_subset)}"
            )
        # Reset before searching: a member search that raises must not
        # leave the previous embed's stats visible to the embedder's
        # bookkeeping.
        self.last_stats = None
        total_iterations = 0
        new_values: list[int] = []
        for q in q_subset:
            new_q, iterations = self._encode_value(q, bit)
            new_values.append(new_q)
            total_iterations += iterations
        self.last_stats = QuadResStats(iterations=total_iterations)
        self.embeds += 1
        self.total_search_iterations += total_iterations
        return EmbedOutcome(q_values=new_values, iterations=total_iterations)

    def stats_snapshot(self) -> dict:
        """Lifetime search/memo telemetry (JSON-safe, pull-based)."""
        return {
            "encoding": self.name,
            "embeds": self.embeds,
            "search_iterations": self.total_search_iterations,
            "residue_memo_size": len(self._table),
        }

    def detect(self, float_subset: np.ndarray, extreme_offset: int,
               label: int) -> Vote:
        """Vote per member: all-residue => true, all-non-residue => false.

        The batched form quantizes the whole subset as one array op
        (identical floor/clamp to the scalar :meth:`Quantizer.quantize`)
        and classifies each member with at most ``k`` memoized residue
        lookups: the coarsest prefix decides which class the member
        *could* join, the finer prefixes either confirm it or abstain
        the member — one pass instead of the scalar's two
        ``_value_matches`` calls.  Counting is commutative, so the vote
        equals :meth:`detect_scalar`'s (property-tested).
        """
        if not self._batched:
            return self.detect_scalar(float_subset, extreme_offset, label)
        if len(float_subset) == 0:
            raise ParameterError("cannot detect in an empty subset")
        q_values = self._quantizer.quantize_array(
            np.asarray(float_subset, dtype=np.float64)).tolist()
        residue = self._table.residue
        k = self._k
        n_true = 0
        n_false = 0
        for q in q_values:
            want = residue(q >> (k - 1))
            for j in range(k - 2, -1, -1):
                if residue(q >> j) != want:
                    break
            else:
                if want:
                    n_true += 1
                else:
                    n_false += 1
        return Vote(n_true=n_true, n_false=n_false)

    def detect_scalar(self, float_subset: np.ndarray, extreme_offset: int,
                      label: int) -> Vote:
        """Per-member scalar reference of :meth:`detect` (the oracle)."""
        if len(float_subset) == 0:
            raise ParameterError("cannot detect in an empty subset")
        n_true = 0
        n_false = 0
        for value in float_subset:
            q = self._quantizer.quantize(float(value))
            if self._value_matches_scalar(q, True):
                n_true += 1
            elif self._value_matches_scalar(q, False):
                n_false += 1
        return Vote(n_true=n_true, n_false=n_false)
