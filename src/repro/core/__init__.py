"""Core watermarking library — the paper's primary contribution.

Modules map to paper sections:

================================  ==========================================
module                            paper section
================================  ==========================================
:mod:`repro.core.params`          2.2 / 3.2 / 6 (parameters & invariants)
:mod:`repro.core.quantize`        2.2 (bit semantics of stream values)
:mod:`repro.core.extremes`        2.2 (extremes, ξ(ε, δ), majorness)
:mod:`repro.core.labels`          4.1 (labeling scheme)
:mod:`repro.core.degree`          4.2 (transform-degree estimation)
:mod:`repro.core.selection`       3.2 (hash-based selection)
:mod:`repro.core.encoding_initial`    3.2/3.3 (guarded-bit encoding)
:mod:`repro.core.encoding_multihash`  4.3 (multi-hash encoding)
:mod:`repro.core.encoding_quadres`    4.3 (quadratic-residue alternative)
:mod:`repro.core.embedder`        3.2 / Fig 5 (single-pass embedding)
:mod:`repro.core.detector`        3.3 / Fig 4 (voting detection)
:mod:`repro.core.quality`         4.4 (constraints + undo log)
:mod:`repro.core.confidence`      5 (court-time confidence math)
================================  ==========================================
"""

from repro.core.confidence import (
    confidence_from_bias,
    exact_bias_fp,
    fp_probability,
    fp_probability_degraded,
    min_segment_items,
    per_extreme_fp,
    seconds_to_confidence,
)
from repro.core.degree import adjusted_sigma, degree_from_rates, estimate_degree
from repro.core.detector import (
    DetectionResult,
    StreamDetector,
    detect_best,
    detect_watermark,
)
from repro.core.embedder import EmbedReport, StreamWatermarker, watermark_stream
from repro.core.encoding_factory import build_encoding
from repro.core.encoding_initial import EmbedOutcome, InitialEncoding, Vote
from repro.core.encoding_multihash import (
    MultihashEncoding,
    active_pairs,
    convention_pattern,
    expected_search_iterations,
)
from repro.core.encoding_quadres import (
    QuadResEncoding,
    derive_prime,
    is_quadratic_residue,
    jacobi_symbol,
)
from repro.core.extremes import (
    Extreme,
    average_subset_size,
    characteristic_subset,
    estimate_eta,
    find_extremes,
    find_major_extremes,
    zigzag_pivots,
)
from repro.core.labels import StreamingLabeler, label_from_history, labels_for_extreme_values
from repro.core.parallel_detect import (
    DetectionTask,
    detect_many,
    detect_watermark_spans,
    merge_results,
    run_tasks,
    split_spans,
)
from repro.core.params import WatermarkParams
from repro.core.quality import (
    Alteration,
    MaxAlteredFraction,
    MaxMeanDrift,
    MaxPerItemChange,
    MaxStdDrift,
    QualityMonitor,
    QualityStats,
)
from repro.core.quantize import Quantizer
from repro.core.selection import (
    bit_position_from_label,
    bit_position_from_value,
    select_watermark_bit,
    selection_index,
)
from repro.core.watermark import bits_to_bytes, bits_to_text, to_bits

__all__ = [
    "confidence_from_bias",
    "exact_bias_fp",
    "fp_probability",
    "fp_probability_degraded",
    "min_segment_items",
    "per_extreme_fp",
    "seconds_to_confidence",
    "adjusted_sigma",
    "degree_from_rates",
    "estimate_degree",
    "DetectionResult",
    "StreamDetector",
    "detect_best",
    "detect_watermark",
    "EmbedReport",
    "StreamWatermarker",
    "watermark_stream",
    "ENCODING_NAMES",
    "build_encoding",
    "EmbedOutcome",
    "InitialEncoding",
    "Vote",
    "MultihashEncoding",
    "active_pairs",
    "convention_pattern",
    "expected_search_iterations",
    "QuadResEncoding",
    "derive_prime",
    "is_quadratic_residue",
    "jacobi_symbol",
    "DetectionTask",
    "detect_many",
    "detect_watermark_spans",
    "merge_results",
    "run_tasks",
    "split_spans",
    "Extreme",
    "average_subset_size",
    "characteristic_subset",
    "estimate_eta",
    "find_extremes",
    "find_major_extremes",
    "zigzag_pivots",
    "StreamingLabeler",
    "label_from_history",
    "labels_for_extreme_values",
    "WatermarkParams",
    "Alteration",
    "MaxAlteredFraction",
    "MaxMeanDrift",
    "MaxPerItemChange",
    "MaxStdDrift",
    "QualityMonitor",
    "QualityStats",
    "Quantizer",
    "bit_position_from_label",
    "bit_position_from_value",
    "select_watermark_bit",
    "selection_index",
    "bits_to_bytes",
    "bits_to_text",
    "to_bits",
]


def __getattr__(name: str):
    # ENCODING_NAMES stays lazy (PEP 562): resolving it populates the
    # component registry, which must not happen on every core import.
    if name == "ENCODING_NAMES":
        from repro.core.encoding_factory import ENCODING_NAMES
        return ENCODING_NAMES
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
