"""Fixed-point quantization of normalized stream values.

The paper manipulates stream values at the bit level (``msb(x, b)``,
``lsb(x, b)``, "alter the least significant bits") without spelling out
the number representation.  We make it explicit: a normalized value
``v in (-0.5, +0.5)`` maps to an unsigned ``value_bits``-wide integer

    q = floor((v + 0.5) * 2^value_bits)

and back through the cell midpoint

    v = (q + 0.5) / 2^value_bits - 0.5.

The midpoint rule makes the round-trip exact (``quantize(dequantize(q))
== q``) and keeps every dequantized value exactly representable in an
IEEE double for ``value_bits <= 48``, which the multi-hash encoding's
average-key computation relies on (see :meth:`Quantizer.average_key`).

Average keys
------------
The multi-hash convention hashes sub-range averages ``m_ij``.  Averages
of ``k`` values live on a finer grid than the values themselves, so they
are keyed on ``value_bits + avg_extra_bits`` bits: a single unit change
in one member's quantized value moves the scaled average by
``2^avg_extra_bits / k >= 1`` for ``k <= 2^avg_extra_bits``, guaranteeing
the embedding search can steer every constrained average.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ParameterError
from repro.util.validation import as_float_array


class Quantizer:
    """Bidirectional map between normalized floats and b-bit integers."""

    def __init__(self, value_bits: int = 32, avg_extra_bits: int = 8) -> None:
        if not 8 <= value_bits <= 48:
            raise ParameterError(
                f"value_bits must be in [8, 48], got {value_bits}"
            )
        if avg_extra_bits < 1 or value_bits + avg_extra_bits > 52:
            raise ParameterError(
                "avg_extra_bits must be >= 1 with value_bits + avg_extra_bits "
                f"<= 52, got {avg_extra_bits}"
            )
        self._bits = value_bits
        self._extra = avg_extra_bits
        self._scale = float(1 << value_bits)
        self._avg_scale = float(1 << (value_bits + avg_extra_bits))
        self._max_q = (1 << value_bits) - 1

    # ------------------------------------------------------------------
    @property
    def value_bits(self) -> int:
        """Width ``b(x)`` of a quantized value."""
        return self._bits

    @property
    def avg_key_bits(self) -> int:
        """Width of an average key (``value_bits + avg_extra_bits``)."""
        return self._bits + self._extra

    @property
    def resolution(self) -> float:
        """Normalized-value size of one quantization step."""
        return 1.0 / self._scale

    # ------------------------------------------------------------------
    def quantize(self, value: float) -> int:
        """Map one normalized value to its b-bit cell index.

        ``math.floor`` computes the exact same floor as ``np.floor`` on
        any finite double, without ufunc dispatch — this sits on the
        labeling/selection hot path.
        """
        q = math.floor((float(value) + 0.5) * self._scale)
        return min(max(q, 0), self._max_q)

    def quantize_list(self, values: "list[float]") -> "list[int]":
        """:meth:`quantize` over a list of Python floats.

        For the dozen-item characteristic subsets of the embedding hot
        path this beats :meth:`quantize_array`, whose ufunc dispatch
        only pays off on larger inputs.
        """
        floor = math.floor
        scale = self._scale
        max_q = self._max_q
        return [min(max(floor((v + 0.5) * scale), 0), max_q)
                for v in values]

    def quantize_array(self, values) -> np.ndarray:
        """Vectorized :meth:`quantize` (returns int64 array)."""
        array = as_float_array(values, "values")
        q = np.floor((array + 0.5) * self._scale).astype(np.int64)
        return np.clip(q, 0, self._max_q)

    def dequantize(self, q: int) -> float:
        """Map a cell index back to its midpoint value."""
        if not 0 <= q <= self._max_q:
            raise ParameterError(
                f"quantized value {q} outside [0, {self._max_q}]"
            )
        return (q + 0.5) / self._scale - 0.5

    def dequantize_array(self, q_values) -> np.ndarray:
        """Vectorized :meth:`dequantize`."""
        q = np.asarray(q_values, dtype=np.int64)
        if q.size and (q.min() < 0 or q.max() > self._max_q):
            raise ParameterError("quantized values outside representable range")
        return (q + 0.5) / self._scale - 0.5

    def requantize(self, value: float) -> float:
        """Snap a float onto the quantization grid (embedder output form)."""
        return self.dequantize(self.quantize(value))

    # ------------------------------------------------------------------
    def msb(self, value: float, n_bits: int) -> int:
        """``msb(x, n)`` of the quantized value — the selection input.

        Fused like :meth:`abs_msb` (the clamp already guarantees
        ``bitops.msb``'s width invariant); runs per selection probe.
        """
        if n_bits <= 0:
            raise ParameterError(
                f"msb bit count must be positive, got {n_bits}"
            )
        q = math.floor((float(value) + 0.5) * self._scale)
        q = min(max(q, 0), self._max_q)
        if n_bits >= self._bits:
            return q
        return q >> (self._bits - n_bits)

    def abs_msb(self, value: float, n_bits: int) -> int:
        """``msb(abs(x), n)`` — the label-comparison input (Sec 4.1).

        Quantizing ``|v|`` through the same map keeps the comparison
        monotone in ``|v|``, which is all the labeling scheme needs.
        The quantize/shift chain is fused inline (the clamp guarantees
        the width invariant ``bitops.msb`` would re-check): this runs
        once per major extreme on the labeling hot path.
        """
        if n_bits <= 0:
            raise ParameterError(
                f"msb bit count must be positive, got {n_bits}"
            )
        q = math.floor((abs(float(value)) + 0.5) * self._scale)
        q = min(max(q, 0), self._max_q)
        if n_bits >= self._bits:
            return q
        return q >> (self._bits - n_bits)

    # ------------------------------------------------------------------
    def average_key(self, values) -> int:
        """Deterministic integer key of a sub-range average ``m_ij``.

        Computed as ``floor((mean(values) + 0.5) * 2^(b + e))``.  Both the
        embedder (predicting what a summarizer will emit) and the detector
        (keying what it received) call this on IEEE doubles; for chunk
        sizes below numpy's pairwise-summation block the mean is
        bit-identical on both sides, so the keys agree exactly.
        """
        array = np.asarray(values, dtype=np.float64)
        n = array.size
        if n == 0:
            raise ParameterError("average_key of an empty range")
        if n < 8:
            # numpy's pairwise summation degenerates to a plain
            # left-to-right sum below 8 elements, so a Python sum over
            # the same doubles is bit-identical — and an order of
            # magnitude cheaper for the short sub-ranges the multi-hash
            # search probes.
            mean = sum(array.tolist()) / n
        else:
            mean = float(np.mean(array))
        key = math.floor((mean + 0.5) * self._avg_scale)
        upper = (1 << self.avg_key_bits) - 1
        return min(max(key, 0), upper)

    def average_key_scalar(self, value: float) -> int:
        """Average key of a single received item (degenerate sub-range)."""
        key = math.floor((float(value) + 0.5) * self._avg_scale)
        upper = (1 << self.avg_key_bits) - 1
        return min(max(key, 0), upper)

    def average_key_array(self, means) -> np.ndarray:
        """Vectorized :meth:`average_key` over precomputed sub-range means.

        The caller supplies the means (so it controls the summation
        order — the bit-identity contract lives there); this applies the
        ``floor((m + 0.5) * 2^(b + e))`` keying and the clamp as array
        ops.  ``floor`` of an IEEE double and ``math.floor`` of the same
        double agree exactly (keys stay far below 2^52), so each entry
        equals ``average_key`` of a sub-range with that mean.
        """
        array = np.asarray(means, dtype=np.float64)
        keys = np.floor((array + 0.5) * self._avg_scale)
        upper = (1 << self.avg_key_bits) - 1
        # Clamp in float space first: received (attacked) streams can sit
        # far outside the quantizer range, where an int64 cast of the
        # raw floor would overflow instead of saturating like the
        # scalar's min/max.
        return np.clip(keys, 0, upper).astype(np.int64)

    @property
    def average_scale(self) -> float:
        """The ``2^(b + e)`` multiplier of the average-key map."""
        return float(self._avg_scale)

    @property
    def scale(self) -> float:
        """The ``2^b`` cell count of the value map (dequantize divisor)."""
        return float(self._scale)
