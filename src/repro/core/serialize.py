"""Evidence serialization: persist and reload detection/embedding state.

Rights-protection evidence outlives processes: the embed report carries
the reference statistics detection needs years later (Sec 4.2's average
subset size), and a detection result is the artifact presented in court.
Both serialize to plain JSON-compatible dicts — no pickle, so archives
remain readable and tamper-evident alongside any notarization scheme.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from repro.core.detector import DetectionResult
from repro.core.embedder import EmbedReport
from repro.core.params import WatermarkParams
from repro.core.scanner import ScanCounters
from repro.errors import ParameterError

_FORMAT_VERSION = 1


def _counters_to_dict(counters: ScanCounters) -> dict:
    return counters.to_dict()


def _counters_from_dict(data: dict) -> ScanCounters:
    return ScanCounters.from_dict(data)


def params_to_dict(params: WatermarkParams) -> dict:
    """Serialize watermarking parameters field-by-field.

    Every :class:`WatermarkParams` field is a plain scalar, so the dict
    is JSON-compatible as-is; :func:`params_from_dict` re-runs the
    constructor and therefore re-validates every invariant.
    """
    return dataclasses.asdict(params)


def params_from_dict(data: dict) -> WatermarkParams:
    """Reconstruct :class:`WatermarkParams` from :func:`params_to_dict`.

    Unknown keys are rejected (a newer library's parameter would
    otherwise be silently dropped, changing detection semantics).
    """
    known = {f.name for f in dataclasses.fields(WatermarkParams)}
    unknown = set(data) - known
    if unknown:
        raise ParameterError(
            f"unknown WatermarkParams fields in archive: {sorted(unknown)}"
        )
    return WatermarkParams(**data)


def detection_to_dict(result: DetectionResult) -> dict:
    """Serialize a detection result (buckets, counters, threshold)."""
    return {
        "format_version": _FORMAT_VERSION,
        "kind": "detection-result",
        "buckets_true": list(result.buckets_true),
        "buckets_false": list(result.buckets_false),
        "abstentions": result.abstentions,
        "vote_threshold": result.vote_threshold,
        "counters": _counters_to_dict(result.counters),
    }


def detection_from_dict(data: dict) -> DetectionResult:
    """Reconstruct a detection result serialized by :func:`detection_to_dict`."""
    _check(data, "detection-result")
    return DetectionResult(
        buckets_true=[int(x) for x in data["buckets_true"]],
        buckets_false=[int(x) for x in data["buckets_false"]],
        counters=_counters_from_dict(data["counters"]),
        abstentions=int(data["abstentions"]),
        vote_threshold=int(data["vote_threshold"]))


def report_to_dict(report: EmbedReport) -> dict:
    """Serialize an embed report (everything detection may need later)."""
    return {
        "format_version": _FORMAT_VERSION,
        "kind": "embed-report",
        "counters": _counters_to_dict(report.counters),
        "embedded": report.embedded,
        "search_failures": report.search_failures,
        "quality_rollbacks": report.quality_rollbacks,
        "total_search_iterations": report.total_search_iterations,
        "altered_items": report.altered_items,
        "sum_abs_alteration": report.sum_abs_alteration,
        "max_abs_alteration": report.max_abs_alteration,
    }


def report_from_dict(data: dict) -> EmbedReport:
    """Reconstruct an embed report serialized by :func:`report_to_dict`."""
    _check(data, "embed-report")
    return EmbedReport(
        counters=_counters_from_dict(data["counters"]),
        embedded=int(data["embedded"]),
        search_failures=int(data["search_failures"]),
        quality_rollbacks=int(data["quality_rollbacks"]),
        total_search_iterations=int(data["total_search_iterations"]),
        altered_items=int(data["altered_items"]),
        sum_abs_alteration=float(data["sum_abs_alteration"]),
        max_abs_alteration=float(data["max_abs_alteration"]))


def save_json(obj, path: "str | Path") -> None:
    """Persist a detection result or embed report to a JSON file."""
    if isinstance(obj, DetectionResult):
        payload = detection_to_dict(obj)
    elif isinstance(obj, EmbedReport):
        payload = report_to_dict(obj)
    else:
        raise ParameterError(
            f"cannot serialize {type(obj).__name__}; expected "
            "DetectionResult or EmbedReport"
        )
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_json(path: "str | Path"):
    """Load whatever :func:`save_json` stored at ``path``."""
    data = json.loads(Path(path).read_text())
    kind = data.get("kind")
    if kind == "detection-result":
        return detection_from_dict(data)
    if kind == "embed-report":
        return report_from_dict(data)
    raise ParameterError(f"unknown serialized kind {kind!r}")


def _check(data: dict, expected_kind: str) -> None:
    if data.get("kind") != expected_kind:
        raise ParameterError(
            f"expected kind {expected_kind!r}, got {data.get('kind')!r}"
        )
    if int(data.get("format_version", -1)) > _FORMAT_VERSION:
        raise ParameterError(
            "archive written by a newer library version "
            f"({data['format_version']} > {_FORMAT_VERSION})"
        )
