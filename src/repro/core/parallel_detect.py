"""Process-pool batch detection with exact vote-bucket merging.

Detection is embarrassingly parallel along three axes the offline
multi-pass story already exposes: candidate transform degrees ρ
(:func:`repro.core.detector.detect_best` tries several), candidate keys
(a rights holder screening a batch of suspect streams against its key
ring), and contiguous chunk ranges of one long stream.  Each axis
factors into independent :class:`DetectionTask` units that a
``ProcessPoolExecutor`` fans out; the voting buckets ``wm[i]^T`` /
``wm[i]^F`` are plain sums over selected extremes, so partial results
merge *exactly* — :func:`merge_results` implements the bucket merge law

    merged.buckets[i] = sum over parts of part.buckets[i]

and likewise for abstentions and every scan counter.  Serial equals
parallel for every split (property-tested).

The one approximation lives in *where the split cuts*: span-parallel
detection of a single stream re-warms the scanner at each span boundary
(window fill, label history), so a handful of extremes near each cut
may be skipped relative to the single-pass scan.  The merge itself adds
no error; with spans much longer than the window the vote loss is a few
votes per cut, and :func:`split_spans` refuses to produce spans shorter
than a window multiple for exactly that reason.

Workers are processes, not threads — the hot loops are pure Python and
hold the GIL.  Tasks are pickled; :class:`~repro.util.hashing.KeyedHasher`
carries a ``__reduce__`` for this.
"""

from __future__ import annotations

import dataclasses
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.core.params import WatermarkParams
from repro.core.scanner import ScanCounters
from repro.errors import ParameterError
from repro.obs import NULL_REGISTRY

# Late imports of detector internals happen inside functions: the
# detector module imports this one for its ``workers=`` conveniences,
# and Python's module machinery resolves the cycle only if neither side
# needs the other at import time.


@dataclass(frozen=True)
class DetectionTask:
    """One self-contained detection unit (picklable, order-preserving).

    ``values`` is the (possibly transformed) stream slice to scan;
    everything else mirrors the keyword surface of
    :func:`repro.core.detector.detect_watermark`.
    """

    values: "np.ndarray"
    wm_length: int
    key: "bytes | str"
    params: "WatermarkParams | None" = None
    encoding: str = "multihash"
    transform_degree: float = 1.0
    require_labels: bool = True
    encoding_options: "dict | None" = field(default=None, hash=False)

    def __post_init__(self) -> None:
        array = np.asarray(self.values, dtype=np.float64).ravel()
        if array.size == 0:
            raise ParameterError("cannot detect in an empty stream")
        object.__setattr__(self, "values", array)


def run_task(task: DetectionTask):
    """Execute one task in the current process; returns DetectionResult."""
    from repro.core.detector import detect_watermark

    return detect_watermark(task.values, task.wm_length, task.key,
                            params=task.params, encoding=task.encoding,
                            transform_degree=task.transform_degree,
                            require_labels=task.require_labels,
                            encoding_options=task.encoding_options)


def run_tasks(tasks: "list[DetectionTask]",
              workers: "int | None" = None, metrics=None) -> list:
    """Run tasks serially (``workers`` in {None, 0, 1}) or in a pool.

    Results come back in task order either way (``Executor.map``
    preserves ordering), so callers can zip them against their inputs.
    The pool is sized ``min(workers, len(tasks))`` — idle workers cost
    a fork each.

    ``metrics`` is an optional :class:`~repro.obs.MetricsRegistry`;
    counters are maintained parent-side (workers are separate
    processes, so instruments must not cross the pool boundary):
    ``detect_tasks_total`` counts every task, ``detect_pool_tasks_total``
    and ``detect_pool_batches_total`` only pool-dispatched work, and
    the ``detect_pool_utilization`` gauge reports tasks-per-slot of the
    latest batch (how full the requested pool actually ran).
    """
    if workers is not None and workers < 0:
        raise ParameterError(f"workers must be >= 0, got {workers}")
    m = metrics if metrics is not None else NULL_REGISTRY
    tasks = list(tasks)
    if not tasks:
        return []
    m.counter("detect_tasks_total").inc(len(tasks))
    if workers is None or workers <= 1 or len(tasks) == 1:
        return [run_task(task) for task in tasks]
    pool_size = min(workers, len(tasks))
    m.counter("detect_pool_tasks_total").inc(len(tasks))
    m.counter("detect_pool_batches_total").inc()
    m.gauge("detect_pool_workers").set(pool_size)
    m.gauge("detect_pool_utilization").set(round(len(tasks) / workers, 4))
    with ProcessPoolExecutor(max_workers=pool_size) as pool:
        return list(pool.map(run_task, tasks))


def merge_results(results: "list", metrics=None):
    """Exact reduction of partial detection results (the merge law).

    Buckets, abstentions and scan counters are additive across disjoint
    evidence; the counter sum iterates the dataclass fields so a newly
    added counter participates automatically.  All parts must agree on
    watermark length and vote threshold — merging across different
    thresholds would make ``wm_estimate`` ill-defined.

    With ``metrics`` given, ``detect_span_merges_total`` counts merge
    operations and ``detect_merged_parts_total`` the partial results
    folded in.
    """
    from repro.core.detector import DetectionResult

    results = list(results)
    if not results:
        raise ParameterError("cannot merge zero detection results")
    m = metrics if metrics is not None else NULL_REGISTRY
    m.counter("detect_span_merges_total").inc()
    m.counter("detect_merged_parts_total").inc(len(results))
    first = results[0]
    wm_length = first.wm_length
    threshold = first.vote_threshold
    buckets_true = [0] * wm_length
    buckets_false = [0] * wm_length
    abstentions = 0
    counter_fields = [f.name for f in dataclasses.fields(ScanCounters)]
    counter_sums = {name: 0 for name in counter_fields}
    for result in results:
        if result.wm_length != wm_length:
            raise ParameterError(
                f"cannot merge results for {result.wm_length}-bit and "
                f"{wm_length}-bit watermarks"
            )
        if result.vote_threshold != threshold:
            raise ParameterError(
                "cannot merge results with different vote thresholds "
                f"({result.vote_threshold} vs {threshold})"
            )
        for i in range(wm_length):
            buckets_true[i] += result.buckets_true[i]
            buckets_false[i] += result.buckets_false[i]
        abstentions += result.abstentions
        for name in counter_fields:
            counter_sums[name] += getattr(result.counters, name)
    return DetectionResult(buckets_true=buckets_true,
                           buckets_false=buckets_false,
                           counters=ScanCounters(**counter_sums),
                           abstentions=abstentions,
                           vote_threshold=threshold)


def split_spans(n_items: int, n_spans: int,
                min_span: int = 1) -> "list[tuple[int, int]]":
    """Contiguous ``[start, end)`` spans covering ``range(n_items)``.

    Deterministic (earlier spans take the remainder) and never returns
    a span shorter than ``min_span`` — the span count is reduced
    instead, so a short stream degrades to fewer, larger parts rather
    than to window-sized fragments that would lose most of their votes
    to scanner warmup.
    """
    if n_items < 1:
        raise ParameterError(f"n_items must be >= 1, got {n_items}")
    if n_spans < 1:
        raise ParameterError(f"n_spans must be >= 1, got {n_spans}")
    if min_span < 1:
        raise ParameterError(f"min_span must be >= 1, got {min_span}")
    n_spans = max(1, min(n_spans, n_items // max(min_span, 1)) or 1)
    base = n_items // n_spans
    remainder = n_items % n_spans
    spans: "list[tuple[int, int]]" = []
    start = 0
    for index in range(n_spans):
        length = base + (1 if index < remainder else 0)
        spans.append((start, start + length))
        start += length
    return spans


def detect_watermark_spans(values, wm_length, key,
                           params: "WatermarkParams | None" = None,
                           encoding: str = "multihash",
                           transform_degree: float = 1.0,
                           require_labels: bool = True,
                           encoding_options: "dict | None" = None,
                           spans: int = 4,
                           workers: "int | None" = None,
                           metrics=None):
    """Span-parallel detection of one long stream, merged exactly.

    The stream is cut into ``spans`` contiguous ranges (each at least
    eight windows long — see :func:`split_spans`), each range is scanned
    independently (in ``workers`` processes when given), and the partial
    votes are reduced with :func:`merge_results`.  See the module
    docstring for the boundary-warmup caveat.
    """
    array = np.asarray(values, dtype=np.float64).ravel()
    if array.size == 0:
        raise ParameterError("cannot detect in an empty stream")
    params = params or WatermarkParams()
    ranges = split_spans(array.size, spans,
                         min_span=8 * params.window_size)
    tasks = [DetectionTask(values=array[start:end], wm_length=wm_length,
                           key=key, params=params, encoding=encoding,
                           transform_degree=transform_degree,
                           require_labels=require_labels,
                           encoding_options=encoding_options)
             for (start, end) in ranges]
    return merge_results(run_tasks(tasks, workers=workers, metrics=metrics),
                         metrics=metrics)


def detect_many(tasks: "list[DetectionTask]",
                workers: "int | None" = None, metrics=None) -> list:
    """Batch API: run many independent detections, preserving order.

    This is the hub's screening surface — candidate keys x suspect
    streams, each its own :class:`DetectionTask`.  No merging: each
    task answers its own question.
    """
    return run_tasks(tasks, workers=workers, metrics=metrics)
