"""Bit-encoding strategy construction, resolved through the registry.

The embedder and detector accept either a strategy *name* or a pre-built
strategy object; names resolve through the central
:class:`repro.registry.ComponentRegistry`, so a newly registered
encoding is immediately constructible here (and visible to the CLI)
without touching this module.  Strategies share the interface::

    embed(q_subset, extreme_offset, label, bit)  -> EmbedOutcome
    detect(float_subset, extreme_offset, label)  -> Vote
"""

from __future__ import annotations

from repro.core.encoding_initial import InitialEncoding
from repro.core.encoding_multihash import MultihashEncoding
from repro.core.encoding_quadres import QuadResEncoding
from repro.core.params import WatermarkParams
from repro.core.quantize import Quantizer
from repro.errors import ParameterError, RegistryError
from repro.registry import REGISTRY
from repro.util.hashing import KeyedHasher

REGISTRY.add("encoding", "multihash", MultihashEncoding,
             description="Sec-4.3 multi-hash convention over subset "
                         "averages (default; survives summarization)")
REGISTRY.add("encoding", "initial", InitialEncoding,
             description="Sec-3.2 guarded single-bit encoding of the "
                         "extreme value")
REGISTRY.add("encoding", "quadres", QuadResEncoding,
             description="quadratic-residue prefix encoding "
                         "(epsilon-robust value convention)")


def encoding_names() -> "tuple[str, ...]":
    """Registered encoding names (registry-backed, never hard-coded)."""
    return REGISTRY.names("encoding")


def build_encoding(encoding, params: WatermarkParams, quantizer: Quantizer,
                   hasher: KeyedHasher, **options):
    """Resolve an encoding name (or pass through a strategy object).

    Options are forwarded to the strategy constructor, e.g.
    ``build_encoding("multihash", ..., method="random")`` or
    ``build_encoding("initial", ..., use_label_positions=False)``.
    """
    if not isinstance(encoding, str):
        required = ("embed", "detect")
        if all(hasattr(encoding, attr) for attr in required):
            return encoding
        raise ParameterError(
            f"encoding object {encoding!r} lacks the strategy interface "
            f"{required}"
        )
    try:
        strategy_cls = REGISTRY.get("encoding", encoding)
    except RegistryError as exc:
        # Keep the historical ParameterError contract at this boundary
        # (RegistryError is also a ValueError, but callers catch
        # ParameterError specifically).
        raise ParameterError(str(exc)) from None
    return strategy_cls(params, quantizer, hasher, **options)


def __getattr__(name: str):
    # Backward-compatible ENCODING_NAMES, resolved lazily (PEP 562) so
    # importing this module does not force registry population (which
    # would eagerly import every provider module on any core import).
    if name == "ENCODING_NAMES":
        return encoding_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
