"""Bit-encoding strategy construction.

The embedder and detector accept either a strategy *name* or a pre-built
strategy object; the factory keeps the name-to-class mapping in one
place.  Strategies share the interface::

    embed(q_subset, extreme_offset, label, bit)  -> EmbedOutcome
    detect(float_subset, extreme_offset, label)  -> Vote
"""

from __future__ import annotations

from repro.core.encoding_initial import InitialEncoding
from repro.core.encoding_multihash import MultihashEncoding
from repro.core.encoding_quadres import QuadResEncoding
from repro.core.params import WatermarkParams
from repro.core.quantize import Quantizer
from repro.errors import ParameterError
from repro.util.hashing import KeyedHasher

ENCODING_NAMES = ("multihash", "initial", "quadres")


def build_encoding(encoding, params: WatermarkParams, quantizer: Quantizer,
                   hasher: KeyedHasher, **options):
    """Resolve an encoding name (or pass through a strategy object).

    Options are forwarded to the strategy constructor, e.g.
    ``build_encoding("multihash", ..., method="random")`` or
    ``build_encoding("initial", ..., use_label_positions=False)``.
    """
    if not isinstance(encoding, str):
        required = ("embed", "detect")
        if all(hasattr(encoding, attr) for attr in required):
            return encoding
        raise ParameterError(
            f"encoding object {encoding!r} lacks the strategy interface "
            f"{required}"
        )
    if encoding == "multihash":
        return MultihashEncoding(params, quantizer, hasher, **options)
    if encoding == "initial":
        return InitialEncoding(params, quantizer, hasher, **options)
    if encoding == "quadres":
        return QuadResEncoding(params, quantizer, hasher, **options)
    raise ParameterError(
        f"unknown encoding {encoding!r}; choose one of {ENCODING_NAMES}"
    )
