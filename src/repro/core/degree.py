"""Transform-degree estimation and label reconstruction (paper Sec 4.2).

Detection on a sampled/summarized stream must re-identify *major*
extremes, but majorness is defined against the original stream.  The
paper's two-stage fix:

1. estimate the degree ρ of the transform that produced the observed
   stream;
2. a major extreme of degree σ and radius δ in the original is a major
   extreme of degree σ/ρ and radius δ in the transformed stream — so
   detection simply runs with the adjusted degree.

For dynamic streams with known rates, ``ρ = ς / ς'``.  For an isolated
segment, the paper's method — used "successfully" in their prototype —
compares the average characteristic-subset size of the original stream
(a single scalar preserved at embedding time) with the same statistic
measured on the segment; subsets shrink proportionally to the transform
degree, so the ratio estimates ρ.
"""

from __future__ import annotations

from repro.core.extremes import average_subset_size
from repro.errors import DetectionError, ParameterError


def degree_from_rates(original_rate_hz: float,
                      observed_rate_hz: float) -> float:
    """``ρ = ς / ς'`` when both stream rates are known (Sec 4.2)."""
    if original_rate_hz <= 0 or observed_rate_hz <= 0:
        raise ParameterError("rates must be positive")
    if observed_rate_hz > original_rate_hz:
        raise ParameterError(
            "observed rate exceeds the original: rate-reducing transforms "
            f"cannot increase ς ({observed_rate_hz} > {original_rate_hz})"
        )
    return original_rate_hz / observed_rate_hz


def estimate_degree(reference_subset_size: float, observed_values,
                    prominence: float, delta: float) -> float:
    """Estimate ρ from characteristic-subset shrinkage (Sec 4.2).

    Parameters
    ----------
    reference_subset_size:
        Average ``|ξ(ε, δ)|`` of the *original* stream, preserved by the
        embedder (:class:`repro.core.embedder.EmbedReport` records it).
    observed_values:
        The (possibly transformed) segment under detection.
    prominence, delta:
        The extreme-detection parameters, identical to embedding time.

    Returns
    -------
    float:
        Estimated transform degree, clamped to ``>= 1`` (a degree below
        one would mean the stream gained resolution, which rate-reducing
        transforms cannot do).
    """
    if reference_subset_size <= 0:
        raise ParameterError(
            "reference_subset_size must be positive, got "
            f"{reference_subset_size}"
        )
    observed = average_subset_size(observed_values, prominence, delta)
    if observed <= 0:
        raise DetectionError(
            "no extremes found in the observed segment; cannot estimate "
            "the transform degree"
        )
    return max(1.0, reference_subset_size / observed)


def adjusted_sigma(sigma: int, degree: float) -> int:
    """Majorness degree in the transformed stream: ``max(1, floor(σ/ρ))``.

    Flooring (rather than rounding) matters: an original major extreme
    with ``|ξ| = σ`` shrinks to about ``σ/ρ`` subset items after a
    degree-ρ transform, and rounding 1.5 *up* to 2 would reject extremes
    the embedder labeled — desynchronizing the label chain.  Erring
    toward inclusiveness keeps embedder and detector extreme sequences
    aligned; spurious inclusions only add symmetric vote noise.
    """
    if sigma < 1:
        raise ParameterError(f"sigma must be >= 1, got {sigma}")
    if degree < 1.0:
        raise ParameterError(f"degree must be >= 1, got {degree}")
    return max(1, int(sigma / degree))
