"""The extreme-labeling scheme (paper Sec 4.1).

Labels give every extreme a (virtually) unique identifier derived from
the *shape* of the preceding stream rather than from the extreme's own
value.  Using the label — instead of the value — to pick the embedding
bit position breaks the correlation between alteration location and
alteration value that Mallory's "hash-bucket counting" attack exploits.

Definition (with the paper's symbols):

* ``label_bit(i, i + %)`` is true iff
  ``msb(abs(val(ε_i)), β) < msb(abs(val(ε_{i+%})), β)``;
* the label of extreme ``c`` is the bit string ``"1"`` followed by the
  ``λ - 1`` bits ``label_bit(j, j + %)`` for
  ``j = c - %(λ-1), c - %(λ-2), ..., c - %`` — i.e. a chain of
  comparisons between extremes ``%`` apart, ending at ``c``.

Worked example (paper Fig 2(a), % = 2): extremes ``A..K`` where the
comparison bits are ``AC:1, CE:0, EG:1, GI:0, IK:0`` give extreme K the
label ``"110100"`` — reproduced verbatim in the test-suite.

Labels are represented as ints whose bit-length is exactly λ (the
leading "1" doubles as a length guard).  While fewer than
``%(λ-1)`` predecessors exist the label is undefined (``None``) and the
embedder/detector skip the extreme — the warm-up the paper's
segmentation analysis (Sec 5) accounts for.
"""

from __future__ import annotations

from collections import deque

from repro.core.quantize import Quantizer
from repro.errors import ParameterError


def label_bit(earlier_value: float, later_value: float,
              quantizer: Quantizer, msb_bits: int) -> bool:
    """One comparison bit: ``msb(|earlier|, β) < msb(|later|, β)``."""
    return (quantizer.abs_msb(earlier_value, msb_bits)
            < quantizer.abs_msb(later_value, msb_bits))


def label_from_history(history: "list[float]", quantizer: Quantizer,
                       msb_bits: int) -> int:
    """Build a label from the chain ``history[0], history[1], ...``.

    ``history`` must hold the extreme values at positions
    ``c - %(λ-1), c - %(λ-2), ..., c`` (λ values, already ``%``-strided).
    Returns the label as an int of bit-length exactly ``len(history)``.
    """
    if len(history) < 2:
        raise ParameterError("label needs at least two extreme values")
    label = 1  # the leading "1" of the paper's construction
    for earlier, later in zip(history[:-1], history[1:]):
        bit = label_bit(earlier, later, quantizer, msb_bits)
        label = (label << 1) | int(bit)
    return label


class StreamingLabeler:
    """Single-pass label computation over the sequence of major extremes.

    Feed every major extreme's (post-embedding) value through
    :meth:`push`; it returns the extreme's label once enough history has
    accumulated, ``None`` during warm-up.  Memory use is
    ``%(λ-1) + 1`` floats — constant, honouring the window model.
    """

    def __init__(self, lambda_bits: int, skip: int,
                 quantizer: Quantizer, msb_bits: int) -> None:
        if lambda_bits < 2:
            raise ParameterError(f"lambda_bits must be >= 2, got {lambda_bits}")
        if skip < 1:
            raise ParameterError(f"skip must be >= 1, got {skip}")
        self._lambda = lambda_bits
        self._skip = skip
        self._quantizer = quantizer
        self._msb_bits = msb_bits
        self._needed = skip * (lambda_bits - 1) + 1
        self._values: deque[float] = deque(maxlen=self._needed)
        # Labels are maintained incrementally: the chain of extremes
        # ``%`` apart partitions pushes into ``%`` interleaved parity
        # classes, and each new push appends exactly one comparison bit
        # (msb(|previous of same parity|, β) < msb(|current|, β)) to its
        # class's rolling register.  A label is then the leading "1"
        # over the register's low λ-1 bits — O(1) int ops per extreme
        # instead of re-deriving 2(λ-1) quantizations per label, which
        # dominated the seed's scanning hot path.
        self._label_mask = (1 << (lambda_bits - 1)) - 1
        self._label_lead = 1 << (lambda_bits - 1)
        self._pushes = 0
        self._last_msb: "list[int | None]" = [None] * skip
        self._registers: "list[int]" = [0] * skip

    @property
    def warmup_remaining(self) -> int:
        """Extremes still needed before labels become defined."""
        return max(0, self._needed - len(self._values))

    def push(self, extreme_value: float) -> "int | None":
        """Record one extreme value; return its label or ``None``."""
        parity = self._pushes % self._skip
        msb = self._quantizer.abs_msb(extreme_value, self._msb_bits)
        last = self._last_msb[parity]
        if last is not None:
            self._registers[parity] = \
                ((self._registers[parity] << 1) | (last < msb)) \
                & self._label_mask
        self._last_msb[parity] = msb
        self._pushes += 1
        self._values.append(float(extreme_value))
        if len(self._values) < self._needed:
            return None
        # label: leading "1" over the last λ-1 chain comparisons of the
        # current parity class — the values at distances %(λ-1), ..., %
        # and 0 behind (and including) the current extreme.
        return self._label_lead | self._registers[parity]

    def preview(self, extreme_value: float) -> "int | None":
        """Label this value *would* get, without committing it.

        The embedder needs the label before encoding but must commit the
        post-encoding value (what the detector will see); preview/push
        splits those two steps.
        """
        if len(self._values) + 1 < self._needed:
            return None
        parity = self._pushes % self._skip
        msb = self._quantizer.abs_msb(extreme_value, self._msb_bits)
        register = ((self._registers[parity] << 1)
                    | (self._last_msb[parity] < msb)) & self._label_mask
        return self._label_lead | register

    def reset(self) -> None:
        """Forget all history (e.g. when detection restarts on a segment)."""
        self._values.clear()
        self._pushes = 0
        self._last_msb = [None] * self._skip
        self._registers = [0] * self._skip

    # ------------------------------------------------------------------
    # checkpoint / resume
    # ------------------------------------------------------------------
    def history(self) -> "list[float]":
        """The retained extreme values, oldest first (for checkpoints)."""
        return [float(v) for v in self._values]

    def restore(self, values) -> None:
        """Replace the history with a checkpointed :meth:`history` list.

        The parity registers are rebuilt by replaying the raw values, so
        the checkpoint format stays plain floats.  Chain pairings are
        relative (``%`` positions apart in push order), so replaying only
        the retained window of values reproduces the seed's behaviour
        exactly.
        """
        self.reset()
        for value in values:
            self.push(value)


def labels_for_extreme_values(extreme_values, lambda_bits: int, skip: int,
                              quantizer: Quantizer, msb_bits: int
                              ) -> "list[int | None]":
    """Labels of every extreme in a sequence (offline convenience).

    Returns one entry per input extreme; entries during warm-up are
    ``None``.  Used by the label-resilience experiments (Figs 6, 8),
    which compare the label sequences of original vs attacked streams.
    """
    labeler = StreamingLabeler(lambda_bits, skip, quantizer, msb_bits)
    return [labeler.push(value) for value in extreme_values]
