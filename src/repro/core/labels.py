"""The extreme-labeling scheme (paper Sec 4.1).

Labels give every extreme a (virtually) unique identifier derived from
the *shape* of the preceding stream rather than from the extreme's own
value.  Using the label — instead of the value — to pick the embedding
bit position breaks the correlation between alteration location and
alteration value that Mallory's "hash-bucket counting" attack exploits.

Definition (with the paper's symbols):

* ``label_bit(i, i + %)`` is true iff
  ``msb(abs(val(ε_i)), β) < msb(abs(val(ε_{i+%})), β)``;
* the label of extreme ``c`` is the bit string ``"1"`` followed by the
  ``λ - 1`` bits ``label_bit(j, j + %)`` for
  ``j = c - %(λ-1), c - %(λ-2), ..., c - %`` — i.e. a chain of
  comparisons between extremes ``%`` apart, ending at ``c``.

Worked example (paper Fig 2(a), % = 2): extremes ``A..K`` where the
comparison bits are ``AC:1, CE:0, EG:1, GI:0, IK:0`` give extreme K the
label ``"110100"`` — reproduced verbatim in the test-suite.

Labels are represented as ints whose bit-length is exactly λ (the
leading "1" doubles as a length guard).  While fewer than
``%(λ-1)`` predecessors exist the label is undefined (``None``) and the
embedder/detector skip the extreme — the warm-up the paper's
segmentation analysis (Sec 5) accounts for.
"""

from __future__ import annotations

from collections import deque

from repro.core.quantize import Quantizer
from repro.errors import ParameterError


def label_bit(earlier_value: float, later_value: float,
              quantizer: Quantizer, msb_bits: int) -> bool:
    """One comparison bit: ``msb(|earlier|, β) < msb(|later|, β)``."""
    return (quantizer.abs_msb(earlier_value, msb_bits)
            < quantizer.abs_msb(later_value, msb_bits))


def label_from_history(history: "list[float]", quantizer: Quantizer,
                       msb_bits: int) -> int:
    """Build a label from the chain ``history[0], history[1], ...``.

    ``history`` must hold the extreme values at positions
    ``c - %(λ-1), c - %(λ-2), ..., c`` (λ values, already ``%``-strided).
    Returns the label as an int of bit-length exactly ``len(history)``.
    """
    if len(history) < 2:
        raise ParameterError("label needs at least two extreme values")
    label = 1  # the leading "1" of the paper's construction
    for earlier, later in zip(history[:-1], history[1:]):
        bit = label_bit(earlier, later, quantizer, msb_bits)
        label = (label << 1) | int(bit)
    return label


class StreamingLabeler:
    """Single-pass label computation over the sequence of major extremes.

    Feed every major extreme's (post-embedding) value through
    :meth:`push`; it returns the extreme's label once enough history has
    accumulated, ``None`` during warm-up.  Memory use is
    ``%(λ-1) + 1`` floats — constant, honouring the window model.
    """

    def __init__(self, lambda_bits: int, skip: int,
                 quantizer: Quantizer, msb_bits: int) -> None:
        if lambda_bits < 2:
            raise ParameterError(f"lambda_bits must be >= 2, got {lambda_bits}")
        if skip < 1:
            raise ParameterError(f"skip must be >= 1, got {skip}")
        self._lambda = lambda_bits
        self._skip = skip
        self._quantizer = quantizer
        self._msb_bits = msb_bits
        self._needed = skip * (lambda_bits - 1) + 1
        self._values: deque[float] = deque(maxlen=self._needed)

    @property
    def warmup_remaining(self) -> int:
        """Extremes still needed before labels become defined."""
        return max(0, self._needed - len(self._values))

    def push(self, extreme_value: float) -> "int | None":
        """Record one extreme value; return its label or ``None``."""
        self._values.append(float(extreme_value))
        if len(self._values) < self._needed:
            return None
        # history: values at distances %(λ-1), ..., %, 0 behind current.
        chain = [self._values[-1 - self._skip * k]
                 for k in range(self._lambda - 1, -1, -1)]
        return label_from_history(chain, self._quantizer, self._msb_bits)

    def preview(self, extreme_value: float) -> "int | None":
        """Label this value *would* get, without committing it.

        The embedder needs the label before encoding but must commit the
        post-encoding value (what the detector will see); preview/push
        splits those two steps.
        """
        if len(self._values) + 1 < self._needed:
            return None
        hypothetical = list(self._values)[-(self._needed - 1):]
        hypothetical.append(float(extreme_value))
        chain = [hypothetical[-1 - self._skip * k]
                 for k in range(self._lambda - 1, -1, -1)]
        return label_from_history(chain, self._quantizer, self._msb_bits)

    def reset(self) -> None:
        """Forget all history (e.g. when detection restarts on a segment)."""
        self._values.clear()

    # ------------------------------------------------------------------
    # checkpoint / resume
    # ------------------------------------------------------------------
    def history(self) -> "list[float]":
        """The retained extreme values, oldest first (for checkpoints)."""
        return [float(v) for v in self._values]

    def restore(self, values) -> None:
        """Replace the history with a checkpointed :meth:`history` list."""
        self._values.clear()
        for value in values:
            self._values.append(float(value))


def labels_for_extreme_values(extreme_values, lambda_bits: int, skip: int,
                              quantizer: Quantizer, msb_bits: int
                              ) -> "list[int | None]":
    """Labels of every extreme in a sequence (offline convenience).

    Returns one entry per input extreme; entries during warm-up are
    ``None``.  Used by the label-resilience experiments (Figs 6, 8),
    which compare the label sequences of original vs attacked streams.
    """
    labeler = StreamingLabeler(lambda_bits, skip, quantizer, msb_bits)
    return [labeler.push(value) for value in extreme_values]
