"""Single-pass watermark embedding (paper Figs 3 and 5).

:class:`StreamWatermarker` is the production embedder: it consumes the
stream chunk-by-chunk through the finite window, identifies major
extremes, labels them, applies the selection criterion and hands the
characteristic subset to the configured bit-encoding strategy.  Quality
constraints (Sec 4.4) are consulted per alteration, with rollback.

Offline convenience: :func:`watermark_stream` runs the whole pipeline
over an in-memory array and returns ``(marked_values, report)``.

All values entering the embedder must already be normalized into
``(-0.5, 0.5)`` — see :class:`repro.streams.normalize.Normalizer`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.encoding_factory import build_encoding
from repro.core.extremes import Extreme
from repro.core.params import WatermarkParams
from repro.core.quality import Alteration, QualityMonitor
from repro.core.quantize import Quantizer
from repro.core.scanner import ScanCounters, StreamScanner
from repro.core.watermark import to_bits
from repro.errors import EncodingSearchExhausted, ParameterError
from repro.util.hashing import KeyedHasher


@dataclass
class EmbedReport:
    """Everything the rights owner should persist alongside the key.

    ``average_subset_size`` is the Sec-4.2 reference statistic the
    detector needs to estimate transform degrees from isolated segments;
    the alteration aggregates back the Sec-6.4 data-quality experiments.
    """

    counters: ScanCounters = field(default_factory=ScanCounters)
    embedded: int = 0
    search_failures: int = 0
    quality_rollbacks: int = 0
    total_search_iterations: int = 0
    altered_items: int = 0
    sum_abs_alteration: float = 0.0
    max_abs_alteration: float = 0.0

    @property
    def average_subset_size(self) -> float:
        """Reference ``|ξ(ε, δ)|`` average for degree estimation."""
        return self.counters.average_subset_size

    @property
    def eta_estimate(self) -> float:
        """Measured ``η(σ, δ)`` of the embedded stream."""
        return self.counters.eta_estimate

    @property
    def mean_abs_alteration(self) -> float:
        """Average absolute change per altered item."""
        if self.altered_items == 0:
            return 0.0
        return self.sum_abs_alteration / self.altered_items

    def summary(self) -> dict:
        """Flat dict for logging / EXPERIMENTS.md tables."""
        c = self.counters
        return {
            "items": c.items,
            "extremes": c.extremes_confirmed,
            "majors": c.majors,
            "selected": c.selected,
            "embedded": self.embedded,
            "warmup_skips": c.warmup_skips,
            "search_failures": self.search_failures,
            "quality_rollbacks": self.quality_rollbacks,
            "missed_evictions": c.missed_evictions,
            "eta_estimate": self.eta_estimate,
            "average_subset_size": self.average_subset_size,
            "altered_items": self.altered_items,
            "max_abs_alteration": self.max_abs_alteration,
        }


class StreamWatermarker(StreamScanner):
    """Streaming embedder: push chunks in, get watermarked chunks out.

    Parameters
    ----------
    watermark:
        Payload (text / bytes / bit string / bit list); see
        :func:`repro.core.watermark.to_bits`.
    key:
        Secret ``k1`` (bytes, str or int).
    params:
        :class:`WatermarkParams`; defaults are the Sec-6 reference setup.
    encoding:
        ``"multihash"`` (default), ``"initial"`` or ``"quadres"`` — or a
        pre-built strategy object.
    monitor:
        Optional :class:`QualityMonitor` with semantic constraints.
    require_labels:
        ``False`` disables the Sec-4.1 labeling (pure Sec-3.2 mode, used
        by the correlation-attack ablation).
    """

    def __init__(self, watermark, key, params: "WatermarkParams | None" = None,
                 encoding="multihash",
                 monitor: "QualityMonitor | None" = None,
                 require_labels: bool = True,
                 encoding_options: "dict | None" = None) -> None:
        self._wm_bits = to_bits(watermark)
        params = params or WatermarkParams()
        quantizer = Quantizer(params.value_bits, params.avg_extra_bits)
        hasher = key if isinstance(key, KeyedHasher) else KeyedHasher(key)
        super().__init__(params, quantizer, hasher, len(self._wm_bits),
                         require_labels=require_labels)
        self._encoding = build_encoding(encoding, params, quantizer, hasher,
                                        **(encoding_options or {}))
        self._monitor = monitor
        self.report = EmbedReport(counters=self.counters)

    # ------------------------------------------------------------------
    @property
    def watermark_bits(self) -> list[bool]:
        """The payload being embedded (defensive copy)."""
        return list(self._wm_bits)

    def encoding_stats(self) -> dict:
        """Lifetime telemetry from the encoding strategy, if it keeps any.

        Pull-based observability hook (STATUS snapshots): encodings that
        track cumulative search/memo totals expose ``stats_snapshot()``;
        strategies without one report an empty dict.
        """
        snapshot = getattr(self._encoding, "stats_snapshot", None)
        return snapshot() if snapshot is not None else {}

    def restore_scan_state(self, state: dict) -> None:
        """Load a checkpoint and re-tie the report to the new counters.

        The base restore replaces ``self.counters`` with a fresh object;
        the embed report must keep aliasing it or its statistics would
        freeze at the checkpointed values while scanning continues.
        """
        super().restore_scan_state(state)
        self.report.counters = self.counters

    def _admit(self, value: float) -> None:
        if self._monitor is not None:
            self._monitor.admit(value)

    def _admit_chunk(self, values: np.ndarray) -> None:
        if self._monitor is not None:
            for value in values.tolist():
                self._monitor.admit(value)

    def _handle_selected(self, extreme: Extreme, window_values: np.ndarray,
                         local: int, start: int, end: int, label: int,
                         bit_index: int) -> float:
        pre_reference = self._reference_value(extreme, window_values,
                                              start, end)
        bit = self._wm_bits[bit_index]
        subset = window_values[start:end + 1]
        subset_values = subset.tolist()
        # Scalar quantization beats the array path here: subsets are a
        # dozen items, below the size where ufunc dispatch pays off.
        q_subset = self._quantizer.quantize_list(subset_values)
        try:
            outcome = self._encoding.embed(q_subset, local - start, label, bit)
        except EncodingSearchExhausted:
            self.report.search_failures += 1
            return pre_reference
        report = self.report
        report.total_search_iterations += outcome.iterations

        changed = [offset for offset, (old_q, new_q)
                   in enumerate(zip(q_subset, outcome.q_values))
                   if old_q != new_q]
        if not changed:
            report.embedded += 1
            return pre_reference
        dequantize = self._quantizer.dequantize
        if self._monitor is not None:
            alterations = [Alteration(index=extreme.subset_start + offset,
                                      old=subset_values[offset],
                                      new=dequantize(outcome.q_values[offset]))
                           for offset in changed]
            if not self._monitor.propose(alterations):
                report.quality_rollbacks += 1
                return pre_reference
            rewrites = [(a.index - extreme.subset_start, a.new)
                        for a in alterations]
        else:
            rewrites = [(offset, dequantize(outcome.q_values[offset]))
                        for offset in changed]
        for offset, new_value in rewrites:
            # `subset` is a live view into the window buffer, so this is
            # window.replace() at offset start+offset without per-item
            # bounds rechecks (the slice already established them).
            subset[offset] = new_value
            change = abs(new_value - subset_values[offset])
            report.sum_abs_alteration += change
            if change > report.max_abs_alteration:
                report.max_abs_alteration = change
        report.altered_items += len(rewrites)
        report.embedded += 1
        # Re-derive the reference from the committed (post-encoding)
        # window state: this is exactly what the detector will compute.
        post_window = self._window.values()
        return self._reference_value(extreme, post_window, start, end)


def watermark_stream(values, watermark, key,
                     params: "WatermarkParams | None" = None,
                     encoding="multihash",
                     monitor: "QualityMonitor | None" = None,
                     require_labels: bool = True,
                     encoding_options: "dict | None" = None,
                     chunk_size: int = 4096
                     ) -> tuple[np.ndarray, EmbedReport]:
    """Watermark an in-memory normalized stream (offline convenience).

    Returns ``(marked_values, report)``; the output has exactly the input
    length and differs from it only in the low ``alpha`` bits of items
    inside selected characteristic subsets.
    """
    array = np.asarray(values, dtype=np.float64).ravel()
    if array.size == 0:
        raise ParameterError("cannot watermark an empty stream")
    embedder = StreamWatermarker(watermark, key, params=params,
                                 encoding=encoding, monitor=monitor,
                                 require_labels=require_labels,
                                 encoding_options=encoding_options)
    marked = embedder.run(array, chunk_size=chunk_size)
    if marked.size != array.size:
        raise ParameterError(
            f"internal error: output size {marked.size} != input {array.size}"
        )
    return marked, embedder.report
