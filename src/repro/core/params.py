"""Watermarking parameters and their invariants.

The paper scatters its (mostly secret) parameters across Secs 2.2, 3.2,
4.1 and 4.3.  :class:`WatermarkParams` gathers them with the paper's
symbols documented next to each field, and enforces every stated
invariant at construction time:

========================  ======  ==============================================
field                     symbol  role
========================  ======  ==============================================
``value_bits``            b(x)    fixed-point width of a stream value
``msb_bits``              β       most-significant bits used for selection and
                                  label comparisons
``lsb_bits``              α       least-significant bits the encodings may alter
``sigma``                 σ       sampling degree a *major* extreme must survive
``delta``                 δ       characteristic-subset radius (normalized units)
``phi``                   φ       selection modulus; a fraction b(wm)/φ of major
                                  extremes carry bits
``lambda_bits``           λ       label bit-length (including the leading 1)
``skip``                  %       extreme-pair distance in the labeling scheme
``omega``                 ω       multi-hash convention width (bits of the hash
                                  that must match)
``window_size``           $       finite processing window, in items
``vote_threshold``        κ       |wm[i]^T - wm[i]^F| needed before a bit is
                                  declared (Sec 3.3's "distinguish this exact
                                  case" threshold)
========================  ======  ==============================================

Fields without a paper symbol are implementation knobs that the paper
leaves implicit (average-key precision, subset caps, the guaranteed-
resilience run length of the multi-hash active set, and the zigzag
prominence that stabilizes extreme detection on noisy data).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ParameterError


@dataclass(frozen=True)
class WatermarkParams:
    """Complete parameterization of the embedding/detection pipeline.

    Instances are immutable; use :meth:`with_updates` to derive variants
    (the benchmark harness does this for parameter sweeps).
    """

    # -- value representation ------------------------------------------------
    value_bits: int = 32
    msb_bits: int = 5
    lsb_bits: int = 16
    avg_extra_bits: int = 8

    # -- extremes and majorness ----------------------------------------------
    sigma: int = 3
    delta: float = 0.02
    prominence: float = 0.05
    majority_relaxation: float = 0.66

    # -- selection -------------------------------------------------------------
    phi: int = 2

    # -- labeling (Sec 4.1) ----------------------------------------------------
    lambda_bits: int = 16
    skip: int = 2
    label_msb_bits: int = 16

    # -- multi-hash encoding (Sec 4.3) ------------------------------------------
    omega: int = 1
    active_run_length: int = 6
    max_subset_embed: int = 12
    max_subset_detect: int = 16
    max_search_iterations: int = 200_000

    # -- stream processing ------------------------------------------------------
    window_size: int = 2048

    # -- robustness (the paper's Sec-4 "hysteresis" improvement) ---------------
    robust_extreme_value: bool = True
    recenter_extremes: bool = True

    # -- detection ----------------------------------------------------------------
    vote_threshold: int = 0

    def __post_init__(self) -> None:
        if not 8 <= self.value_bits <= 48:
            raise ParameterError(
                f"value_bits must be in [8, 48], got {self.value_bits}"
            )
        if self.msb_bits < 1:
            raise ParameterError(f"msb_bits must be >= 1, got {self.msb_bits}")
        if self.lsb_bits < 4:
            raise ParameterError(
                f"lsb_bits must be >= 4 (guard bits + payload + search room), "
                f"got {self.lsb_bits}"
            )
        if self.msb_bits + self.lsb_bits > self.value_bits:
            # Paper Sec 3.2: alpha + beta <= b(x); alterations in the low
            # alpha bits must never reach the beta selection bits.
            raise ParameterError(
                f"msb_bits + lsb_bits must not exceed value_bits "
                f"({self.msb_bits} + {self.lsb_bits} > {self.value_bits})"
            )
        if self.avg_extra_bits < 1 or self.value_bits + self.avg_extra_bits > 52:
            # Average keys are computed through IEEE doubles; the grid must
            # stay comfortably inside the 53-bit mantissa.
            raise ParameterError(
                "avg_extra_bits must be >= 1 and value_bits + avg_extra_bits "
                f"<= 52, got {self.avg_extra_bits}"
            )
        if self.sigma < 1:
            raise ParameterError(f"sigma must be >= 1, got {self.sigma}")
        if not 0.0 < self.delta < 0.5:
            raise ParameterError(f"delta must be in (0, 0.5), got {self.delta}")
        if self.delta >= 2.0 ** (-self.msb_bits) * 2.0:
            # Paper Sec 3.2: delta < 2^(b - beta) in quantized units, i.e.
            # all items of a characteristic subset share the same beta most
            # significant bits.  In normalized units (full range = 1.0) the
            # bound is 2^-beta; we allow a factor-2 slack because subset
            # members sit within +-delta of the extreme, spanning at most
            # two adjacent msb cells, which the voting detector tolerates.
            raise ParameterError(
                f"delta={self.delta} too large for msb_bits={self.msb_bits}; "
                f"require delta < 2 * 2^-msb_bits = {2.0 ** (-self.msb_bits) * 2:g} "
                "so characteristic subsets share their selection bits"
            )
        if not 0.0 < self.prominence < 1.0:
            raise ParameterError(
                f"prominence must be in (0, 1), got {self.prominence}"
            )
        if self.prominence <= self.delta:
            raise ParameterError(
                f"prominence ({self.prominence}) must exceed delta "
                f"({self.delta}); otherwise adjacent extremes' subsets merge"
            )
        if not 0.0 < self.majority_relaxation <= 1.0:
            raise ParameterError(
                "majority_relaxation must be in (0, 1], got "
                f"{self.majority_relaxation}"
            )
        if self.phi < 2:
            raise ParameterError(
                f"phi must be >= 2 (paper: phi > b(wm) >= 1), got {self.phi}"
            )
        if not 2 <= self.lambda_bits <= 48:
            raise ParameterError(
                f"lambda_bits must be in [2, 48], got {self.lambda_bits}"
            )
        if self.skip < 1:
            raise ParameterError(f"skip (%) must be >= 1, got {self.skip}")
        if not 1 <= self.label_msb_bits <= self.value_bits:
            # The paper uses a single beta for selection and labels; we
            # split them because the two uses want opposite granularity:
            # selection needs *coarse* cells (the recovered extreme must
            # land in the same cell after transforms) while label
            # comparisons need *fine* cells (an order comparison between
            # magnitudes, stable unless the order truly reverses).  The
            # paper's own parameter listing (beta = 16) corresponds to
            # the fine/label side.
            raise ParameterError(
                f"label_msb_bits must be in [1, value_bits], got "
                f"{self.label_msb_bits}"
            )
        if not 1 <= self.omega <= 16:
            raise ParameterError(f"omega must be in [1, 16], got {self.omega}")
        if self.active_run_length < 1:
            raise ParameterError(
                f"active_run_length must be >= 1, got {self.active_run_length}"
            )
        if self.max_subset_embed < 1:
            raise ParameterError(
                f"max_subset_embed must be >= 1, got {self.max_subset_embed}"
            )
        if self.max_subset_detect < self.max_subset_embed:
            raise ParameterError(
                "max_subset_detect must be >= max_subset_embed "
                f"({self.max_subset_detect} < {self.max_subset_embed})"
            )
        if self.max_search_iterations < 1:
            raise ParameterError(
                "max_search_iterations must be >= 1, got "
                f"{self.max_search_iterations}"
            )
        if self.window_size < 16:
            raise ParameterError(
                f"window_size must be >= 16, got {self.window_size}"
            )
        if not isinstance(self.robust_extreme_value, bool):
            raise ParameterError(
                "robust_extreme_value must be a bool, got "
                f"{self.robust_extreme_value!r}"
            )
        if not isinstance(self.recenter_extremes, bool):
            raise ParameterError(
                "recenter_extremes must be a bool, got "
                f"{self.recenter_extremes!r}"
            )
        if self.vote_threshold < 0:
            raise ParameterError(
                f"vote_threshold must be >= 0, got {self.vote_threshold}"
            )

    # ------------------------------------------------------------------
    @property
    def label_history(self) -> int:
        """Extremes that must be buffered before labels become defined.

        The label of extreme ``c`` compares values at ``c - k*skip`` for
        ``k = 0..lambda_bits-1`` (Sec 4.1), so ``skip * (lambda_bits - 1)``
        predecessors are needed.
        """
        return self.skip * (self.lambda_bits - 1)

    @property
    def payload_positions(self) -> int:
        """Bit positions available to the initial guarded encoding."""
        return self.lsb_bits - 2

    @property
    def max_alteration(self) -> float:
        """Largest normalized-value change any encoding can introduce.

        All encodings rewrite at most the ``lsb_bits`` low-order bits of a
        ``value_bits`` fixed-point word, so the change is bounded by
        ``2^(lsb_bits - value_bits)`` in normalized units.
        """
        return 2.0 ** (self.lsb_bits - self.value_bits)

    def selection_fraction(self, wm_length: int) -> float:
        """Fraction ``b(wm)/phi`` of major extremes that carry bits."""
        if wm_length < 1:
            raise ParameterError(f"wm_length must be >= 1, got {wm_length}")
        return min(1.0, wm_length / self.phi)

    def validate_for_watermark(self, wm_length: int) -> None:
        """Check the Sec-3.2 requirement ``phi > b(wm)``."""
        if wm_length < 1:
            raise ParameterError(f"watermark must have >= 1 bit, got {wm_length}")
        if self.phi <= wm_length:
            raise ParameterError(
                f"phi ({self.phi}) must exceed the watermark length "
                f"({wm_length}); paper Sec 3.2 requires "
                "phi in (b(wm), b(wm) + k2)"
            )

    def with_updates(self, **changes) -> "WatermarkParams":
        """Return a copy with ``changes`` applied (re-validated)."""
        return replace(self, **changes)
