"""Push-based streaming sessions with checkpoint/resume, and pipelines.

The paper's model is explicitly single-pass over an (almost) infinite
stream; this module is the library's production face for that model:

* :class:`ProtectionSession` — ``feed(chunk) -> marked chunk``: the
  rights owner pushes raw chunks in and forwards watermarked chunks
  downstream, never holding more than the finite window;
* :class:`DetectionSession` — ``feed(chunk)`` accumulates voting
  evidence incrementally; :meth:`DetectionSession.result` may be read
  at any moment (court evidence grows monotonically);
* :class:`Pipeline` — composes stages (a :class:`Normalizer`, sessions,
  registry-resolved transforms, plain callables) into one push-based
  chain with correct end-of-stream draining;
* **checkpoint/resume** — ``session.to_state()`` returns a plain
  JSON-compatible dict (window contents, zigzag continuation, label
  history, counters, voting buckets); ``Session.from_state(state, key)``
  rebuilds a session in another process/shard that continues the scan
  with *bit-identical* results.  The secret key is deliberately **not**
  part of the state: a leaked checkpoint must not leak the watermark.

Quickstart::

    session = ProtectionSession("101", key=b"k1")
    for chunk in chunks:
        forward(session.feed(chunk))
    state = session.to_state()            # migrate mid-stream ...
    session = ProtectionSession.from_state(state, key=b"k1")
    for chunk in more_chunks:
        forward(session.feed(chunk))
    forward(session.finish())
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Sequence

import numpy as np

from repro.core.detector import DetectionResult, StreamDetector
from repro.core.embedder import EmbedReport, StreamWatermarker
from repro.core.params import WatermarkParams
from repro.core.serialize import (
    params_from_dict,
    params_to_dict,
    report_from_dict,
    report_to_dict,
)
from repro.core.watermark import to_bits
from repro.errors import ParameterError, ReproError, SessionStateError
from repro.registry import REGISTRY
from repro.streams.normalize import Normalizer

_STATE_VERSION = 1
_EMPTY = np.asarray([], dtype=np.float64)

#: The exact top-level / config key sets each checkpoint kind may carry.
#: Unknown keys are rejected: a field this library does not understand
#: would otherwise be dropped silently, and a truncated or hand-edited
#: checkpoint must fail loudly rather than half-restore ("finished" and
#: "encoding_options" stay optional for backward compatibility).
_STATE_KEYS = {
    "protection-session": (frozenset({"format_version", "kind", "finished",
                                      "config", "scan", "report"}),
                           frozenset({"watermark_bits", "encoding",
                                      "encoding_options", "require_labels",
                                      "params"})),
    "detection-session": (frozenset({"format_version", "kind", "finished",
                                     "config", "scan", "votes"}),
                          frozenset({"wm_length", "encoding",
                                     "encoding_options", "require_labels",
                                     "transform_degree", "params"})),
}
_OPTIONAL_KEYS = frozenset({"finished", "encoding_options"})


def _check_state(state: dict, expected_kind: str) -> None:
    if not isinstance(state, dict):
        raise SessionStateError(
            f"session state must be a dict, got {type(state).__name__}"
        )
    if state.get("kind") != expected_kind:
        raise SessionStateError(
            f"expected state kind {expected_kind!r}, got {state.get('kind')!r}"
        )
    if "format_version" not in state:
        raise SessionStateError(
            "checkpoint has no format_version field (truncated or "
            "hand-edited state?)"
        )
    try:
        version = int(state["format_version"])
    except (TypeError, ValueError):
        raise SessionStateError(
            f"checkpoint format_version is not an integer: "
            f"{state['format_version']!r}"
        ) from None
    if version > _STATE_VERSION:
        raise SessionStateError(
            "checkpoint written by a newer library version "
            f"({state['format_version']} > {_STATE_VERSION})"
        )
    top_keys, config_keys = _STATE_KEYS[expected_kind]
    unknown = set(state) - top_keys
    if unknown:
        raise SessionStateError(
            f"unknown fields in {expected_kind} checkpoint: "
            f"{sorted(unknown)} (written by an incompatible producer?)"
        )
    missing = top_keys - _OPTIONAL_KEYS - set(state)
    if missing:
        raise SessionStateError(
            f"truncated {expected_kind} checkpoint: missing "
            f"{sorted(missing)}"
        )
    config = state["config"]
    if not isinstance(config, dict):
        raise SessionStateError(
            f"checkpoint config must be a dict, got {type(config).__name__}"
        )
    unknown = set(config) - config_keys
    if unknown:
        raise SessionStateError(
            f"unknown config fields in {expected_kind} checkpoint: "
            f"{sorted(unknown)}"
        )
    missing = config_keys - _OPTIONAL_KEYS - set(config)
    if missing:
        raise SessionStateError(
            f"truncated {expected_kind} checkpoint config: missing "
            f"{sorted(missing)}"
        )


@contextmanager
def _restore_guard(kind: str):
    """Convert stray restore-time errors into :class:`SessionStateError`.

    A malformed checkpoint must surface as a clean :mod:`repro.errors`
    exception at the API boundary — never a raw ``KeyError`` or
    ``TypeError`` from deep inside the scan-state plumbing.  Library
    errors (which already carry precise messages, e.g. the window
    capacity mismatch) pass through unchanged.
    """
    try:
        yield
    except ReproError:
        raise
    except (KeyError, TypeError, ValueError, AttributeError,
            IndexError) as exc:
        raise SessionStateError(
            f"malformed {kind} checkpoint: "
            f"{type(exc).__name__}: {exc}"
        ) from exc


class ProtectionSession:
    """Streaming watermark embedding as a push-based session.

    A thin, checkpointable facade over :class:`StreamWatermarker`:
    chunks go in via :meth:`feed`, watermarked chunks come out (delayed
    by at most the finite window), :meth:`finish` drains the tail.

    Parameters mirror :class:`StreamWatermarker`; ``encoding`` must be a
    registered encoding *name* for the session to be checkpointable
    (strategy objects cannot be serialized).
    """

    _KIND = "protection-session"

    def __init__(self, watermark, key, *,
                 params: "WatermarkParams | None" = None,
                 encoding: str = "multihash",
                 monitor=None,
                 require_labels: bool = True,
                 encoding_options: "dict | None" = None) -> None:
        self._params = params or WatermarkParams()
        self._encoding_name = encoding if isinstance(encoding, str) else None
        self._encoding_options = dict(encoding_options or {})
        self._require_labels = require_labels
        self._monitor = monitor
        self._embedder = StreamWatermarker(
            watermark, key, params=self._params, encoding=encoding,
            monitor=monitor, require_labels=require_labels,
            encoding_options=self._encoding_options)
        self._finished = False

    # ------------------------------------------------------------------
    @property
    def report(self) -> EmbedReport:
        """Live embedding report (counters update as chunks are fed)."""
        return self._embedder.report

    @property
    def items_ingested(self) -> int:
        """Total stream items fed into this session so far."""
        return self._embedder.counters.items

    @property
    def items_released(self) -> int:
        """Output items released so far (ingested minus window-held).

        Survives checkpoint/restore, so a resumed session reports the
        same output offset the original had at checkpoint time — the
        deduplication anchor for network redelivery
        (:mod:`repro.server`).
        """
        return self._embedder.counters.items - self._embedder.items_pending

    @property
    def watermark_bits(self) -> "list[bool]":
        """The payload being embedded (defensive copy)."""
        return self._embedder.watermark_bits

    def encoding_stats(self) -> dict:
        """Lifetime encoding search/memo telemetry (see
        :meth:`repro.core.embedder.StreamWatermarker.encoding_stats`)."""
        return self._embedder.encoding_stats()

    def feed(self, chunk) -> np.ndarray:
        """Push one chunk; return the watermarked items released so far."""
        if self._finished:
            raise ParameterError("session already finished; start a new one")
        return self._embedder.process(chunk)

    def finish(self) -> np.ndarray:
        """Signal end-of-stream; return the remaining watermarked items."""
        self._finished = True
        return self._embedder.finalize()

    # ------------------------------------------------------------------
    # checkpoint / resume
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """Serialize the session to a JSON-compatible checkpoint dict.

        The checkpoint holds configuration (parameters, encoding name,
        payload bits) and dynamic scan state — but **not** the secret
        key, which :meth:`from_state` requires again.
        """
        if self._encoding_name is None:
            raise SessionStateError(
                "sessions built around a strategy *object* cannot be "
                "checkpointed; use a registered encoding name"
            )
        if self._monitor is not None:
            raise SessionStateError(
                "sessions with a QualityMonitor attached cannot be "
                "checkpointed yet"
            )
        return {
            "format_version": _STATE_VERSION,
            "kind": self._KIND,
            "finished": self._finished,
            "config": {
                "watermark_bits": [int(b) for b in
                                   self._embedder.watermark_bits],
                "encoding": self._encoding_name,
                "encoding_options": dict(self._encoding_options),
                "require_labels": self._require_labels,
                "params": params_to_dict(self._params),
            },
            "scan": self._embedder.scan_state(),
            "report": report_to_dict(self._embedder.report),
        }

    @classmethod
    def from_state(cls, state: dict, key) -> "ProtectionSession":
        """Rebuild a session from :meth:`to_state` output plus the key.

        The resumed session continues the scan exactly where the
        checkpointed one stopped: fed the same remaining chunks, it
        produces a bit-identical watermarked stream (integration-tested
        against the uninterrupted run).
        """
        _check_state(state, cls._KIND)
        with _restore_guard(cls._KIND):
            config = state["config"]
            session = cls(to_bits([int(b) for b in
                                   config["watermark_bits"]]),
                          key,
                          params=params_from_dict(config["params"]),
                          encoding=config["encoding"],
                          require_labels=bool(config["require_labels"]),
                          encoding_options=config.get("encoding_options")
                          or {})
            session._embedder.restore_scan_state(state["scan"])
            session._embedder.report = report_from_dict(state["report"])
            # The scanner and its report share one counters object;
            # re-tie them after both restores so future updates stay in
            # sync.
            session._embedder.counters = session._embedder.report.counters
            session._finished = bool(state.get("finished", False))
        return session


class DetectionSession:
    """Streaming watermark detection as a push-based session.

    A checkpointable facade over :class:`StreamDetector`: feed the
    (possibly transformed) stream chunk-by-chunk and read the voting
    evidence at any time via :meth:`result`.  :meth:`feed` passes the
    scanned items through (window-delayed), so a detection session can
    sit inside a :class:`Pipeline` without consuming the stream.
    """

    _KIND = "detection-session"

    def __init__(self, wm_length, key, *,
                 params: "WatermarkParams | None" = None,
                 encoding: str = "multihash",
                 transform_degree: float = 1.0,
                 require_labels: bool = True,
                 encoding_options: "dict | None" = None) -> None:
        self._params = params or WatermarkParams()
        self._encoding_name = encoding if isinstance(encoding, str) else None
        self._encoding_options = dict(encoding_options or {})
        self._require_labels = require_labels
        self._transform_degree = float(transform_degree)
        self._detector = StreamDetector(
            wm_length, key, params=self._params, encoding=encoding,
            transform_degree=self._transform_degree,
            require_labels=require_labels,
            encoding_options=self._encoding_options)
        self._finished = False

    # ------------------------------------------------------------------
    @property
    def items_ingested(self) -> int:
        """Total stream items fed into this session so far."""
        return self._detector.counters.items

    @property
    def items_released(self) -> int:
        """Pass-through items released so far (ingested minus held)."""
        return self._detector.counters.items - self._detector.items_pending

    def encoding_stats(self) -> dict:
        """Lifetime encoding telemetry (probe memo counters; see
        :meth:`repro.core.detector.StreamDetector.encoding_stats`)."""
        return self._detector.encoding_stats()

    def feed(self, chunk) -> np.ndarray:
        """Push one chunk; return the scanned items (pass-through)."""
        if self._finished:
            raise ParameterError("session already finished; start a new one")
        return self._detector.process(chunk)

    def finish(self) -> np.ndarray:
        """Signal end-of-stream; return the remaining scanned items."""
        self._finished = True
        return self._detector.finalize()

    def result(self) -> DetectionResult:
        """Snapshot of the voting evidence accumulated so far."""
        return self._detector.result()

    # ------------------------------------------------------------------
    # checkpoint / resume
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """Serialize the session (scan state + voting buckets), key-free."""
        if self._encoding_name is None:
            raise SessionStateError(
                "sessions built around a strategy *object* cannot be "
                "checkpointed; use a registered encoding name"
            )
        return {
            "format_version": _STATE_VERSION,
            "kind": self._KIND,
            "finished": self._finished,
            "config": {
                "wm_length": self._detector.wm_length,
                "encoding": self._encoding_name,
                "encoding_options": dict(self._encoding_options),
                "require_labels": self._require_labels,
                "transform_degree": self._transform_degree,
                "params": params_to_dict(self._params),
            },
            "scan": self._detector.scan_state(),
            "votes": self._detector.vote_state(),
        }

    @classmethod
    def from_state(cls, state: dict, key) -> "DetectionSession":
        """Rebuild a session from :meth:`to_state` output plus the key.

        Resumed detection is bit-identical: the per-bit bias of the
        final :class:`DetectionResult` equals the uninterrupted run's.
        """
        _check_state(state, cls._KIND)
        with _restore_guard(cls._KIND):
            config = state["config"]
            session = cls(int(config["wm_length"]), key,
                          params=params_from_dict(config["params"]),
                          encoding=config["encoding"],
                          transform_degree=float(config["transform_degree"]),
                          require_labels=bool(config["require_labels"]),
                          encoding_options=config.get("encoding_options")
                          or {})
            session._detector.restore_scan_state(state["scan"])
            session._detector.restore_vote_state(state["votes"])
            session._finished = bool(state.get("finished", False))
        return session


#: Checkpoint ``kind`` tag -> session class, for kind-dispatched restore.
_SESSION_KINDS = {
    ProtectionSession._KIND: ProtectionSession,
    DetectionSession._KIND: DetectionSession,
}


def session_from_state(state: dict, key):
    """Rebuild whichever session type ``state`` was checkpointed from.

    Dispatches on the checkpoint's ``kind`` tag to
    :meth:`ProtectionSession.from_state` or
    :meth:`DetectionSession.from_state` — the restore entry point for
    callers (like :class:`repro.hub.StreamHub`) that recover a mixed
    population of sessions from one store.
    """
    if not isinstance(state, dict):
        raise SessionStateError(
            f"session state must be a dict, got {type(state).__name__}"
        )
    kind = state.get("kind")
    cls = _SESSION_KINDS.get(kind)
    if cls is None:
        raise SessionStateError(
            f"unknown session kind {kind!r}; expected one of "
            f"{sorted(_SESSION_KINDS)}"
        )
    return cls.from_state(state, key)


# ----------------------------------------------------------------------
# pipeline stages
# ----------------------------------------------------------------------
class FunctionStage:
    """Stateless stage: apply ``func`` to every chunk independently.

    Suitable for per-item maps and for rate-reducing transforms whose
    chunkwise application approximates the offline transform (e.g.
    sampling); it holds no state, so it drains nothing at end-of-stream.
    """

    def __init__(self, func: Callable, name: "str | None" = None) -> None:
        if not callable(func):
            raise ParameterError(f"stage function {func!r} is not callable")
        self._func = func
        self.name = name or getattr(func, "__name__", "function")

    def feed(self, chunk) -> np.ndarray:
        """Apply the wrapped function to one chunk."""
        return np.asarray(self._func(np.asarray(chunk, dtype=np.float64)),
                          dtype=np.float64)

    def finish(self) -> np.ndarray:
        """Stateless stages hold nothing back."""
        return _EMPTY

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FunctionStage({self.name})"


class TransformStage(FunctionStage):
    """Registry-resolved transform applied chunk-by-chunk.

    ``TransformStage("summarize", degree=5)`` builds the registered
    ``summarize`` transform and applies it per chunk.  Attack names
    resolve too, so adversarial pipelines read the same way.
    """

    def __init__(self, name: str, **options) -> None:
        registration = REGISTRY.find(name, kinds=("transform", "attack"))
        super().__init__(registration.obj(**options), name=registration.name)


class NormalizeStage:
    """Normalization (or denormalization) as a pipeline stage."""

    def __init__(self, normalizer: Normalizer,
                 direction: str = "normalize") -> None:
        if direction not in ("normalize", "denormalize"):
            raise ParameterError(
                f"direction must be 'normalize' or 'denormalize', "
                f"got {direction!r}"
            )
        self._normalizer = normalizer
        self._apply = (normalizer.normalize if direction == "normalize"
                       else normalizer.denormalize)
        self.name = direction

    def feed(self, chunk) -> np.ndarray:
        """Map one chunk between physical and normalized units."""
        return np.asarray(self._apply(chunk), dtype=np.float64)

    def finish(self) -> np.ndarray:
        """Normalization is stateless; nothing to drain."""
        return _EMPTY


class _ScannerStage:
    """Adapter giving raw scanners (process/finalize) the stage protocol."""

    def __init__(self, scanner) -> None:
        self._scanner = scanner
        self.name = type(scanner).__name__

    def feed(self, chunk) -> np.ndarray:
        """Delegate to the scanner's ``process``."""
        return self._scanner.process(chunk)

    def finish(self) -> np.ndarray:
        """Delegate to the scanner's ``finalize``."""
        return self._scanner.finalize()


class Pipeline:
    """Composable push-based chain of streaming stages.

    Stages are composed left-to-right; each chunk fed to the pipeline
    flows through every stage, and :meth:`finish` drains each stage's
    residue *through the remaining stages*, so windowed stages (the
    sessions) release their tails in order.

    Accepted stage forms, normalized automatically:

    * anything with ``feed``/``finish`` (sessions, other pipelines);
    * a :class:`Normalizer` (wrapped into :class:`NormalizeStage`);
    * a raw :class:`StreamWatermarker`/:class:`StreamDetector` (wrapped);
    * any plain ``values -> values`` callable (wrapped into
      :class:`FunctionStage`).

    >>> import numpy as np
    >>> from repro.pipeline import Pipeline, ProtectionSession
    >>> session = ProtectionSession("1", b"k")
    >>> pipeline = Pipeline([session])
    >>> _ = pipeline.feed(np.zeros(4)); tail = pipeline.finish()
    """

    def __init__(self, stages: Sequence) -> None:
        if not stages:
            raise ParameterError("Pipeline requires at least one stage")
        self._stages = [self._as_stage(stage) for stage in stages]

    @staticmethod
    def _as_stage(obj):
        if hasattr(obj, "feed") and hasattr(obj, "finish"):
            return obj
        if isinstance(obj, Normalizer):
            return NormalizeStage(obj)
        if hasattr(obj, "process") and hasattr(obj, "finalize"):
            return _ScannerStage(obj)
        if callable(obj):
            return FunctionStage(obj)
        raise ParameterError(
            f"object {obj!r} is not a pipeline stage (needs feed/finish, "
            "process/finalize, a Normalizer, or a callable)"
        )

    @property
    def stage_names(self) -> "list[str]":
        """Human-readable stage names, in flow order."""
        return [getattr(stage, "name", type(stage).__name__)
                for stage in self._stages]

    def feed(self, chunk) -> np.ndarray:
        """Push one chunk through every stage; return the final output."""
        out = np.asarray(chunk, dtype=np.float64)
        for stage in self._stages:
            out = np.asarray(stage.feed(out), dtype=np.float64)
        return out

    def finish(self) -> np.ndarray:
        """Drain every stage in order, cascading tails downstream."""
        tail = _EMPTY
        for stage in self._stages:
            fed = (np.asarray(stage.feed(tail), dtype=np.float64)
                   if tail.size else _EMPTY)
            drained = np.asarray(stage.finish(), dtype=np.float64)
            tail = np.concatenate([fed, drained]) if fed.size else drained
        return tail

    def run(self, values, chunk_size: int = 4096) -> np.ndarray:
        """Offline convenience: stream an array through the pipeline."""
        array = np.asarray(values, dtype=np.float64).ravel()
        if chunk_size < 1:
            raise ParameterError(f"chunk_size must be >= 1, got {chunk_size}")
        pieces = [self.feed(array[start:start + chunk_size])
                  for start in range(0, array.size, chunk_size)]
        pieces.append(self.finish())
        return np.concatenate(pieces) if pieces else _EMPTY

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Pipeline({' -> '.join(self.stage_names)})"
