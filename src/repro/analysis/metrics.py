"""Measurement helpers behind the Sec-6 experiment figures.

* **label alteration %** (Figs 6, 8) — how many extreme labels change
  between an original stream and its attacked/transformed version;
* **detected watermark bias** (Figs 7, 9, 10) — the net vote count from
  a :class:`DetectionResult`;
* **mean/std drift** (Sec 6.4) — the data-quality impact of embedding.
"""

from __future__ import annotations

import numpy as np

from repro.core.detector import DetectionResult
from repro.core.extremes import find_major_extremes
from repro.core.labels import labels_for_extreme_values
from repro.core.params import WatermarkParams
from repro.core.quantize import Quantizer
from repro.errors import ParameterError
from repro.util.validation import as_float_array


def major_extreme_labels(values, params: WatermarkParams,
                         lambda_bits: "int | None" = None,
                         effective_sigma: "int | None" = None,
                         use_robust_reference: "bool | None" = None
                         ) -> "list[int | None]":
    """Labels of every major extreme of a stream, in order.

    ``lambda_bits`` overrides the label size (the x-axis of Fig 8(a));
    ``effective_sigma`` overrides majorness (Sec-4.2 adjustment when the
    stream is known to be transformed); ``use_robust_reference`` chooses
    between the pipeline's hysteresis-robust subset-mean references and
    the paper's bare extreme values (default: follow ``params``).
    """
    return [label for _, label in labeled_major_extremes(
        values, params, lambda_bits=lambda_bits,
        effective_sigma=effective_sigma,
        use_robust_reference=use_robust_reference)]


def labeled_major_extremes(values, params: WatermarkParams,
                           lambda_bits: "int | None" = None,
                           effective_sigma: "int | None" = None,
                           use_robust_reference: "bool | None" = None
                           ) -> "list[tuple[int, int | None]]":
    """(stream index, label) for every major extreme, in order.

    The index enables *aligned* label comparison across attacked or
    transformed copies, where insertions/deletions shift the extreme
    sequence (see :func:`label_alteration_aligned`).
    """
    array = as_float_array(values, "values")
    quantizer = Quantizer(params.value_bits, params.avg_extra_bits)
    sigma = effective_sigma if effective_sigma is not None else params.sigma
    robust = params.robust_extreme_value if use_robust_reference is None \
        else use_robust_reference
    majors = find_major_extremes(array, params.prominence, params.delta,
                                 sigma, params.majority_relaxation)
    if not majors:
        return []
    if robust:
        extreme_values = [
            float(np.mean(array[e.subset_start:e.subset_end + 1]))
            for e in majors]
    else:
        extreme_values = [e.value for e in majors]
    labels = labels_for_extreme_values(
        extreme_values,
        lambda_bits if lambda_bits is not None else params.lambda_bits,
        params.skip, quantizer, params.label_msb_bits)
    return list(zip((e.index for e in majors), labels))


def label_alteration_aligned(original: "list[tuple[int, int | None]]",
                             attacked: "list[tuple[int, int | None]]",
                             index_scale: float = 1.0,
                             tolerance: "float | None" = None) -> float:
    """Fraction of original labels not recovered, aligned by position.

    Each original major extreme is matched to the nearest attacked one
    within ``tolerance`` original-stream items (``index_scale`` maps
    attacked indices back to original coordinates, e.g. the transform
    degree for sampled/summarized streams).  A missing counterpart or a
    differing label counts as altered; warm-up (``None``) originals are
    skipped.  Defaults the tolerance to a quarter of the average
    extreme spacing.
    """
    defined = [(idx, label) for idx, label in original if label is not None]
    if not defined:
        raise ParameterError("original stream produced no defined labels")
    if tolerance is None:
        if len(original) > 1:
            spacing = (original[-1][0] - original[0][0]) / (len(original) - 1)
        else:
            spacing = 16.0
        tolerance = max(4.0, 0.25 * spacing)
    rescaled = [(index_scale * idx, label) for idx, label in attacked]
    altered = 0
    for idx, label in defined:
        candidates = [(abs(a_idx - idx), a_label)
                      for a_idx, a_label in rescaled
                      if abs(a_idx - idx) <= tolerance]
        if not candidates:
            altered += 1
            continue
        _, best_label = min(candidates, key=lambda pair: pair[0])
        if best_label != label:
            altered += 1
    return altered / len(defined)


def label_alteration_fraction(original_labels: "list[int | None]",
                              attacked_labels: "list[int | None]"
                              ) -> float:
    """Fraction of labels that differ, position-aligned (Figs 6, 8).

    The k-th label of the original extreme sequence is compared with the
    k-th label of the attacked sequence; a missing counterpart (the
    attack created or destroyed extremes) counts as an alteration, since
    detection would mis-label from that point until re-synchronization.
    Warm-up (``None``) positions present on both sides are skipped.
    """
    if not original_labels:
        raise ParameterError("original stream produced no labels")
    n = len(original_labels)
    altered = 0
    compared = 0
    for k in range(n):
        original = original_labels[k]
        attacked = attacked_labels[k] if k < len(attacked_labels) else None
        if original is None and attacked is None:
            continue
        compared += 1
        if original != attacked:
            altered += 1
    if compared == 0:
        return 0.0
    return altered / compared


def detected_bias(result: DetectionResult, bit_index: int = 0) -> int:
    """The figures' y-axis: net votes toward "true" for one bit."""
    return result.bias(bit_index)


def stream_stat_drift(original, marked) -> dict:
    """Mean/std impact of watermarking (Sec 6.4's data-quality metrics).

    Returns absolute drifts plus drifts relative to the original standard
    deviation (the scale-free form the paper's percentages correspond to
    on a normalized stream).
    """
    a = as_float_array(original, "original")
    b = as_float_array(marked, "marked")
    if a.size != b.size:
        raise ParameterError(
            f"streams differ in length ({a.size} vs {b.size})"
        )
    mean_a, mean_b = float(np.mean(a)), float(np.mean(b))
    std_a, std_b = float(np.std(a)), float(np.std(b))
    scale = std_a if std_a > 0 else 1.0
    return {
        "mean_original": mean_a,
        "mean_marked": mean_b,
        "mean_drift_abs": abs(mean_b - mean_a),
        "mean_drift_rel": abs(mean_b - mean_a) / scale,
        "std_original": std_a,
        "std_marked": std_b,
        "std_drift_abs": abs(std_b - std_a),
        "std_drift_rel": abs(std_b - std_a) / scale,
        "max_item_change": float(np.max(np.abs(a - b))),
    }
