"""Analysis helpers: Sec-5 attack mathematics and experiment metrics."""

from repro.analysis.attack_math import (
    altered_pair_count,
    attack_success_probability,
    extra_data_fraction,
    prob_all_removed,
    weakening_factor,
)
from repro.analysis.metrics import (
    detected_bias,
    label_alteration_aligned,
    label_alteration_fraction,
    labeled_major_extremes,
    major_extreme_labels,
    stream_stat_drift,
)

__all__ = [
    "altered_pair_count",
    "attack_success_probability",
    "extra_data_fraction",
    "prob_all_removed",
    "weakening_factor",
    "detected_bias",
    "label_alteration_aligned",
    "label_alteration_fraction",
    "labeled_major_extremes",
    "major_extreme_labels",
    "stream_stat_drift",
]
