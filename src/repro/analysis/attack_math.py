"""Closed-form vulnerability analysis of the Sec-5 attack model.

Mallory alters every ``a1``-th extreme, touching a ratio ``a2`` of the
items in its characteristic subset (informed case: radius a3 = δ).  The
paper derives:

* ``c_m = (1/2)·a·a2·(2a - a·a2 + 1)`` — sub-range averages ``m_ij``
  destroyed per attacked extreme (altering ``a·a2`` of ``a`` items kills
  every run containing an altered item);
* the encoding *weakening*: destroyed averages over the total
  ``a(a+1)/2``, scaled by the attacked-extreme ratio;
* ``P(x+t, x, y) = C(y-x, t) / C(y, x+t)`` — sampling-without-replacement
  probability that ``x+t`` removals from ``y`` averages obliterate all
  ``x`` *active* ones (the paper's bowl-of-balls experiment);
* the detection-cost consequence: seeing ``a1 · P`` more stream data
  restores equal convince-ability (the paper's worked example:
  a1=5, a=6, a4=50%, a2=50% → P(15, 10, 21) ≈ 0.85%, ≈ 4.25% more data).

All formulas follow the paper as printed; where the printed algebra is
ambiguous (the a1-vs-1/a1 factor in the weakening expression) we
implement the form consistent with the paper's numeric example and note
it in the docstring.
"""

from __future__ import annotations

import math

from repro.errors import ParameterError


def altered_pair_count(subset_size: int, a2: float) -> float:
    """``c_m``: sub-range averages destroyed per attacked extreme.

    >>> altered_pair_count(6, 0.5)
    15.0
    """
    if subset_size < 1:
        raise ParameterError(f"subset_size must be >= 1, got {subset_size}")
    if not 0.0 < a2 <= 1.0:
        raise ParameterError(f"a2 must be in (0, 1], got {a2}")
    a = subset_size
    return 0.5 * a * a2 * (2 * a - a * a2 + 1)


def weakening_factor(a1: int, subset_size: int, a2: float) -> float:
    """Fraction of the encoding's evidence destroyed stream-wide.

    Per attacked extreme the destroyed ratio is ``c_m · 2 / (a(a+1))``;
    one in ``a1`` bit-carrying extremes is attacked, so the overall
    factor divides by ``a1``.  (The paper's text prints a multiplication
    by ``a1`` where its own example and the surrounding derivation
    require the attacked-extreme *fraction* ``1/a1``; we implement the
    consistent form.)
    """
    if a1 < 2:
        raise ParameterError(f"a1 must be > 1, got {a1}")
    a = subset_size
    cm = altered_pair_count(subset_size, a2)
    per_extreme = cm * 2.0 / (a * (a + 1))
    return per_extreme / a1


def prob_all_removed(removals: int, active: int, total: int) -> float:
    """``P(x+t, x, y) = C(y-x, t) / C(y, x+t)``.

    Probability that ``removals`` random draws (without replacement) from
    ``total`` averages hit *all* ``active`` ones.

    >>> round(prob_all_removed(15, 10, 21), 6)   # paper: ~0.85%
    0.008514
    """
    if total < 1:
        raise ParameterError(f"total must be >= 1, got {total}")
    if not 0 <= active <= total:
        raise ParameterError(f"active must be in [0, total], got {active}")
    if not 0 <= removals <= total:
        raise ParameterError(
            f"removals must be in [0, total], got {removals}"
        )
    if removals < active:
        return 0.0
    t = removals - active
    return math.comb(total - active, t) / math.comb(total, removals)


def attack_success_probability(subset_size: int, a2: float,
                               active_ratio: float) -> float:
    """End-to-end Sec-5 composition for one attacked extreme.

    Combines ``c_m`` removals against ``a4 = active_ratio`` of the
    ``a(a+1)/2`` averages: the probability the attack deletes the
    extreme's entire watermark bit.

    >>> p = attack_success_probability(6, 0.5, 0.5)
    >>> round(p, 4)
    0.0085
    """
    if not 0.0 < active_ratio <= 1.0:
        raise ParameterError(
            f"active_ratio must be in (0, 1], got {active_ratio}"
        )
    a = subset_size
    total = a * (a + 1) // 2
    active = int(round(active_ratio * total))
    removals = int(round(altered_pair_count(subset_size, a2)))
    removals = min(removals, total)
    return prob_all_removed(removals, active, total)


def extra_data_fraction(a1: int, success_probability: float) -> float:
    """Extra stream data needed for an equally convincing proof.

    The paper's bottom line: "we need to see ``a1 · P(x+t, x, y)`` more
    stream data to be able to provide an equally convincing proof in
    court" (worked example: 5 · 0.85% ≈ 4.25%).
    """
    if a1 < 2:
        raise ParameterError(f"a1 must be > 1, got {a1}")
    if not 0.0 <= success_probability <= 1.0:
        raise ParameterError(
            f"success_probability must be in [0, 1], got "
            f"{success_probability}"
        )
    return a1 * success_probability
