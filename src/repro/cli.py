"""Command-line interface: ``python -m repro <command>`` (or ``repro``).

A thin, scriptable wrapper over the library for the Fig-1 workflow:

* ``embed``   — watermark a CSV stream file;
* ``detect``  — detect a watermark in a (possibly transformed) CSV file;
* ``attack``  — apply a named transform/attack (for experimentation);
* ``info``    — stream statistics relevant to parameter tuning
  (measured η(σ, δ), extremes, subset sizes);
* ``list``    — enumerate every registered component (encodings,
  transforms, attacks, generators);
* ``hub``     — multi-tenant streaming: ``hub embed`` watermarks many
  CSV streams through one :class:`repro.hub.StreamHub` with durable
  checkpoints, ``hub resume`` recovers a crashed run from the store and
  completes it, ``hub status`` inspects a store's checkpoints;
* ``serve``   — expose StreamHub tenants over the framed TCP protocol
  (:mod:`repro.server`): credit-based flow control, durable per-tenant
  stores, graceful SIGTERM drain, ``--recover`` restart;
* ``remote``  — client side of ``serve``: ``remote embed`` / ``remote
  detect`` run the embed/detect workflows against a remote server with
  transparent reconnect-and-resume;
* ``status``  — query a serving endpoint's STATUS snapshot (server
  counters, per-tenant stream stats, metrics registry) over any
  transport x wire combination;
* ``loadgen`` — churn load generator: N concurrent clients connect,
  push, crash and resume against a server (spawned in-process by
  default), reporting a latency histogram and verifying exactly-once
  delivery under churn;
* ``supervise`` — run ``repro serve`` as a supervised child process:
  non-zero exits restart it with ``--recover`` under exponential
  backoff (with a crash-loop circuit breaker), SIGTERM is forwarded
  for a clean drain (:mod:`repro.chaos.supervisor`).

``serve --chaos plan.json`` and ``loadgen --chaos plan.json`` inject
deterministic faults from a :class:`repro.chaos.FaultPlan` file
(server/store/process faults and client transport faults
respectively); ``remote`` and ``loadgen`` accept ``--retry-*`` flags
shaping the client's :class:`repro.chaos.RetryPolicy`.

All component names — encoding choices, attack/transform kinds — resolve
through the central :class:`repro.registry.ComponentRegistry`; a newly
registered component is immediately usable here without editing this
module.

Values are exchanged as single-column CSV (see ``repro.streams.io``);
the secret key is taken from ``--key`` or the ``REPRO_KEY`` environment
variable.  Streams must be pre-normalized into (-0.5, 0.5) unless
``--normalize lo:hi`` is given.
"""

from __future__ import annotations

import argparse
import inspect
import json
import os
import sys

import numpy as np

from repro.core.detector import detect_watermark
from repro.core.embedder import watermark_stream
from repro.core.extremes import average_subset_size, estimate_eta, find_major_extremes
from repro.core.params import WatermarkParams
from repro.errors import ReproError
from repro.registry import REGISTRY
from repro.streams.io import load_stream_csv, save_stream_csv
from repro.streams.normalize import Normalizer


def add_retry_flags(p: argparse.ArgumentParser) -> None:
    """The ``--retry-*`` knobs shared by ``remote`` and ``loadgen``.

    Defaults are ``None`` so :func:`_retry_policy` can tell "flag not
    given" (use the client SDK's default policy) from an explicit value.
    """
    p.add_argument("--retry-attempts", type=int, default=None,
                   metavar="N",
                   help="dial attempts per reconnect cycle "
                        "(default: the SDK policy, 40)")
    p.add_argument("--retry-base-delay", type=float, default=None,
                   metavar="SECONDS",
                   help="first backoff cap; doubles per attempt with "
                        "full jitter (default 0.05)")
    p.add_argument("--retry-max-delay", type=float, default=None,
                   metavar="SECONDS",
                   help="backoff ceiling (default 2)")
    p.add_argument("--retry-deadline", type=float, default=None,
                   metavar="SECONDS",
                   help="overall wall-clock budget per reconnect cycle "
                        "(default 60)")
    p.add_argument("--retry-op-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="per-operation read timeout; a server silent "
                        "longer counts as a lost connection "
                        "(default 30)")


def _retry_policy(args):
    """A :class:`repro.chaos.RetryPolicy` from ``--retry-*`` flags, or
    ``None`` when no flag was given (the SDK default applies)."""
    values = {name: getattr(args, f"retry_{name}", None)
              for name in ("attempts", "base_delay", "max_delay",
                           "deadline", "op_timeout")}
    if all(value is None for value in values.values()):
        return None
    from repro.chaos.retry import RetryPolicy
    defaults = RetryPolicy()
    return RetryPolicy(**{name: (getattr(defaults, name)
                                 if value is None else value)
                          for name, value in values.items()})


def _fault_injector(args, *, log_attr: str = "chaos_log"):
    """Build a :class:`repro.chaos.FaultInjector` from ``--chaos`` (and
    ``--chaos-log``), or ``None`` when chaos is off."""
    plan_path = getattr(args, "chaos", None)
    if plan_path is None:
        return None
    from repro.chaos import FaultInjector, FaultPlan
    return FaultInjector(FaultPlan.load(plan_path),
                         log_path=getattr(args, log_attr, None))


def _build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Resilient watermarking for sensor streams "
                    "(Sion/Atallah/Prabhakar, VLDB 2004 reproduction)")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser, needs_key: bool) -> None:
        p.add_argument("input", help="input CSV stream (one value per row)")
        if needs_key:
            p.add_argument("--key", default=os.environ.get("REPRO_KEY"),
                           help="secret key (default: $REPRO_KEY)")
        p.add_argument("--normalize", metavar="LO:HI", default=None,
                       help="physical range to normalize from, e.g. 0:35")
        p.add_argument("--params", metavar="JSON", default=None,
                       help='WatermarkParams overrides, e.g. '
                            '\'{"phi": 9, "delta": 0.01}\'')

    encodings = REGISTRY.names("encoding")

    embed = sub.add_parser("embed", help="watermark a stream file")
    add_common(embed, needs_key=True)
    embed.add_argument("output", help="output CSV path")
    embed.add_argument("--watermark", default="1",
                       help="payload: bit string or text (default '1')")
    embed.add_argument("--encoding", default="multihash", choices=encodings)

    detect = sub.add_parser("detect", help="detect a watermark")
    add_common(detect, needs_key=True)
    detect.add_argument("--bits", type=int, default=1,
                        help="payload length in bits (default 1)")
    detect.add_argument("--encoding", default="multihash", choices=encodings)
    detect.add_argument("--degree", type=float, default=1.0,
                        help="known transform degree rho (default 1)")
    detect.add_argument("--expect", default=None,
                        help="expected payload to score against")
    detect.add_argument("--workers", type=int, default=None,
                        help="processes for span-parallel detection "
                             "(vote buckets merge exactly; default serial)")
    detect.add_argument("--spans", type=int, default=None,
                        help="contiguous stream spans to scan "
                             "independently (default: one per worker)")

    attack = sub.add_parser("attack", help="apply a transform/attack")
    add_common(attack, needs_key=False)
    attack.add_argument("output", help="output CSV path")
    attack.add_argument("--kind", required=True, metavar="NAME",
                        help="registered attack or transform name "
                             "(see `repro list`); 'sample' accepts "
                             "--degree, 'epsilon' accepts --tau/--epsilon, "
                             "...")
    attack.add_argument("--degree", type=int, default=2,
                        help="degree for sample/summarize")
    attack.add_argument("--length", type=int, default=None,
                        help="segment length (segment)")
    attack.add_argument("--tau", type=float, default=0.1,
                        help="altered fraction (epsilon)")
    attack.add_argument("--epsilon", type=float, default=0.1,
                        help="alteration amplitude (epsilon)")
    attack.add_argument("--fraction", type=float, default=None,
                        help="inserted fraction (additive) or kept "
                             "fraction (segment)")
    attack.add_argument("--scale", type=float, default=1.0,
                        help="multiplier (linear)")
    attack.add_argument("--offset", type=float, default=0.0,
                        help="additive shift (linear)")
    attack.add_argument("--seed", type=int, default=None)

    info = sub.add_parser("info", help="stream statistics for tuning")
    add_common(info, needs_key=False)

    list_parser = sub.add_parser(
        "list", help="enumerate registered components")
    list_parser.add_argument("--kind", default=None,
                             choices=REGISTRY.KINDS,
                             help="restrict to one component kind")
    list_parser.add_argument("--json", action="store_true",
                             help="machine-readable output")

    hub = sub.add_parser(
        "hub", help="multi-tenant streaming hub with durable checkpoints")
    hub_sub = hub.add_subparsers(dest="hub_command", required=True)

    def add_hub_streams(p: argparse.ArgumentParser) -> None:
        p.add_argument("store", help="checkpoint store directory")
        p.add_argument("--stream", action="append", required=True,
                       metavar="ID=IN.csv=OUT.csv", dest="streams",
                       help="one stream: id, input CSV, output CSV "
                            "(repeatable)")
        p.add_argument("--key", default=os.environ.get("REPRO_KEY"),
                       help="secret key shared by the listed streams "
                            "(default: $REPRO_KEY)")
        p.add_argument("--chunk", type=int, default=500,
                       help="items per push (default 500)")
        p.add_argument("--params", metavar="JSON", default=None,
                       help="WatermarkParams overrides")

    hub_embed = hub_sub.add_parser(
        "embed", help="watermark many streams, checkpointing to a store")
    add_hub_streams(hub_embed)
    hub_embed.add_argument("--watermark", default="1",
                           help="payload embedded in every stream "
                                "(default '1')")
    hub_embed.add_argument("--encoding", default="multihash",
                           choices=encodings)
    hub_embed.add_argument("--checkpoint-every", type=int, default=1,
                           help="checkpoint a stream every N pushes "
                                "(default 1)")
    hub_embed.add_argument("--max-live", type=int, default=None,
                           help="LRU-evict idle sessions beyond this "
                                "count to the store")
    hub_embed.add_argument("--stop-after", type=int, default=None,
                           metavar="BATCHES",
                           help="stop (simulating a crash) after this "
                                "many pushes, leaving the store as the "
                                "only survivor")

    hub_resume = hub_sub.add_parser(
        "resume", help="recover a crashed hub run from its store and "
                       "finish it")
    add_hub_streams(hub_resume)

    hub_status = hub_sub.add_parser(
        "status", help="inspect a checkpoint store")
    hub_status.add_argument("store", help="checkpoint store directory")
    hub_status.add_argument("--json", action="store_true",
                            help="machine-readable output: one JSON "
                                 "object per stream per line")

    serve = sub.add_parser(
        "serve", help="serve StreamHub tenants over a framed transport")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=7707,
                       help="bind port; 0 picks a free one (default 7707)")
    serve.add_argument("--transport", default="tcp", metavar="NAME",
                       help="registered transport to listen on "
                            "(see `repro list`; default 'tcp')")
    serve.add_argument("--wire", default="binary", metavar="NAME",
                       help="newest wire codec granted at HELLO "
                            "negotiation: 'json' or 'binary' "
                            "(default 'binary'; clients may always "
                            "negotiate down)")
    serve.add_argument("--store", default=None,
                       help="root directory for durable per-tenant "
                            "checkpoint stores (default: in-memory)")
    serve.add_argument("--store-backend", default="directory",
                       metavar="NAME",
                       help="registered store backend used with --store "
                            "(see `repro list`; default 'directory')")
    serve.add_argument("--credits", type=int, default=4,
                       help="outstanding PUSH frames granted per stream "
                            "(default 4)")
    serve.add_argument("--checkpoint-every", type=int, default=1,
                       help="checkpoint a stream every N pushes "
                            "(default 1)")
    serve.add_argument("--checkpoint-interval", type=float, default=None,
                       metavar="SECONDS",
                       help="also checkpoint all streams on this "
                            "wall-clock period")
    serve.add_argument("--max-live", type=int, default=None,
                       help="LRU-evict idle sessions beyond this count")
    serve.add_argument("--recover", action="store_true",
                       help="start over a non-empty store and resume its "
                            "checkpointed streams as clients reconnect")
    serve.add_argument("--status-interval", type=float, default=None,
                       metavar="SECONDS",
                       help="log a JSON status snapshot line on this "
                            "wall-clock period")
    serve.add_argument("--json", action="store_true",
                       help="strict machine-readable lifecycle output: "
                            "one JSON object per line, each tagged with "
                            "an 'event' field (ready/status/drained)")
    serve.add_argument("--chaos", metavar="PLAN.json", default=None,
                       help="inject faults per this fault-plan file "
                            "(repro.chaos.FaultPlan): server transport "
                            "and store faults, plus scheduled process "
                            "crashes")
    serve.add_argument("--chaos-log", metavar="PATH", default=None,
                       help="append every injected fault as a JSON "
                            "line here (the chaos-smoke CI artifact)")

    supervise = sub.add_parser(
        "supervise",
        help="run `repro serve` as a supervised child: restart with "
             "--recover on non-zero exit (backoff + crash-loop circuit "
             "breaker), forward SIGTERM for a clean drain")
    supervise.add_argument("--max-restarts", type=int, default=5,
                           help="restarts tolerated within "
                                "--restart-window before giving up "
                                "with exit code 3 (default 5)")
    supervise.add_argument("--restart-window", type=float, default=60.0,
                           metavar="SECONDS",
                           help="sliding window for the crash-loop "
                                "circuit breaker (default 60)")
    supervise.add_argument("--backoff-base", type=float, default=0.5,
                           metavar="SECONDS",
                           help="restart delay after the first failure; "
                                "doubles per consecutive failure "
                                "(default 0.5)")
    supervise.add_argument("--backoff-max", type=float, default=5.0,
                           metavar="SECONDS",
                           help="restart delay ceiling (default 5)")
    supervise.add_argument("serve_args", nargs=argparse.REMAINDER,
                           metavar="-- SERVE_ARGS",
                           help="arguments passed to `repro serve` "
                                "(prefix with --), e.g. "
                                "-- --port 7707 --store hub-store")

    status_parser = sub.add_parser(
        "status", help="query a serving endpoint's STATUS snapshot")
    status_parser.add_argument("address", metavar="HOST:PORT",
                               help="a repro serve endpoint, "
                                    "e.g. 127.0.0.1:7707")
    status_parser.add_argument("--transport", default="tcp",
                               metavar="NAME",
                               help="transport the server listens on "
                                    "(default 'tcp')")
    status_parser.add_argument("--wire", default="binary", metavar="NAME",
                               help="wire codec to request (default "
                                    "'binary'; the server may grant less)")
    status_parser.add_argument("--tenant", default="default",
                               help="tenant namespace for the handshake "
                                    "(default 'default')")
    status_parser.add_argument("--json", action="store_true",
                               help="compact single-line output "
                                    "(default: indented)")

    loadgen = sub.add_parser(
        "loadgen", help="churn load generator: N clients connect, push, "
                        "crash and resume against a server")
    loadgen.add_argument("--workers", type=int, default=8,
                         help="concurrent client workers (default 8)")
    loadgen.add_argument("--pushes", type=int, default=12,
                         help="chunks each worker feeds (default 12)")
    loadgen.add_argument("--chunk", type=int, default=256,
                         help="items per chunk (default 256)")
    loadgen.add_argument("--crash-every", type=int, default=3,
                         help="crash each worker's transport every N "
                              "pushes; 0 disables churn (default 3)")
    loadgen.add_argument("--host", default=None,
                         help="target server address (default: spawn an "
                              "in-process server on a free port)")
    loadgen.add_argument("--port", type=int, default=None,
                         help="target server port (requires --host)")
    loadgen.add_argument("--transport", default="tcp", metavar="NAME",
                         help="transport to dial (default 'tcp')")
    loadgen.add_argument("--wire", default="binary", metavar="NAME",
                         help="wire codec to request (default 'binary')")
    loadgen.add_argument("--tenant", default="loadgen",
                         help="tenant namespace (default 'loadgen')")
    loadgen.add_argument("--verify-bits", action="store_true",
                         help="also require outputs bit-identical to an "
                              "uninterrupted local embed")
    loadgen.add_argument("--out", metavar="PATH", default=None,
                         help="also write the summary JSON here "
                              "(the CI histogram artifact)")
    loadgen.add_argument("--chaos", metavar="PLAN.json", default=None,
                         help="wrap the dialing transport with "
                              "client-side fault injection per this "
                              "fault-plan file")
    add_retry_flags(loadgen)

    remote = sub.add_parser(
        "remote", help="drive a repro serve endpoint as a client")
    remote_sub = remote.add_subparsers(dest="remote_command", required=True)

    def add_remote_common(p: argparse.ArgumentParser) -> None:
        add_common(p, needs_key=True)
        p.add_argument("--host", default="127.0.0.1",
                       help="server address (default 127.0.0.1)")
        p.add_argument("--port", type=int, required=True,
                       help="server port")
        p.add_argument("--tenant", default="default",
                       help="tenant namespace (default 'default')")
        p.add_argument("--stream-id", required=True,
                       help="stream id on the server")
        p.add_argument("--chunk", type=int, default=500,
                       help="items per feed (default 500)")
        p.add_argument("--encoding", default="multihash",
                       choices=encodings)
        p.add_argument("--transport", default="tcp", metavar="NAME",
                       help="transport the server listens on "
                            "(default 'tcp')")
        p.add_argument("--wire", default="binary", metavar="NAME",
                       help="wire codec to request: 'json' or 'binary' "
                            "(default 'binary'; the server may grant "
                            "less)")
        add_retry_flags(p)

    remote_embed = remote_sub.add_parser(
        "embed", help="watermark a CSV stream through a remote server")
    add_remote_common(remote_embed)
    remote_embed.add_argument("output", help="output CSV path")
    remote_embed.add_argument("--watermark", default="1",
                              help="payload: bit string or text "
                                   "(default '1')")

    remote_detect = remote_sub.add_parser(
        "detect", help="detect a watermark through a remote server")
    add_remote_common(remote_detect)
    remote_detect.add_argument("--bits", type=int, default=1,
                               help="payload length in bits (default 1)")
    remote_detect.add_argument("--degree", type=float, default=1.0,
                               help="known transform degree rho "
                                    "(default 1)")
    remote_detect.add_argument("--expect", default=None,
                               help="expected payload to score against")
    return parser


def _load(args) -> np.ndarray:
    values = load_stream_csv(args.input)
    if args.normalize:
        low, high = (float(x) for x in args.normalize.split(":"))
        values = Normalizer(low=low, high=high).normalize(values)
    return values


def _denormalize(args, values: np.ndarray) -> np.ndarray:
    """Map output values back to physical units when --normalize is on."""
    if not args.normalize or not len(values):
        return values
    low, high = (float(x) for x in args.normalize.split(":"))
    return Normalizer(low=low, high=high).denormalize(values)


def _params(args) -> WatermarkParams:
    if getattr(args, "params", None):
        overrides = json.loads(args.params)
        return WatermarkParams().with_updates(**overrides)
    return WatermarkParams()


def _require_key(args) -> bytes:
    if not args.key:
        raise ReproError("no key: pass --key or set $REPRO_KEY")
    return args.key.encode("utf-8")


def _cmd_embed(args) -> int:
    values = _load(args)
    params = _params(args)
    marked, report = watermark_stream(values, args.watermark,
                                      _require_key(args), params=params,
                                      encoding=args.encoding)
    marked = _denormalize(args, marked)
    save_stream_csv(args.output, marked)
    print(json.dumps(report.summary(), indent=2))
    return 0


def _cmd_detect(args) -> int:
    values = _load(args)
    params = _params(args)
    result = detect_watermark(values, args.bits, _require_key(args),
                              params=params, encoding=args.encoding,
                              transform_degree=args.degree,
                              workers=args.workers, spans=args.spans)
    payload = {
        "votes": [result.votes(i) for i in range(result.wm_length)],
        "bias": [result.bias(i) for i in range(result.wm_length)],
        "confidence_bit0": result.confidence(0),
        "exact_fp_bit0": result.exact_false_positive(0),
        "estimate": ["1" if b else "0" if b is not None else "?"
                     for b in result.wm_estimate()],
    }
    if args.expect is not None:
        payload["match_fraction"] = result.match_fraction(args.expect)
    print(json.dumps(payload, indent=2))
    return 0 if result.total_bias > 0 else 1


def _cmd_attack(args) -> int:
    values = _load(args)
    # Transforms shadow attacks on a name collision — the same order
    # Compose.from_names and TransformStage use, so one name always
    # means one component everywhere.
    registration = REGISTRY.find(args.kind, kinds=("transform", "attack"))
    builder = registration.obj
    # Offer every CLI tuning flag; the builder takes what it understands.
    candidates = {
        "degree": args.degree,
        "length": args.length,
        "tau": args.tau,
        "epsilon": args.epsilon,
        "fraction": args.fraction,
        "scale": args.scale,
        "offset": args.offset,
        "rng": args.seed,
    }
    accepted = inspect.signature(builder).parameters
    # Unset flags (None) are dropped so every builder keeps its own
    # default (e.g. segment's "half the stream").
    options = {name: value for name, value in candidates.items()
               if name in accepted and value is not None}
    out = _denormalize(args, np.asarray(builder(**options)(values)))
    save_stream_csv(args.output, out)
    print(json.dumps({"kind": registration.name,
                      "component_kind": registration.kind,
                      "input_items": len(values),
                      "output_items": len(out)}, indent=2))
    return 0


def _cmd_info(args) -> int:
    values = _load(args)
    params = _params(args)
    majors = find_major_extremes(values, params.prominence, params.delta,
                                 params.sigma, params.majority_relaxation)
    print(json.dumps({
        "items": len(values),
        "value_range": [float(values.min()), float(values.max())],
        "major_extremes": len(majors),
        "eta_estimate": estimate_eta(values, params.prominence,
                                     params.delta, params.sigma,
                                     params.majority_relaxation),
        "average_subset_size": average_subset_size(values,
                                                   params.prominence,
                                                   params.delta),
        "label_warmup_extremes": params.label_history,
    }, indent=2))
    return 0


def _cmd_list(args) -> int:
    snapshot = REGISTRY.snapshot()
    if args.kind:
        snapshot = {args.kind: snapshot[args.kind]}
    if args.json:
        print(json.dumps(snapshot, indent=2))
        return 0
    for kind, components in snapshot.items():
        print(f"{kind}s ({len(components)}):")
        for name, description in components.items():
            text = f"  {name}"
            if description:
                text += f" — {description}"
            print(text)
    return 0


# ----------------------------------------------------------------------
# hub subcommands
# ----------------------------------------------------------------------
def _hub_specs(args) -> "list[tuple[str, str, str]]":
    """Parse repeated ``--stream ID=IN.csv=OUT.csv`` specs."""
    specs = []
    for raw in args.streams:
        parts = raw.split("=", 2)
        if len(parts) != 3 or not all(parts):
            raise ReproError(
                f"bad --stream spec {raw!r}; expected ID=IN.csv=OUT.csv"
            )
        specs.append((parts[0], parts[1], parts[2]))
    if len({sid for sid, _, _ in specs}) != len(specs):
        raise ReproError("duplicate stream ids in --stream specs")
    return specs


def _hub_summary(hub, specs, written, stopped_early: bool) -> dict:
    rows = {}
    for stream_id, _, out_path in specs:
        stats = hub.stats(stream_id)
        rows[stream_id] = {
            "items_in": stats["items_in"],
            "items_out": stats["items_out"],
            "checkpoints": stats["checkpoints"],
            "finished": stats["finished"],
            "output": out_path if written[stream_id] else None,
            "written_items": written[stream_id],
        }
    return {"streams": rows, "stopped_early": stopped_early}


def _write_hub_outputs(specs, outputs) -> dict:
    """Write each stream's released items; streams with no output yet
    (window-delayed or never pushed) get no file, not an empty CSV the
    IO layer would refuse to read back."""
    written = {}
    for stream_id, _, out_path in specs:
        pieces = [piece for piece in outputs[stream_id] if len(piece)]
        if pieces:
            out = np.concatenate(pieces)
            save_stream_csv(out_path, out)
            written[stream_id] = len(out)
        else:
            written[stream_id] = 0
    return written


def _cmd_hub_embed(args) -> int:
    from repro.hub import StreamHub
    from repro.stores import DirectoryCheckpointStore

    specs = _hub_specs(args)
    key = _require_key(args)
    params = _params(args)
    store = DirectoryCheckpointStore(args.store)
    hub = StreamHub(store=store, checkpoint_every=args.checkpoint_every,
                    max_live_sessions=args.max_live)
    inputs = {}
    for stream_id, in_path, _ in specs:
        hub.protect(stream_id, args.watermark, key, params=params,
                    encoding=args.encoding)
        inputs[stream_id] = load_stream_csv(in_path)

    outputs = {stream_id: [] for stream_id, _, _ in specs}
    stopped_early = False
    pushes = 0
    longest = max(len(values) for values in inputs.values())
    for start in range(0, longest, args.chunk):
        for stream_id, _, _ in specs:
            chunk = inputs[stream_id][start:start + args.chunk]
            if not len(chunk):
                continue
            outputs[stream_id].append(hub.push(stream_id, chunk))
            pushes += 1
            if args.stop_after is not None and pushes >= args.stop_after:
                stopped_early = True
                break
        if stopped_early:
            break
    if stopped_early:
        # --stop-after is a *controlled* stop: checkpoint everything so
        # the store agrees with every item written below — otherwise
        # pushes made after the last cadence checkpoint would be
        # replayed by `hub resume` and duplicated in the output.
        hub.checkpoint_all()
    else:
        for stream_id, tail in hub.finish_all().items():
            outputs[stream_id].append(tail)

    written = _write_hub_outputs(specs, outputs)
    print(json.dumps(_hub_summary(hub, specs, written, stopped_early),
                     indent=2))
    return 0


def _cmd_hub_resume(args) -> int:
    from repro.hub import StreamHub
    from repro.stores import DirectoryCheckpointStore

    specs = _hub_specs(args)
    key = _require_key(args)
    store = DirectoryCheckpointStore(args.store, create=False)
    hub = StreamHub.recover(store, lambda stream_id: key,
                            checkpoint_every=1)
    outputs = {stream_id: [] for stream_id, _, _ in specs}
    for stream_id, in_path, _ in specs:
        if stream_id not in hub:
            raise ReproError(
                f"store {args.store} holds no checkpoint for stream "
                f"{stream_id!r}"
            )
        values = load_stream_csv(in_path)
        # items_in is the checkpointed ingest offset: replay the rest.
        offset = hub.stats(stream_id)["items_in"]
        for start in range(offset, len(values), args.chunk):
            outputs[stream_id].append(
                hub.push(stream_id, values[start:start + args.chunk]))
        if not hub.stats(stream_id)["finished"]:
            outputs[stream_id].append(hub.finish(stream_id))

    written = _write_hub_outputs(specs, outputs)
    print(json.dumps(_hub_summary(hub, specs, written, False), indent=2))
    return 0


def _cmd_hub_status(args) -> int:
    from repro.hub import store_summary
    from repro.stores import DirectoryCheckpointStore

    store = DirectoryCheckpointStore(args.store, create=False)
    rows = store_summary(store)
    if args.json:
        # One JSON object per stream per line — loadgen/CI parse these
        # without scraping; an empty store emits no lines and exits 0.
        for row in rows:
            print(json.dumps(row))
        return 0
    if not rows:
        # An empty store is a normal operational state (fresh start, or
        # every stream finished and was dropped) — say so instead of
        # printing a bare empty table.
        print(f"store {args.store} is empty: no stream checkpoints")
        return 0
    print(json.dumps({"store": args.store, "streams": rows}, indent=2))
    return 0


_HUB_COMMANDS = {
    "embed": _cmd_hub_embed,
    "resume": _cmd_hub_resume,
    "status": _cmd_hub_status,
}


def _cmd_hub(args) -> int:
    return _HUB_COMMANDS[args.hub_command](args)


# ----------------------------------------------------------------------
# network serving
# ----------------------------------------------------------------------
def _cmd_serve(args) -> int:
    import asyncio
    import signal

    from repro.server.service import StreamService

    def emit(event: str, payload: dict) -> None:
        # Always one JSON object per line; --json additionally tags
        # each with a stable 'event' discriminator so log consumers can
        # route ready/status/drained lines without guessing by keys.
        if args.json:
            payload = {"event": event, **payload}
        print(json.dumps(payload), flush=True)

    injector = _fault_injector(args)

    async def run() -> None:
        service = StreamService(
            host=args.host, port=args.port, store_path=args.store,
            store_backend=args.store_backend, credits=args.credits,
            transport=args.transport, max_wire=args.wire,
            checkpoint_every=args.checkpoint_every,
            checkpoint_interval=args.checkpoint_interval,
            max_live_sessions=args.max_live, recover=args.recover,
            status_interval=args.status_interval,
            status_sink=lambda snapshot:
            emit("status", {"status": snapshot}),
            fault_injector=injector)
        host, port = await service.start()
        recoverable = service.recoverable() if args.recover else {}
        status = service.status()
        # One machine-readable ready line: scripts parse the bound port
        # (required with --port 0) before dialing in, and operators see
        # what the server actually speaks.
        emit("ready", {
            "serving": {"host": host, "port": port,
                        "transport": status["transport"],
                        "max_wire": status["max_wire"]},
            "store": args.store,
            "recoverable": {tenant: len(ids)
                            for tenant, ids in recoverable.items()},
        })
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum,
                    lambda: asyncio.ensure_future(service.drain()))
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        await service.serve_until_drained()
        status = service.status()
        emit("drained", {"drained": True, "pushes": service.pushes,
                         "transport": status["transport"],
                         "wire_sessions": status["wire_sessions"]})

    asyncio.run(run())
    return 0


def _remote_feed(args, session, values) -> "list[np.ndarray]":
    pieces = []
    for start in range(0, len(values), args.chunk):
        pieces.append(session.feed(values[start:start + args.chunk]))
    pieces.append(session.finish())
    return pieces


def _cmd_remote_embed(args) -> int:
    from repro.server.client import RemoteClient

    values = _load(args)
    with RemoteClient(args.host, args.port, tenant=args.tenant,
                      transport=args.transport,
                      wire=args.wire, retry=_retry_policy(args)) as client:
        session = client.protect(args.stream_id, args.watermark,
                                 _require_key(args), params=_params(args),
                                 encoding=args.encoding)
        pieces = _remote_feed(args, session, values)
        reconnects = client.reconnects
    pieces = [piece for piece in pieces if len(piece)]
    marked = _denormalize(args, np.concatenate(pieces) if pieces
                          else np.empty(0, dtype=np.float64))
    # An empty stream yields no output file (the CSV layer refuses to
    # read empty files back), matching the hub commands.
    if len(marked):
        save_stream_csv(args.output, marked)
    print(json.dumps({"stream_id": args.stream_id,
                      "items_in": len(values),
                      "items_out": len(marked),
                      "output": args.output if len(marked) else None,
                      "reconnects": reconnects}, indent=2))
    return 0


def _cmd_remote_detect(args) -> int:
    from repro.server.client import RemoteClient

    values = _load(args)
    with RemoteClient(args.host, args.port, tenant=args.tenant,
                      transport=args.transport,
                      wire=args.wire, retry=_retry_policy(args)) as client:
        session = client.detect(args.stream_id, args.bits,
                                _require_key(args), params=_params(args),
                                encoding=args.encoding,
                                transform_degree=args.degree)
        _remote_feed(args, session, values)
        result = session.result()
        reconnects = client.reconnects
    payload = {
        "stream_id": args.stream_id,
        "votes": [result.votes(i) for i in range(result.wm_length)],
        "bias": [result.bias(i) for i in range(result.wm_length)],
        "confidence_bit0": result.confidence(0),
        "estimate": ["1" if b else "0" if b is not None else "?"
                     for b in result.wm_estimate()],
        "reconnects": reconnects,
    }
    if args.expect is not None:
        payload["match_fraction"] = result.match_fraction(args.expect)
    print(json.dumps(payload, indent=2))
    return 0 if result.total_bias > 0 else 1


_REMOTE_COMMANDS = {
    "embed": _cmd_remote_embed,
    "detect": _cmd_remote_detect,
}


def _cmd_remote(args) -> int:
    return _REMOTE_COMMANDS[args.remote_command](args)


# ----------------------------------------------------------------------
# observability
# ----------------------------------------------------------------------
def _cmd_status(args) -> int:
    from repro.server.client import RemoteClient

    host, _, port = args.address.rpartition(":")
    if not host or not port.isdigit():
        raise ReproError(
            f"bad address {args.address!r}; expected HOST:PORT")
    with RemoteClient(host, int(port), tenant=args.tenant,
                      transport=args.transport, wire=args.wire) as client:
        snapshot = client.status()
    print(json.dumps(snapshot,
                     indent=None if args.json else 2))
    return 0


def _cmd_loadgen(args) -> int:
    from repro.obs.loadgen import run_loadgen

    if (args.host is None) != (args.port is None):
        raise ReproError("--host and --port go together (omit both to "
                         "spawn an in-process server)")
    transport = args.transport
    if args.chaos is not None:
        # Client-side chaos: wrap the dialing transport with the plan's
        # client faults; the registry-resolved "chaos" name keeps every
        # downstream build_transport() call untouched.
        import repro.chaos as chaos
        chaos.install(chaos.FaultPlan.load(args.chaos),
                      inner=args.transport, side="client")
        transport = "chaos"
    summary = run_loadgen(workers=args.workers, pushes=args.pushes,
                          chunk=args.chunk, crash_every=args.crash_every,
                          host=args.host, port=args.port,
                          transport=transport, wire=args.wire,
                          tenant=args.tenant,
                          verify_bits=args.verify_bits,
                          retry=_retry_policy(args))
    print(json.dumps(summary, indent=2))
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(summary, handle, indent=1)
            handle.write("\n")
    # Churn must not bend exactly-once: any lost/duplicated item or
    # crashed worker fails the run (the CI loadgen-smoke gate).
    return 1 if summary["verify_failures"] or summary["worker_errors"] \
        else 0


def _cmd_supervise(args) -> int:
    from repro.chaos.supervisor import supervise_serve

    serve_args = list(args.serve_args)
    # argparse.REMAINDER keeps the literal "--" separator; drop it.
    if serve_args and serve_args[0] == "--":
        serve_args = serve_args[1:]
    supervisor = supervise_serve(serve_args,
                                 max_restarts=args.max_restarts,
                                 restart_window=args.restart_window,
                                 backoff_base=args.backoff_base,
                                 backoff_max=args.backoff_max)
    return supervisor.run()


_COMMANDS = {
    "embed": _cmd_embed,
    "detect": _cmd_detect,
    "attack": _cmd_attack,
    "info": _cmd_info,
    "list": _cmd_list,
    "hub": _cmd_hub,
    "serve": _cmd_serve,
    "supervise": _cmd_supervise,
    "remote": _cmd_remote,
    "status": _cmd_status,
    "loadgen": _cmd_loadgen,
}


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    raise SystemExit(main())
