"""Multi-tenant streaming hub: many keyed sessions behind one router.

The paper's watermarking model is per-stream; a production deployment
serves *fleets* — thousands of independently-keyed sensor streams
multiplexed over one ingest path.  :class:`StreamHub` is that
multiplexer:

* **routing** — named :class:`~repro.pipeline.ProtectionSession` /
  :class:`~repro.pipeline.DetectionSession` instances, each with its own
  secret key; interleaved batched pushes are routed by stream id through
  the same vectorized ``push_chunk`` scan path a single session uses, so
  per-item cost stays within a small factor of one session (tracked by
  the hub soak in ``benchmarks/test_throughput.py``);
* **durability** — sessions checkpoint through any
  :class:`~repro.stores.CheckpointStore` (pluggable: in-memory,
  atomic-write directory, ...), on a configurable cadence
  (``checkpoint_every`` pushes per stream) and on demand
  (:meth:`checkpoint` / :meth:`checkpoint_all`); the secret keys are
  held only in process memory and are **never** persisted;
* **crash recovery** — :meth:`StreamHub.recover` reconstructs every
  session *bit-identically* from its latest durable checkpoint
  (property-tested at hub level); per-stream ``items_in`` tells the
  caller the replay offset for data pushed after the last checkpoint;
* **bounded residency** — with ``max_live_sessions`` set, the least
  recently used sessions are checkpointed to the store and evicted from
  memory; they are reloaded transparently on their next push, so a hub
  can juggle far more streams than fit in RAM;
* **observability** — :meth:`stats` exposes per-stream counters
  (pushes, items in/out, checkpoints, evictions, restores).

Quickstart::

    store = DirectoryCheckpointStore("/var/lib/repro/fleet")
    hub = StreamHub(store=store, checkpoint_every=4)
    hub.protect("sensor-1", "(c) DataCorp", key=b"k-sensor-1")
    hub.protect("sensor-2", "(c) DataCorp", key=b"k-sensor-2")
    for stream_id, chunk in ingest():
        forward(stream_id, hub.push(stream_id, chunk))
    # ... worker crashes; a fresh worker recovers the fleet:
    hub = StreamHub.recover(store, keys={"sensor-1": b"k-sensor-1",
                                         "sensor-2": b"k-sensor-2"})
"""

from __future__ import annotations

import difflib
import time
from collections import OrderedDict
from dataclasses import asdict, dataclass
from typing import Callable, Iterable, Mapping

import numpy as np

from repro.errors import (
    CheckpointStoreError,
    HubError,
    ParameterError,
    SessionStateError,
)
from repro.obs import LATENCY_US_BUCKETS, NULL_REGISTRY
from repro.pipeline import (
    DetectionSession,
    ProtectionSession,
    session_from_state,
)
from repro.stores import CheckpointStore, MemoryCheckpointStore


@dataclass
class StreamStats:
    """Per-stream bookkeeping of one hub (counts are per hub lifetime).

    ``items_in`` equals the session's total ingested items — after a
    :meth:`StreamHub.recover` it is seeded from the checkpoint, so it is
    also the replay offset for re-feeding source data.  ``items_out``
    counts released (window-delayed) output items.  ``live`` is whether
    the session currently resides in memory (``False`` after LRU
    eviction to the store).
    """

    stream_id: str
    kind: str
    pushes: int = 0
    items_in: int = 0
    items_out: int = 0
    checkpoints: int = 0
    evictions: int = 0
    restores: int = 0
    live: bool = True
    finished: bool = False
    #: ``items_in`` at the moment of the last checkpoint write — the
    #: anchor for ``checkpoint_lag`` (items at risk on a crash).  Seeded
    #: to ``items_in`` on adopt/recover, so a just-restored stream
    #: reports zero lag.
    items_at_checkpoint: int = 0
    #: Wall-clock time of the last checkpoint write (``time.time()``),
    #: or ``None`` if this hub has not checkpointed the stream yet.
    last_checkpoint_ts: "float | None" = None
    #: Cumulative seconds spent inside ``session.feed``/``finish`` for
    #: this stream (process wall time) — the numerator of ``us_per_item``.
    busy_seconds: float = 0.0
    first_push_ts: "float | None" = None
    last_push_ts: "float | None" = None

    def to_dict(self) -> dict:
        """Plain-dict snapshot (JSON-compatible, for logs and the CLI).

        Adds derived fields on top of the raw counters:
        ``checkpoint_lag`` (items ingested since the last checkpoint),
        ``us_per_item`` (mean in-hub processing cost) and
        ``items_per_s`` (ingest rate over the first→last push window;
        ``None`` until two pushes have landed).
        """
        out = asdict(self)
        out["checkpoint_lag"] = self.items_in - self.items_at_checkpoint
        out["busy_seconds"] = round(self.busy_seconds, 6)
        out["us_per_item"] = (
            round(1e6 * self.busy_seconds / self.items_in, 4)
            if self.items_in and self.busy_seconds else None)
        wall = ((self.last_push_ts - self.first_push_ts)
                if self.first_push_ts is not None
                and self.last_push_ts is not None else 0.0)
        out["items_per_s"] = (round(self.items_in / wall, 2)
                              if wall > 0 else None)
        return out


def _kind_of(session) -> str:
    return ("protection" if isinstance(session, ProtectionSession)
            else "detection")


#: Checkpoint ``kind`` tag -> the short stats kind name.
_STATE_KIND_NAMES = {"protection-session": "protection",
                     "detection-session": "detection"}


class StreamHub:
    """Router, checkpointer and lifecycle manager for many sessions.

    Parameters
    ----------
    store:
        The :class:`~repro.stores.CheckpointStore` that receives
        checkpoints (cadence, eviction, explicit).  Defaults to a
        private :class:`~repro.stores.MemoryCheckpointStore`, which
        supports LRU eviction but is not durable — pass a directory (or
        other durable) store to survive crashes.
    checkpoint_every:
        Auto-checkpoint a stream after every N pushes to it (and at
        :meth:`finish`).  0 disables automatic checkpoints; explicit
        :meth:`checkpoint` calls and eviction still write.
    max_live_sessions:
        Upper bound on sessions resident in memory; beyond it the least
        recently pushed streams are checkpointed and evicted.  ``None``
        keeps everything live.
    checkpoint_hook:
        Optional callable invoked with the stream id immediately
        *before* every checkpoint write (cadence, eviction, explicit),
        so companion state can be persisted no later than the session
        state it describes (used by the network server's output-replay
        sidecar).
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry`.  When given (and
        enabled) the hub feeds per-hub counters, a per-push latency
        histogram and snapshot-time callback gauges into it; when
        omitted the shared disabled registry is used and the hot path
        costs only a few no-op calls (asserted ≤5% on the ``initial``
        encoding row by ``benchmarks/test_throughput.py``).
    metrics_labels:
        Labels attached to every instrument this hub registers
        (e.g. ``{"tenant": "acme"}``), so many hubs can share one
        registry without colliding.
    """

    def __init__(self, *, store: "CheckpointStore | None" = None,
                 checkpoint_every: int = 0,
                 max_live_sessions: "int | None" = None,
                 checkpoint_hook: "Callable[[str], None] | None" = None,
                 metrics=None,
                 metrics_labels: "dict | None" = None) -> None:
        if checkpoint_every < 0:
            raise ParameterError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        if max_live_sessions is not None and max_live_sessions < 1:
            raise ParameterError(
                f"max_live_sessions must be >= 1, got {max_live_sessions}"
            )
        if store is not None and not isinstance(store, CheckpointStore):
            raise ParameterError(
                f"store must be a CheckpointStore, got "
                f"{type(store).__name__}"
            )
        self._store = store if store is not None else MemoryCheckpointStore()
        self._checkpoint_every = int(checkpoint_every)
        self._max_live = max_live_sessions
        #: Called with the stream id immediately *before* every
        #: checkpoint write (cadence, eviction, explicit), so a caller
        #: persisting companion state (e.g. the network server's
        #: output-replay sidecar) can guarantee it is never older than
        #: the session state it accompanies.
        self._checkpoint_hook = checkpoint_hook
        #: Live sessions in LRU order (least recently used first).
        self._sessions: "OrderedDict[str, object]" = OrderedDict()
        self._keys: "dict[str, object]" = {}
        self._stats: "dict[str, StreamStats]" = {}
        self._metrics = metrics if metrics is not None else NULL_REGISTRY
        labels = dict(metrics_labels or {})
        m = self._metrics
        self._m_pushes = m.counter("hub_pushes_total", **labels)
        self._m_items_in = m.counter("hub_items_in_total", **labels)
        self._m_items_out = m.counter("hub_items_out_total", **labels)
        self._m_checkpoints = m.counter("hub_checkpoints_total", **labels)
        self._m_evictions = m.counter("hub_evictions_total", **labels)
        self._m_restores = m.counter("hub_restores_total", **labels)
        self._m_push_us = m.histogram("hub_push_us",
                                      buckets=LATENCY_US_BUCKETS, **labels)
        m.gauge_callback("hub_streams", lambda: len(self._stats), **labels)
        m.gauge_callback("hub_live_sessions",
                         lambda: len(self._sessions), **labels)
        m.gauge_callback(
            "hub_checkpoint_lag_items",
            lambda: sum(st.items_in - st.items_at_checkpoint
                        for st in self._stats.values()), **labels)
        m.gauge_callback(
            "hub_search_iterations_total",
            lambda: self.encoding_summary()["search_iterations"], **labels)
        m.gauge_callback(
            "hub_pattern_memo_hit_rate",
            lambda: self.encoding_summary()["pattern_memo_hit_rate"],
            **labels)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def protect(self, stream_id: str, watermark, key,
                **session_kwargs) -> None:
        """Register a new embedding stream under its own secret key.

        ``session_kwargs`` are forwarded to
        :class:`~repro.pipeline.ProtectionSession` (``params``,
        ``encoding``, ...).  The encoding must be a registered *name*
        for the stream to be checkpointable.
        """
        self._adopt(stream_id,
                    ProtectionSession(watermark, key, **session_kwargs),
                    key)

    def detect(self, stream_id: str, wm_length, key,
               **session_kwargs) -> None:
        """Register a new detection stream under its own secret key."""
        self._adopt(stream_id,
                    DetectionSession(wm_length, key, **session_kwargs),
                    key)

    @staticmethod
    def detect_batch(jobs, workers: "int | None" = None) -> list:
        """Screen a batch of suspect streams, optionally in parallel.

        ``jobs`` is a list of :class:`repro.core.parallel_detect.
        DetectionTask` or of tuples ``(values, wm_length, key)`` /
        ``(values, wm_length, key, kwargs)`` — the rights holder's
        key-ring sweep: every (stream, key) pair is an independent
        detection, so they fan out across ``workers`` processes and the
        results come back in job order.  This is offline whole-stream
        screening and touches no hub session state, hence a staticmethod
        on the hub only as the natural batch entry point.
        """
        from repro.core.parallel_detect import DetectionTask, detect_many

        tasks = []
        for job in jobs:
            if isinstance(job, DetectionTask):
                tasks.append(job)
            else:
                values, wm_length, key = job[0], job[1], job[2]
                kwargs = dict(job[3]) if len(job) > 3 else {}
                tasks.append(DetectionTask(values=values,
                                           wm_length=wm_length,
                                           key=key, **kwargs))
        return detect_many(tasks, workers=workers)

    def _check_new_id(self, stream_id: str) -> None:
        if not isinstance(stream_id, str) or not stream_id:
            raise HubError(
                f"stream id must be a non-empty string, got {stream_id!r}"
            )
        if stream_id in self._stats:
            raise HubError(
                f"stream id {stream_id!r} is already registered; "
                "hub stream ids are unique"
            )

    def _adopt(self, stream_id: str, session, key) -> None:
        self._check_new_id(stream_id)
        self._sessions[stream_id] = session
        self._keys[stream_id] = key
        self._stats[stream_id] = StreamStats(
            stream_id=stream_id, kind=_kind_of(session),
            items_in=session.items_ingested,
            items_at_checkpoint=session.items_ingested,
            finished=getattr(session, "_finished", False))
        self._shrink(exclude=stream_id)

    def _adopt_cold(self, stream_id: str, key, state: dict) -> None:
        """Register a checkpointed stream without deserializing it.

        The session stays in the store (``live=False``) and is restored
        lazily on its first push — so a bounded-residency recovery does
        not thrash every checkpoint through memory and back.  Only the
        envelope-level facts (kind, ingest offset, finished) are read.
        """
        self._check_new_id(stream_id)
        kind = _STATE_KIND_NAMES.get(state.get("kind")
                                     if isinstance(state, dict) else None)
        if kind is None:
            raise SessionStateError(
                f"checkpoint for stream {stream_id!r} has unknown "
                f"session kind "
                f"{state.get('kind') if isinstance(state, dict) else state!r}"
            )
        counters = (state.get("scan") or {}).get("counters") or {}
        self._keys[stream_id] = key
        self._stats[stream_id] = StreamStats(
            stream_id=stream_id, kind=kind,
            items_in=int(counters.get("items", 0)),
            items_at_checkpoint=int(counters.get("items", 0)), live=False,
            finished=bool(state.get("finished", False)))

    def restore(self, stream_id: str, key) -> None:
        """Adopt one checkpointed stream from the store into this hub.

        The per-stream counterpart of :meth:`recover`: a hub that was
        started empty against an existing store (e.g. a network server
        booted with ``--recover``) re-admits streams lazily, as each
        client reconnects and re-supplies its key.  The restored session
        continues bit-identically from its latest durable checkpoint.
        """
        self._check_new_id(stream_id)
        if stream_id not in self._store:
            raise HubError(
                f"store holds no checkpoint for stream {stream_id!r}; "
                "nothing to restore"
            )
        self._adopt(stream_id, session_from_state(self._store.load(stream_id),
                                                  key), key)
        self._stats[stream_id].restores += 1
        self._m_restores.inc()

    def drop(self, stream_id: str, *, force: bool = False) -> None:
        """Evict one stream entirely: session, stats, key and checkpoint.

        A long-lived server would otherwise leak finished sessions into
        the LRU and their checkpoints into the store forever.  Dropping
        an unfinished stream discards un-replayable state, so it
        requires ``force=True``.  The stream id becomes reusable and its
        checkpoint (if any) is deleted from the store.
        """
        self._known(stream_id)
        if not self._stats[stream_id].finished and not force:
            raise HubError(
                f"stream {stream_id!r} is not finished; dropping it "
                "would discard live state (pass force=True to override)"
            )
        self._sessions.pop(stream_id, None)
        self._keys.pop(stream_id, None)
        del self._stats[stream_id]
        if stream_id in self._store:
            self._store.delete(stream_id)

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def push(self, stream_id: str, chunk) -> np.ndarray:
        """Route one chunk to its stream; return the released output items.

        Evicted sessions are transparently restored from the store
        first.  When a checkpoint cadence is configured, the stream is
        checkpointed after every ``checkpoint_every``-th push.
        """
        session = self._resident(stream_id)
        stats = self._stats[stream_id]
        array = np.asarray(chunk, dtype=np.float64).ravel()
        t0 = time.perf_counter()
        out = session.feed(array)
        elapsed = time.perf_counter() - t0
        stats.pushes += 1
        stats.items_in += array.size
        stats.items_out += out.size
        stats.busy_seconds += elapsed
        now = time.time()
        if stats.first_push_ts is None:
            stats.first_push_ts = now
        stats.last_push_ts = now
        self._m_pushes.inc()
        self._m_items_in.inc(array.size)
        self._m_items_out.inc(out.size)
        self._m_push_us.observe(1e6 * elapsed)
        if self._checkpoint_every \
                and stats.pushes % self._checkpoint_every == 0:
            self._write_checkpoint(stream_id, session)
        return out

    def push_many(self, batches: "Iterable[tuple[str, object]]") \
            -> "list[tuple[str, np.ndarray]]":
        """Route an interleaved batch of ``(stream_id, chunk)`` pushes.

        Chunks are applied in order, so per-stream chunk order is
        whatever the iterable says; returns the per-push outputs as
        ``(stream_id, released_items)`` in the same order.
        """
        return [(stream_id, self.push(stream_id, chunk))
                for stream_id, chunk in batches]

    def finish(self, stream_id: str) -> np.ndarray:
        """End one stream; drain and return its remaining items.

        With a checkpoint cadence configured, the finished state is
        checkpointed too, so recovery sees the stream as complete.
        """
        session = self._resident(stream_id)
        stats = self._stats[stream_id]
        t0 = time.perf_counter()
        out = session.finish()
        stats.busy_seconds += time.perf_counter() - t0
        stats.items_out += out.size
        stats.finished = True
        self._m_items_out.inc(out.size)
        if self._checkpoint_every:
            self._write_checkpoint(stream_id, session)
        return out

    def finish_all(self) -> "dict[str, np.ndarray]":
        """End every unfinished stream; return each drained tail."""
        return {stream_id: self.finish(stream_id)
                for stream_id in self.stream_ids
                if not self._stats[stream_id].finished}

    # ------------------------------------------------------------------
    # evidence / reporting
    # ------------------------------------------------------------------
    def result(self, stream_id: str):
        """Detection evidence snapshot for one detection stream."""
        session = self._resident(stream_id)
        if not isinstance(session, DetectionSession):
            raise HubError(
                f"stream {stream_id!r} is a "
                f"{self._stats[stream_id].kind} stream; only detection "
                "streams have voting results"
            )
        return session.result()

    def report(self, stream_id: str):
        """Live embed report for one protection stream."""
        session = self._resident(stream_id)
        if not isinstance(session, ProtectionSession):
            raise HubError(
                f"stream {stream_id!r} is a "
                f"{self._stats[stream_id].kind} stream; only protection "
                "streams have embed reports"
            )
        return session.report

    def offsets(self, stream_id: str) -> dict:
        """Authoritative replay/delivery offsets for one stream.

        ``items_in`` is the session's total ingested items (the replay
        offset), ``items_out`` its total released output items (the
        delivery-deduplication offset) — both read from the session
        itself, so they are exact even right after a restore, where the
        hub-lifetime counters in :meth:`stats` restart.  Evicted
        sessions are transparently restored first.
        """
        session = self._resident(stream_id)
        return {
            "items_in": int(session.items_ingested),
            "items_out": int(session.items_released),
            "finished": bool(self._stats[stream_id].finished),
        }

    def stats(self, stream_id: "str | None" = None):
        """Per-stream counters: one dict, or ``{stream_id: dict}`` for all."""
        if stream_id is not None:
            self._known(stream_id)
            return self._stats[stream_id].to_dict()
        return {sid: st.to_dict() for sid, st in self._stats.items()}

    def encoding_summary(self) -> dict:
        """Aggregate encoding-search telemetry across *live* sessions.

        Sums each resident session's ``encoding_stats()`` (embeds,
        search iterations, pattern-memo probes/hits) and derives the
        memo hit rate.  Evicted sessions are not restored for this —
        their in-memory search state died with them, so the summary is
        a live-fleet view, sampled only when somebody asks (STATUS
        frame, ``--status-interval``); the hot loops keep plain ints.
        """
        totals = {"embeds": 0, "search_iterations": 0,
                  "pattern_probes": 0, "pattern_memo_hits": 0}
        for session in self._sessions.values():
            stats_fn = getattr(session, "encoding_stats", None)
            snap = stats_fn() if stats_fn is not None else {}
            for key in totals:
                totals[key] += int(snap.get(key, 0) or 0)
        probes = totals["pattern_probes"]
        totals["pattern_memo_hit_rate"] = (
            round(totals["pattern_memo_hits"] / probes, 4) if probes else None)
        return totals

    @property
    def stream_ids(self) -> "tuple[str, ...]":
        """Every registered stream id, in registration order."""
        return tuple(self._stats)

    @property
    def store(self) -> CheckpointStore:
        """The checkpoint store this hub writes to."""
        return self._store

    def __contains__(self, stream_id: str) -> bool:
        """Membership test on registered stream ids."""
        return stream_id in self._stats

    def __len__(self) -> int:
        """Number of registered streams (live + evicted)."""
        return len(self._stats)

    # ------------------------------------------------------------------
    # checkpointing / eviction
    # ------------------------------------------------------------------
    def checkpoint(self, stream_id: str) -> int:
        """Checkpoint one stream now; return the store sequence number.

        For an evicted stream the stored checkpoint already *is* its
        latest state (eviction wrote it), so this returns that entry's
        sequence without reloading the session.
        """
        self._known(stream_id)
        session = self._sessions.get(stream_id)
        if session is None:
            return self._store.entry(stream_id)["sequence"]
        return self._write_checkpoint(stream_id, session)

    def checkpoint_all(self) -> "dict[str, int]":
        """Checkpoint every stream; return each store sequence number."""
        return {stream_id: self.checkpoint(stream_id)
                for stream_id in self.stream_ids}

    def _write_checkpoint(self, stream_id: str, session) -> int:
        if self._checkpoint_hook is not None:
            self._checkpoint_hook(stream_id)
        sequence = self._store.save(stream_id, session.to_state())
        stats = self._stats[stream_id]
        stats.checkpoints += 1
        stats.items_at_checkpoint = stats.items_in
        stats.last_checkpoint_ts = time.time()
        self._m_checkpoints.inc()
        return sequence

    def _shrink(self, exclude: "str | None" = None) -> None:
        if self._max_live is None:
            return
        while len(self._sessions) > self._max_live:
            victim = next(stream_id for stream_id in self._sessions
                          if stream_id != exclude)
            self._write_checkpoint(victim, self._sessions[victim])
            self._stats[victim].evictions += 1
            self._stats[victim].live = False
            del self._sessions[victim]
            self._m_evictions.inc()

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    @classmethod
    def recover(cls, store: CheckpointStore,
                keys: "Mapping | Callable[[str], object]", *,
                checkpoint_every: int = 0,
                max_live_sessions: "int | None" = None) -> "StreamHub":
        """Reconstruct a hub from every checkpoint in ``store``.

        Each stream's latest durable checkpoint is restored into a fresh
        session — **bit-identically**: re-fed the data that followed its
        checkpoint (each stream's replay offset is
        ``stats(id)["items_in"]``), the recovered hub produces exactly
        the output bits and detector votes of an uninterrupted run
        (property-tested).

        ``keys`` maps stream id to that stream's secret key (a mapping,
        or a callable for key-management integration) — checkpoints are
        key-free, so recovery is the moment the secrets re-enter.
        """
        hub = cls(store=store, checkpoint_every=checkpoint_every,
                  max_live_sessions=max_live_sessions)
        key_for = keys if callable(keys) else keys.get
        for stream_id in store.ids():
            key = key_for(stream_id)
            if key is None:
                raise HubError(
                    f"no key provided for checkpointed stream "
                    f"{stream_id!r}; every stream needs its key to "
                    "recover"
                )
            state = store.load(stream_id)
            if max_live_sessions is not None \
                    and len(hub._sessions) >= max_live_sessions:
                # Beyond the residency cap, register cold: restoring a
                # session only to re-checkpoint and evict it would
                # rewrite identical state through the store.
                hub._adopt_cold(stream_id, key, state)
            else:
                hub._adopt(stream_id, session_from_state(state, key), key)
        return hub

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _known(self, stream_id: str) -> None:
        if stream_id in self._stats:
            return
        message = f"unknown stream id {stream_id!r}"
        close = difflib.get_close_matches(str(stream_id), self._stats, n=1)
        if close:
            message += f". Did you mean {close[0]!r}?"
        elif self._stats:
            known = ", ".join(sorted(self._stats)[:8])
            message += f"; registered: {known}"
        else:
            message += "; no streams are registered"
        raise HubError(message)

    def _resident(self, stream_id: str):
        self._known(stream_id)
        session = self._sessions.get(stream_id)
        if session is None:
            session = session_from_state(self._store.load(stream_id),
                                         self._keys[stream_id])
            stats = self._stats[stream_id]
            stats.restores += 1
            stats.live = True
            self._sessions[stream_id] = session
            self._m_restores.inc()
        self._sessions.move_to_end(stream_id)
        self._shrink(exclude=stream_id)
        return session

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"StreamHub({len(self._stats)} streams, "
                f"{len(self._sessions)} live)")


def store_summary(store: CheckpointStore) -> "list[dict]":
    """Operator view of a store: one row per checkpointed stream.

    Reads each entry (without any key material) and reports the stream
    id, session kind, checkpoint sequence, items ingested at checkpoint
    time and whether the stream had finished — the payload behind
    ``repro hub status``.
    """
    rows = []
    for stream_id in store.ids():
        try:
            entry = store.entry(stream_id)
        except CheckpointStoreError:
            # TOCTOU on a live server: the entry may be deleted (drop,
            # finished-stream cleanup) between ids() and entry().  A
            # vanished id is skipped; a *present but corrupt* entry
            # still propagates its error.
            if stream_id in store:
                raise
            continue
        state = entry["state"]
        scan = state.get("scan") or {}
        counters = scan.get("counters") or {}
        rows.append({
            "stream_id": stream_id,
            "kind": state.get("kind"),
            "sequence": entry["sequence"],
            "items": int(counters.get("items", 0)),
            "finished": bool(state.get("finished", False)),
        })
    return rows
