"""Experiment configuration: the two reference setups of paper Sec 6.

* **synthetic** — the controllable temperature-sensor stream
  (normalized, η(σ, δ) ≈ 100, ς = 100 Hz).  The library's default
  :class:`WatermarkParams` are calibrated against this stream.
* **IRTF** — the (synthetic stand-in for the) NASA Infrared Telescope
  Facility month of 2-minute temperature readings.  Its fluctuations
  live at a different scale — weather wiggles of a fraction of a degree
  on top of the diurnal cycle — so the extreme-detection knobs are
  re-tuned per deployment, exactly as the paper tuned δ and η to its
  data.  The watermark/selection machinery is unchanged.

``bench_scale()`` lets the benchmark harness shrink or grow workloads
through the ``REPRO_BENCH_SCALE`` environment variable without touching
the experiment definitions (scale 1.0 keeps every bench in the seconds
range; the EXPERIMENTS.md tables were produced at scale 1.0).
"""

from __future__ import annotations

import os

from repro.core.params import WatermarkParams

#: Key used by every experiment (the paper draws k1 at random; fixing it
#: makes every reported number replayable).
DEFAULT_KEY = b"wms-reproduction-key-2004"


def synthetic_params() -> WatermarkParams:
    """Parameters for the synthetic reference stream (library defaults)."""
    return WatermarkParams()


def irtf_params() -> WatermarkParams:
    """Parameters tuned to the IRTF temperature feed.

    Normalized to the 0-35 °C instrument range, the stream's informative
    fluctuations (weather episodes) swing a few hundredths of the unit
    range, with sensor noise near 1e-3, so prominence and radius scale
    down accordingly.  Unlike the synthetic generator — which guarantees
    every extreme a comfortable swing/prominence margin — real data has
    a *continuum* of extreme prominences: transforms delete or insert
    the marginal ones, and every indel corrupts labels across the whole
    ``%(λ-1)``-extreme history.  Shorter label chains (λ = 8, % = 1)
    trade label entropy for exactly this robustness, the trade-off the
    paper measures in Figs 6(a)/8(a) ("smaller label sizes survive
    better").
    """
    return WatermarkParams().with_updates(prominence=0.015, delta=0.01,
                                          lambda_bits=8, skip=1)


def bench_scale() -> float:
    """Workload multiplier for benchmarks (``REPRO_BENCH_SCALE``)."""
    raw = os.environ.get("REPRO_BENCH_SCALE", "1.0")
    try:
        scale = float(raw)
    except ValueError:
        return 1.0
    return min(max(scale, 0.1), 10.0)


def scaled(n: int, scale: float, minimum: int = 1) -> int:
    """Scale an integer workload size, keeping it at least ``minimum``."""
    return max(minimum, int(round(n * scale)))
