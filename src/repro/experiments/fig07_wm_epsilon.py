"""Figure 7 — watermark survival under ε-attacks.

Panel (a): detected bias over the (τ, ε) grid — bias decreases with
both.  Panel (b): the ε = 10% slice; the paper reports bias still above
25 (of ~70 clean) at τ = 50%.

Dataset note: the paper runs this on its NASA dataset, which spans
*multiple* telescope site sensors; our single-sensor IRTF stand-in
carries only ~26 bit-carrying extremes at the ε-robust (diurnal)
detection scale — too few for a stable bias curve.  The experiment
therefore uses the synthetic reference stream (~80 carriers), whose
ε-attack behaviour is statistically equivalent; EXPERIMENTS.md records
the substitution.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.epsilon import epsilon_attack
from repro.core.detector import detect_watermark
from repro.experiments.config import DEFAULT_KEY, synthetic_params
from repro.experiments.datasets import marked_synthetic
from repro.experiments.runner import ExperimentResult


def run_fig7a(scale: float = 1.0, seed: int = 71) -> ExperimentResult:
    """Bias surface over (τ, ε)."""
    params = synthetic_params()
    marked, _ = marked_synthetic()
    marked = np.array(marked)
    taus = (0.0, 0.15, 0.3, 0.45, 0.6)
    epsilons = (0.0, 0.1, 0.2, 0.4)
    if scale < 0.5:
        taus = (0.0, 0.3, 0.6)
        epsilons = (0.0, 0.2)
    result = ExperimentResult(
        experiment_id="fig7a",
        title="detected watermark bias vs (tau, epsilon)",
        columns=["tau", "epsilon", "bias", "votes"],
        paper_expectation=("bias decreases in both tau and epsilon "
                           "(paper surface: ~50 down to ~0)"))
    for tau in taus:
        for epsilon in epsilons:
            if tau == 0.0 or epsilon == 0.0:
                attacked = marked
            else:
                attacked = epsilon_attack(marked, tau=tau, epsilon=epsilon,
                                          rng=seed)
            detection = detect_watermark(attacked, 1, DEFAULT_KEY,
                                         params=params)
            result.add(tau=tau, epsilon=epsilon, bias=detection.bias(0),
                       votes=detection.votes(0))
    return result


def run_fig7b(scale: float = 1.0, seed: int = 72) -> ExperimentResult:
    """Bias vs τ at ε = 10% (the paper's headline slice)."""
    params = synthetic_params()
    marked, _ = marked_synthetic()
    marked = np.array(marked)
    taus = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)
    if scale < 0.5:
        taus = (0.0, 0.25, 0.5)
    result = ExperimentResult(
        experiment_id="fig7b",
        title="detected watermark bias vs tau at epsilon = 10%",
        columns=["tau", "bias", "votes", "confidence"],
        paper_expectation=("decreasing bias, still >25 of ~70 at tau=50% "
                           "(we report the same survival-ratio scale)"))
    for tau in taus:
        attacked = marked if tau == 0.0 else \
            epsilon_attack(marked, tau=tau, epsilon=0.1, rng=seed)
        detection = detect_watermark(attacked, 1, DEFAULT_KEY, params=params)
        result.add(tau=tau, bias=detection.bias(0),
                   votes=detection.votes(0),
                   confidence=detection.confidence(0))
    return result
