"""Figure 9 — watermark survival to summarization and sampling ("real data").

Panel (a): detected bias vs summarization degree 2..11; panel (b): the
same for sampling.  The paper's curves fall from ~28 to ~10 over the
range, and footnote-5's rule gives a bias of 10 a 99.9%+ true-positive
confidence.

Summarization beyond the embedding's guaranteed resilience
(``active_run_length``) decays faster — EXPERIMENTS.md records the
measured crossover alongside the paper's curve.
"""

from __future__ import annotations

import numpy as np

from repro.core.detector import detect_watermark
from repro.experiments.config import DEFAULT_KEY, irtf_params
from repro.experiments.datasets import marked_irtf
from repro.experiments.runner import ExperimentResult
from repro.transforms.sampling import uniform_random_sampling
from repro.transforms.summarization import summarize

DEGREES = (2, 3, 4, 5, 6, 8, 11)


def run_fig9a(scale: float = 1.0) -> ExperimentResult:
    """Bias vs summarization degree."""
    params = irtf_params()
    marked, _ = marked_irtf()
    marked = np.array(marked)
    degrees = DEGREES if scale >= 0.5 else (2, 5, 11)
    result = ExperimentResult(
        experiment_id="fig9a",
        title="watermark bias vs summarization degree",
        columns=["degree", "bias", "votes", "confidence"],
        paper_expectation=("decreasing bias with increasing degree "
                           "(paper: ~28 at 2 down to ~10 at 11)"))
    for degree in degrees:
        summarized = summarize(marked, degree)
        detection = detect_watermark(summarized, 1, DEFAULT_KEY,
                                     params=params,
                                     transform_degree=float(degree))
        result.add(degree=degree, bias=detection.bias(0),
                   votes=detection.votes(0),
                   confidence=detection.confidence(0))
    return result


def run_fig9b(scale: float = 1.0, seed: int = 91) -> ExperimentResult:
    """Bias vs sampling degree."""
    params = irtf_params()
    marked, _ = marked_irtf()
    marked = np.array(marked)
    degrees = DEGREES if scale >= 0.5 else (2, 5, 11)
    result = ExperimentResult(
        experiment_id="fig9b",
        title="watermark bias vs sampling degree",
        columns=["degree", "bias", "votes", "confidence"],
        paper_expectation=("decreasing bias with increasing degree; a "
                           "bias of 10 already gives >99.9% confidence"))
    for degree in degrees:
        sampled = uniform_random_sampling(marked, degree, rng=seed)
        detection = detect_watermark(sampled, 1, DEFAULT_KEY, params=params,
                                     transform_degree=float(degree))
        result.add(degree=degree, bias=detection.bias(0),
                   votes=detection.votes(0),
                   confidence=detection.confidence(0))
    return result
