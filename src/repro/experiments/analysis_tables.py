"""Sec 5's worked numeric examples as a reproducible table.

The analysis section contains four headline numbers; this module
recomputes each from the implemented closed forms so the benchmark
harness can assert them against the paper:

* ``(2^-15)``-per-extreme false positive (ω = 1, a = 5);
* the "one in a million" degraded-mode Pfp after 20 carrier extremes;
* ``P(15, 10, 21) ≈ 0.85%`` — the bowl-of-balls probability that the
  Sec-5 attack removes every active average of an extreme;
* the ≈ 4.25% extra stream data needed for an equally convincing proof.
"""

from __future__ import annotations

from repro.analysis.attack_math import (
    altered_pair_count,
    attack_success_probability,
    extra_data_fraction,
    prob_all_removed,
)
from repro.core.confidence import (
    confidence_from_bias,
    fp_probability_degraded,
    min_segment_items,
    per_extreme_fp,
)
from repro.experiments.runner import ExperimentResult


def run_analysis_table(scale: float = 1.0) -> ExperimentResult:
    """All Sec-5 worked examples, paper value vs computed value."""
    result = ExperimentResult(
        experiment_id="sec5-analysis",
        title="Sec 5 worked examples (closed forms)",
        columns=["quantity", "paper_value", "computed"],
        paper_expectation="every row should match the paper's number")
    result.add(quantity="per-extreme fp, omega=1, a=5  (2^-15)",
               paper_value=2.0 ** -15,
               computed=per_extreme_fp(5, 1))
    result.add(quantity="degraded Pfp, 20 carrier extremes ('one in a million')",
               paper_value=1e-6,
               computed=fp_probability_degraded(2.0, 100.0, 10.0, 1))
    result.add(quantity="c_m for a=6, a2=50% (removals)",
               paper_value=15.0,
               computed=altered_pair_count(6, 0.5))
    result.add(quantity="P(15,10,21): all active averages destroyed",
               paper_value=0.0085,
               computed=prob_all_removed(15, 10, 21))
    result.add(quantity="attack success prob (a1=5,a=6,a2=a4=50%)",
               paper_value=0.0085,
               computed=attack_success_probability(6, 0.5, 0.5))
    result.add(quantity="extra data needed, a1=5 (4.25%)",
               paper_value=0.0425,
               computed=extra_data_fraction(
                   5, attack_success_probability(6, 0.5, 0.5)))
    result.add(quantity="confidence at detected bias 10 (footnote 5)",
               paper_value=0.999,
               computed=confidence_from_bias(10))
    result.add(quantity="min segment items (eta=100, %=2)",
               paper_value=200.0,
               computed=min_segment_items(100.0, 2))
    return result
