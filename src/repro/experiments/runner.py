"""Result container and table formatting for the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ParameterError


@dataclass
class ExperimentResult:
    """Rows regenerating one paper figure (or panel).

    Attributes
    ----------
    experiment_id:
        e.g. ``"fig7b"`` — matches DESIGN.md's per-experiment index.
    title:
        Human-readable description.
    columns:
        Ordered column names; every row must provide them all.
    rows:
        The measured series.
    paper_expectation:
        One-line statement of the shape/value the paper reports, so the
        printed table is self-judging.
    """

    experiment_id: str
    title: str
    columns: list[str]
    rows: list[dict] = field(default_factory=list)
    paper_expectation: str = ""

    def add(self, **row) -> None:
        """Append a row, validating the column set."""
        missing = set(self.columns) - set(row)
        if missing:
            raise ParameterError(
                f"{self.experiment_id}: row missing columns {sorted(missing)}"
            )
        self.rows.append(row)

    def column(self, name: str) -> list:
        """Extract one column as a list (for assertions on shapes)."""
        if name not in self.columns:
            raise ParameterError(f"unknown column {name!r}")
        return [row[name] for row in self.rows]


def _format_value(value) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) < 1e-3 or abs(value) >= 1e6):
            return f"{value:.3e}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(result: ExperimentResult) -> str:
    """Render an ExperimentResult as an aligned text table."""
    header = [result.columns]
    body = [[_format_value(row[c]) for c in result.columns]
            for row in result.rows]
    widths = [max(len(line[i]) for line in header + body)
              for i in range(len(result.columns))]
    lines = [
        f"== {result.experiment_id}: {result.title} ==",
    ]
    if result.paper_expectation:
        lines.append(f"paper: {result.paper_expectation}")
    lines.append("  ".join(c.ljust(w) for c, w in zip(result.columns,
                                                      widths)))
    lines.append("  ".join("-" * w for w in widths))
    for line in body:
        lines.append("  ".join(v.ljust(w) for v, w in zip(line, widths)))
    return "\n".join(lines)
