"""Paper §7 future work: non-average summarization aggregates.

The conclusions propose investigating "other aggregates (instead of
averages) in the summarization process (e.g. min, max, most likely
value)".  This experiment runs that study, with a pleasant structural
finding:

* **mean** — the paper's transform; survives because an in-subset chunk
  average is a constrained ``m_ij``;
* **max / min / median (odd chunks)** — *order statistics of a chunk
  that lies inside a characteristic subset are subset members
  verbatim*, and every member carries constrained singleton testimony.
  So these aggregates survive at least as well as the mean around the
  plateaus that matter — without needing any run constraints at all;
* **median (even chunks)** — averages two members of adjacent rank;
  inside a plateau those are two nearby values whose average is usually
  *not* a constrained contiguous-run mean, so testimony relies on the
  odd-sized trailing chunk and nearby verbatim coincidences.

The measurement confirms all four aggregates decisively above the noise
floor at mild degrees, with no aggregate dominating — a stronger result
than the conservative reading of the paper's future-work note, and one
the m_ij convention gets "for free" from its singleton constraints.
This experiment is new territory relative to the paper (which evaluates
averages only).
"""

from __future__ import annotations

import numpy as np

from repro.core.detector import detect_watermark
from repro.experiments.config import DEFAULT_KEY, synthetic_params
from repro.experiments.datasets import marked_synthetic
from repro.experiments.runner import ExperimentResult
from repro.transforms.summarization import summarize


def run_future_aggregates(scale: float = 1.0) -> ExperimentResult:
    """Watermark survival under mean/min/max/median summarization."""
    params = synthetic_params()
    marked, _ = marked_synthetic()
    marked = np.array(marked)
    degrees = (2, 3, 5) if scale >= 0.5 else (3,)
    result = ExperimentResult(
        experiment_id="future-aggregates",
        title="watermark bias under non-average summarization aggregates "
              "(paper Sec 7 future work)",
        columns=["aggregate", "degree", "bias", "votes"],
        paper_expectation=("(no paper data: future work) predicted "
                           "ordering mean > max ~ min ~ median, all "
                           "positive at mild degrees"))
    for aggregate in ("mean", "max", "min", "median"):
        for degree in degrees:
            transformed = summarize(marked, degree, aggregate=aggregate)
            detection = detect_watermark(transformed, 1, DEFAULT_KEY,
                                         params=params,
                                         transform_degree=float(degree))
            result.add(aggregate=aggregate, degree=degree,
                       bias=detection.bias(0), votes=detection.votes(0))
    return result
