"""Experiment harness reproducing every figure of the paper's Sec 6.

One module per figure; each exposes a ``run(scale=1.0)`` function
returning an :class:`repro.experiments.runner.ExperimentResult` whose
rows regenerate the figure's series.  The pytest-benchmark files under
``benchmarks/`` are thin wrappers that time these functions and print
the paper-vs-measured tables (recorded in EXPERIMENTS.md).
"""

from repro.experiments.config import (
    DEFAULT_KEY,
    bench_scale,
    irtf_params,
    synthetic_params,
)
from repro.experiments.datasets import (
    marked_irtf,
    marked_synthetic,
    reference_irtf,
    reference_synthetic,
)
from repro.experiments.runner import ExperimentResult, format_table

__all__ = [
    "DEFAULT_KEY",
    "bench_scale",
    "irtf_params",
    "synthetic_params",
    "marked_irtf",
    "marked_synthetic",
    "reference_irtf",
    "reference_synthetic",
    "ExperimentResult",
    "format_table",
]
