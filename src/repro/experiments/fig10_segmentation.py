"""Figure 10 — segmentation and combined transforms ("real data").

Panel (a): detected bias vs recovered segment size — the paper detects
bias 10 (fp ≈ 0.001) from only 2 000 stream values, and bias grows
roughly linearly with segment size.  Panel (b): bias over the combined
sampling × summarization grid — 25% sampling followed by 25%
summarization still yields a decisive bias.

Segments average several random placements per size: a single placement
measures placement luck as much as segment-size behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.core.detector import detect_watermark
from repro.experiments.config import DEFAULT_KEY, irtf_params
from repro.experiments.datasets import marked_irtf
from repro.experiments.runner import ExperimentResult
from repro.transforms.sampling import uniform_random_sampling
from repro.transforms.segmentation import random_segment
from repro.transforms.summarization import summarize
from repro.util.rng import make_rng


def run_fig10a(scale: float = 1.0, seed: int = 101,
               placements: int = 3) -> ExperimentResult:
    """Bias vs recovered segment size."""
    params = irtf_params()
    marked, _ = marked_irtf()
    marked = np.array(marked)
    sizes = (1000, 2000, 3000, 4000, 5000)
    if scale < 0.5:
        sizes = (1000, 3000, 5000)
    rng = make_rng(seed)
    result = ExperimentResult(
        experiment_id="fig10a",
        title="watermark bias vs recovered segment size",
        columns=["segment_size", "bias_mean", "votes_mean", "confidence"],
        paper_expectation=("bias grows with segment size; ~10 at 2000 "
                           "values (fp ~ 0.001)"))
    for size in sizes:
        biases = []
        votes = []
        for _ in range(max(1, placements)):
            piece = random_segment(marked, size, rng=rng)
            detection = detect_watermark(piece, 1, DEFAULT_KEY,
                                         params=params)
            biases.append(detection.bias(0))
            votes.append(detection.votes(0))
        mean_bias = float(np.mean(biases))
        result.add(segment_size=size, bias_mean=mean_bias,
                   votes_mean=float(np.mean(votes)),
                   confidence=min(1.0, max(0.0, 1.0 - 2.0 ** -mean_bias)))
    return result


def run_fig10b(scale: float = 1.0, seed: int = 102) -> ExperimentResult:
    """Bias over the combined sampling x summarization grid.

    Both composition orders are reported.  Summarize-then-sample keeps
    the original adjacency the ``m_ij`` convention relies on (every
    surviving item *is* a constrained average), reproducing the paper's
    "survived equally well".  Sample-then-summarize — the paper's
    phrasing — averages non-adjacent survivors, so only the fraction of
    output items that happen to average adjacent originals testify;
    survival is real but weaker, and EXPERIMENTS.md discusses the gap.
    """
    params = irtf_params()
    marked, _ = marked_irtf()
    marked = np.array(marked)
    degrees = (2, 3, 4)
    if scale < 0.5:
        degrees = (2, 4)
    result = ExperimentResult(
        experiment_id="fig10b",
        title="bias vs combined sampling x summarization",
        columns=["order", "sampling", "summarization", "bias", "votes"],
        paper_expectation=("combination survived (paper: ~20-35 over the "
                           "2..4 grid); adjacency-preserving order "
                           "reproduces it, the other decays faster"))
    for sampling_degree in degrees:
        sampled = uniform_random_sampling(marked, sampling_degree, rng=seed)
        for summarization_degree in degrees:
            rho = float(sampling_degree * summarization_degree)
            combined = summarize(sampled, summarization_degree)
            detection = detect_watermark(combined, 1, DEFAULT_KEY,
                                         params=params,
                                         transform_degree=rho)
            result.add(order="sample-then-summarize",
                       sampling=sampling_degree,
                       summarization=summarization_degree,
                       bias=detection.bias(0), votes=detection.votes(0))
            other = uniform_random_sampling(
                summarize(marked, summarization_degree), sampling_degree,
                rng=seed)
            detection = detect_watermark(other, 1, DEFAULT_KEY,
                                         params=params,
                                         transform_degree=rho)
            result.add(order="summarize-then-sample",
                       sampling=sampling_degree,
                       summarization=summarization_degree,
                       bias=detection.bias(0), votes=detection.votes(0))
    return result
