"""Sec 5's attack model: closed-form prediction vs measured damage.

The paper derives, for Mallory attacking every ``a1``-th extreme with a
ratio ``a2`` of its subset items: the per-extreme kill probability
``P(c_m, active, total)`` and the conclusion that the owner needs about
``a1 · P`` more data for an equally convincing proof.  This experiment
closes the loop the paper leaves open — it *measures* the detected-bias
loss under the implemented attack and prints it beside the theory:

* theory column: expected surviving-bias fraction
  ``1 - P(kill) / a1`` (one in ``a1`` carriers attacked; an attacked
  carrier's bit survives unless all its active averages die);
* measured column: post-attack bias over clean bias.

The measured survival should sit *at or above* the theoretical floor:
the theory charges Mallory nothing for the votes that merely weaken
(lose some averages) without dying, and our detection also benefits
from the robust extreme references the bare analysis ignores.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.attack_math import attack_success_probability
from repro.attacks.extreme_attack import targeted_extreme_attack
from repro.core.detector import detect_watermark
from repro.experiments.config import DEFAULT_KEY, synthetic_params
from repro.experiments.datasets import marked_synthetic
from repro.experiments.runner import ExperimentResult


def run_sec5_attack_model(scale: float = 1.0,
                          seed: int = 51) -> ExperimentResult:
    """Measured vs predicted bias survival under the Sec-5 attack."""
    params = synthetic_params()
    marked, report = marked_synthetic()
    marked = np.array(marked)
    clean_bias = detect_watermark(marked, 1, DEFAULT_KEY,
                                  params=params).bias(0)
    subset_size = max(2, int(round(
        min(report.average_subset_size, params.max_subset_embed))))
    configurations = [(5, 0.5), (5, 1.0), (2, 0.5), (2, 1.0)]
    if scale < 0.5:
        configurations = [(5, 0.5), (2, 1.0)]
    result = ExperimentResult(
        experiment_id="sec5-attack-model",
        title="Sec-5 targeted attack: predicted vs measured bias survival",
        columns=["a1", "a2", "predicted_survival", "measured_survival",
                 "bias"],
        paper_expectation=("measured survival at or above the theoretical "
                           "floor 1 - P(kill)/a1; e.g. a1=5, a2=50% "
                           "costs only ~one percent of the evidence"))
    for a1, a2 in configurations:
        kill = attack_success_probability(subset_size, a2,
                                          active_ratio=1.0)
        predicted = 1.0 - kill / a1
        attacked, _ = targeted_extreme_attack(marked, a1=a1, a2=a2,
                                              rng=seed,
                                              lsb_bits=params.lsb_bits,
                                              prominence=params.prominence,
                                              delta=params.delta)
        bias = detect_watermark(attacked, 1, DEFAULT_KEY,
                                params=params).bias(0)
        measured = bias / clean_bias if clean_bias else 0.0
        result.add(a1=a1, a2=a2, predicted_survival=predicted,
                   measured_survival=measured, bias=bias)
    return result
