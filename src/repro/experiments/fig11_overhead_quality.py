"""Figure 11 — encoding cost and data-quality impact (Sec 6.4).

Panel (a): multi-hash search iterations vs *guaranteed resilience* (the
active-run-length g): the random/exhaustive search of the paper grows as
``2^(ω·c(g))`` — the log-scale straight line of the figure.  We measure
the paper's random search where feasible and report the analytic
expectation everywhere; the pruned backtracking search (the "efficient
pruned-space algorithm" the paper calls for) is measured alongside as
the ablation — its cost is linear in the subset size.

Panel (b): impact on stream mean / standard deviation vs the selection
modulus φ — fewer bit-carrying extremes (larger φ) means less
alteration.  The paper reports mean drift < 0.21% and std drift < 0.27%
at the reference settings.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import stream_stat_drift
from repro.core.embedder import watermark_stream
from repro.core.encoding_multihash import (
    MultihashEncoding,
    active_pairs,
    expected_search_iterations,
)
from repro.core.params import WatermarkParams
from repro.core.quantize import Quantizer
from repro.errors import EncodingSearchExhausted
from repro.experiments.config import DEFAULT_KEY, scaled, synthetic_params
from repro.experiments.datasets import reference_synthetic
from repro.experiments.runner import ExperimentResult
from repro.util.hashing import KeyedHasher


def _measure_iterations(method: str, run_length: int, subset_size: int,
                        trials: int, max_iterations: int) -> "float | None":
    """Mean search iterations over ``trials`` seeded subsets."""
    params = WatermarkParams(active_run_length=run_length,
                             max_subset_embed=subset_size,
                             max_search_iterations=max_iterations)
    quantizer = Quantizer(params.value_bits, params.avg_extra_bits)
    totals = []
    for trial in range(trials):
        hasher = KeyedHasher(f"fig11-key-{trial}")
        encoding = MultihashEncoding(params, quantizer, hasher,
                                     method=method, rng=trial)
        center = 0.25 + 0.01 * trial
        subset = [quantizer.quantize(center + (i - subset_size // 2) * 4e-4)
                  for i in range(subset_size)]
        try:
            outcome = encoding.embed(subset, subset_size // 2,
                                     label=17 + trial, bit=True)
        except EncodingSearchExhausted:
            return None
        totals.append(outcome.iterations)
    return float(np.mean(totals))


def run_fig11a(scale: float = 1.0) -> ExperimentResult:
    """Search iterations vs guaranteed resilience g (a = 6, ω = 1)."""
    subset_size = 6
    max_measured_g = 4 if scale < 1.0 else 5
    if scale >= 2.0:
        max_measured_g = 6
    result = ExperimentResult(
        experiment_id="fig11a",
        title="multi-hash iterations vs guaranteed resilience (a=6, w=1)",
        columns=["resilience_g", "constraints", "expected_random",
                 "measured_random", "measured_pruned"],
        paper_expectation=("random search grows exponentially "
                           "(log-scale straight line, ~10^0.5..10^6.5); "
                           "the pruned search stays near-linear"))
    for g in range(1, 7):
        constraints = len(active_pairs(subset_size, g))
        expected = expected_search_iterations(subset_size, g, 1)
        measured_random = None
        if g <= max_measured_g:
            trials = 3 if g <= 3 else 1
            measured_random = _measure_iterations(
                "random", g, subset_size, trials,
                max_iterations=int(max(10_000, expected * 16)))
        measured_pruned = _measure_iterations(
            "pruned", g, subset_size, trials=3, max_iterations=500_000)
        result.add(resilience_g=g, constraints=constraints,
                   expected_random=expected,
                   measured_random=(-1.0 if measured_random is None
                                    else measured_random),
                   measured_pruned=(-1.0 if measured_pruned is None
                                    else measured_pruned))
    return result


def run_fig11b(scale: float = 1.0) -> ExperimentResult:
    """Mean/std alteration vs φ (impact shrinks as fewer extremes carry)."""
    stream = np.array(reference_synthetic(scaled(8000, scale, 2000)))
    result = ExperimentResult(
        experiment_id="fig11b",
        title="mean/std alteration (%) vs phi",
        columns=["phi", "mean_drift_pct", "std_drift_pct",
                 "altered_items"],
        paper_expectation=("drift well below 1% and decreasing with phi "
                           "(paper: <0.21% mean, <0.27% std)"))
    for phi in (2, 3, 4, 5, 6, 7, 8):
        params = synthetic_params().with_updates(phi=phi)
        marked, report = watermark_stream(stream, "1", DEFAULT_KEY,
                                          params=params)
        drift = stream_stat_drift(stream, marked)
        result.add(phi=phi,
                   mean_drift_pct=100.0 * drift["mean_drift_rel"],
                   std_drift_pct=100.0 * drift["std_drift_rel"],
                   altered_items=report.altered_items)
    return result
