"""Sec 6.4 — per-item processing overhead of the encodings.

The paper compares watermarking throughput against a *read-and-copy*
model (each item read and written downstream at fixed cost) and reports
per-item overheads of about +5.7% for the initial encoding and around
+1000% for the full multi-hash routine, decaying exponentially as the
guaranteed resilience decreases.

We reproduce the same protocol: identical stream, identical window
machinery, encoding swapped.  The pruned multi-hash search — this
library's default — is measured alongside to quantify how much of the
exponential cost the paper's "future work" search eliminates.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.embedder import StreamWatermarker
from repro.experiments.config import DEFAULT_KEY, scaled, synthetic_params
from repro.experiments.datasets import reference_synthetic
from repro.experiments.runner import ExperimentResult


def _read_and_copy(values: np.ndarray) -> float:
    """The baseline: read each item, append it to the output."""
    start = time.perf_counter()
    out: list[float] = []
    for value in values:
        out.append(float(value))
    elapsed = time.perf_counter() - start
    if len(out) != len(values):  # defensive: keep the loop un-elided
        raise RuntimeError("copy loop lost items")
    return elapsed


def _embed_time(values: np.ndarray, encoding: str,
                encoding_options: "dict | None" = None,
                active_run_length: "int | None" = None,
                max_subset_embed: "int | None" = None) -> float:
    params = synthetic_params()
    updates: dict = {}
    if active_run_length is not None:
        updates["active_run_length"] = active_run_length
    if max_subset_embed is not None:
        updates["max_subset_embed"] = max_subset_embed
    if updates:
        params = params.with_updates(**updates)
    embedder = StreamWatermarker("1", DEFAULT_KEY, params=params,
                                 encoding=encoding,
                                 encoding_options=encoding_options or {})
    start = time.perf_counter()
    embedder.run(np.array(values))
    return time.perf_counter() - start


def run_throughput(scale: float = 1.0) -> ExperimentResult:
    """Per-item cost of each encoding vs the read-and-copy baseline.

    The random (exhaustive) multi-hash configurations cap the subset at
    5 items: with the default 12-item subsets their expected cost is
    ``2^23`` iterations per extreme — the exponential blow-up Fig 11(a)
    quantifies — which is exactly why the paper's full routine measured
    ~+1000% and why the pruned search exists.
    """
    stream = reference_synthetic(scaled(6000, scale, 1500))
    n = len(stream)
    baseline = _read_and_copy(np.array(stream))
    configurations = [
        ("initial", "initial", None, None, None),
        ("quadres", "quadres", {"n_prefixes": 2}, None, None),
        ("multihash-pruned-g6", "multihash", {"method": "pruned"}, 6, None),
        ("multihash-pruned-g3", "multihash", {"method": "pruned"}, 3, None),
        ("multihash-random-g2", "multihash", {"method": "random"}, 2, 5),
    ]
    if scale >= 1.0:
        configurations.append(
            ("multihash-random-g3", "multihash", {"method": "random"}, 3, 5))
    result = ExperimentResult(
        experiment_id="throughput",
        title="per-item overhead vs read-and-copy baseline (Sec 6.4)",
        columns=["configuration", "seconds", "us_per_item", "overhead_pct"],
        paper_expectation=("initial fastest (paper: +5.7%); exhaustive "
                           "multi-hash orders of magnitude dearer "
                           "(paper: +1000%), decaying with resilience; "
                           "the pruned search collapses the gap"))
    result.add(configuration="read-and-copy", seconds=baseline,
               us_per_item=1e6 * baseline / n, overhead_pct=0.0)
    for name, encoding, options, run_length, subset_cap in configurations:
        elapsed = _embed_time(np.array(stream), encoding, options,
                              run_length, subset_cap)
        result.add(configuration=name, seconds=elapsed,
                   us_per_item=1e6 * elapsed / n,
                   overhead_pct=100.0 * (elapsed - baseline) / baseline)
    return result
