"""Sec 6.4 — per-item processing overhead of the encodings.

The paper compares watermarking throughput against a *read-and-copy*
model (each item read and written downstream at fixed cost) and reports
per-item overheads of about +5.7% for the initial encoding and around
+1000% for the full multi-hash routine, decaying exponentially as the
guaranteed resilience decreases.

We reproduce the same protocol: identical stream, identical window
machinery, encoding swapped.  The pruned multi-hash search — this
library's default — is measured alongside to quantify how much of the
exponential cost the paper's "future work" search eliminates.

The primary metric is **µs/item**: it is directly comparable across
machines of similar class and across this repository's history.
``overhead_pct`` is computed against a *per-item forwarding* baseline
(read one item, write one item, in Python — the paper's cost model),
never against a vectorized memcpy, which would inflate overheads by the
interpreter/vectorization gap instead of measuring the watermarking
work.

Harness mode
------------
:func:`throughput_json` turns a measured run into the machine-readable
``BENCH_throughput.json`` payload (µs/item plus speedup over the seed
revision's recorded figures), and :func:`reference_check` verifies that
embed/detect outputs are bit-identical to the recorded reference — the
CI benchmark smoke job fails on drift.  Run standalone with::

    python -m repro.experiments.throughput --scale 0.25 \
        --json benchmarks/results/BENCH_throughput.json \
        --check benchmarks/results/reference_bits.json
"""

from __future__ import annotations

import hashlib
import json
import time

import numpy as np

from repro.core.detector import detect_watermark
from repro.core.embedder import StreamWatermarker, watermark_stream
from repro.experiments.config import DEFAULT_KEY, scaled, synthetic_params
from repro.experiments.datasets import reference_synthetic
from repro.experiments.runner import ExperimentResult

#: µs/item recorded by the seed revision (benchmarks/results/throughput.txt
#: at the pre-vectorization commit); ``speedup_vs_seed`` in
#: BENCH_throughput.json is measured against these.
SEED_US_PER_ITEM = {
    "read-and-copy": 0.0679,
    "initial": 2.889,
    "quadres": 8.5855,
    "multihash-pruned-g6": 48.9845,
    "multihash-pruned-g3": 10.8362,
    "multihash-random-g2": 113.5435,
    "multihash-random-g3": 1082.2902,
}


#: (row name, encoding, options, active_run_length, max_subset_embed) for
#: every configuration the throughput table measures; kept addressable by
#: name so the speedup-floor gate can re-measure an individual row.
BENCH_CONFIGURATIONS = (
    ("initial", "initial", None, None, None),
    ("quadres", "quadres", {"n_prefixes": 2}, None, None),
    ("multihash-pruned-g6", "multihash", {"method": "pruned"}, 6, None),
    ("multihash-pruned-g3", "multihash", {"method": "pruned"}, 3, None),
    ("multihash-random-g2", "multihash", {"method": "random"}, 2, 5),
)

#: The exhaustive random-g3 row only runs at full scale (its expected
#: cost per extreme is what Fig 11(a) calls exponential).
BENCH_CONFIGURATION_FULL_SCALE = (
    "multihash-random-g3", "multihash", {"method": "random"}, 3, 5)

#: Rows whose ``speedup_vs_seed`` the ``--assert-speedups`` gate checks
#: (the batched-encoding hot paths; ``initial`` predates them).
SPEEDUP_GATED_ROWS = ("quadres", "multihash-pruned-g6",
                      "multihash-pruned-g3", "multihash-random-g2",
                      "multihash-random-g3")


def machine_calibration(n_items: int = 6000) -> float:
    """µs/item of the *seed revision's* baseline loop on this machine.

    ``SEED_US_PER_ITEM`` are absolute figures from the (idle) machine
    that recorded them; dividing this measurement by
    ``SEED_US_PER_ITEM["read-and-copy"]`` (the same loop, same code)
    yields a machine-speed factor that keeps speedup regression guards
    hardware-independent.  Measured in process time, like every
    compute-bound figure in this module, so background load on a
    shared host does not read as a slow machine.
    """
    values = np.arange(n_items, dtype=np.float64)
    best = float("inf")
    for _ in range(3):
        start = time.process_time()
        out: list[float] = []
        for value in values:  # the seed's boxed per-item loop, verbatim
            out.append(float(value))
        best = min(best, time.process_time() - start)
        if len(out) != n_items:  # defensive: keep the loop un-elided
            raise RuntimeError("calibration loop lost items")
    return 1e6 * best / n_items


def _read_and_copy(values: np.ndarray) -> float:
    """Per-item forwarding baseline: read each item, write it downstream.

    This is deliberately a per-item Python loop over unboxed floats —
    the paper's fixed read-and-write cost per item — so ``overhead_pct``
    measures the watermarking work, not Python-vs-NumPy dispatch.
    Best-of-3, like the embed timings.
    """
    items = values.tolist()
    best = float("inf")
    for _ in range(3):
        start = time.process_time()
        out: list[float] = []
        append = out.append
        for value in items:
            append(value)
        best = min(best, time.process_time() - start)
        if len(out) != len(items):  # defensive: keep the loop un-elided
            raise RuntimeError("copy loop lost items")
    return best


def _embed_time(values: np.ndarray, encoding: str,
                encoding_options: "dict | None" = None,
                active_run_length: "int | None" = None,
                max_subset_embed: "int | None" = None) -> float:
    """Best-of-up-to-3 CPU embed time for one configuration.

    Timing-harness practice: the minimum over repetitions estimates the
    true cost with the least scheduler/frequency noise, and process
    time (these loops never sleep) keeps a busy co-tenant on a shared
    host from inflating the figure further.  Configurations whose
    single run already exceeds a second (the exhaustive multi-hash
    searches) are measured once — their cost dwarfs the noise floor.
    """
    params = synthetic_params()
    updates: dict = {}
    if active_run_length is not None:
        updates["active_run_length"] = active_run_length
    if max_subset_embed is not None:
        updates["max_subset_embed"] = max_subset_embed
    if updates:
        params = params.with_updates(**updates)
    best = float("inf")
    for _ in range(3):
        embedder = StreamWatermarker("1", DEFAULT_KEY, params=params,
                                     encoding=encoding,
                                     encoding_options=encoding_options or {})
        start = time.process_time()
        embedder.run(np.array(values))
        best = min(best, time.process_time() - start)
        if best > 1.0:
            break
    return best


def run_throughput(scale: float = 1.0, sweeps: int = 3) -> ExperimentResult:
    """Per-item cost of each encoding vs the forwarding baseline.

    The random (exhaustive) multi-hash configurations cap the subset at
    5 items: with the default 12-item subsets their expected cost is
    ``2^23`` iterations per extreme — the exponential blow-up Fig 11(a)
    quantifies — which is exactly why the paper's full routine measured
    ~+1000% and why the pruned search exists.

    Each configuration is measured in ``sweeps`` full passes over the
    whole table, keeping the per-row *minimum*.  Consecutive
    repetitions (what :func:`_embed_time` already does within a pass)
    sample a single machine phase; burstable hosts swing their
    effective frequency on a tens-of-seconds timescale, so spreading a
    row's repetitions across sweeps gives every row an independent shot
    at an undisturbed phase.  The workloads are deterministic, so the
    minimum estimates true cost — repetition can only shed noise, never
    manufacture speed.  The forwarding baseline is swept the same way
    (it is just as frequency-sensitive as the rows it normalizes).
    """
    stream = reference_synthetic(scaled(6000, scale, 1500))
    n = len(stream)
    # Warm the scan path once (ufunc dispatch caches, adaptive-
    # interpreter specialization) so every configuration measures
    # steady-state per-item cost — the regime streaming middleware
    # actually runs in — rather than first-call warmup noise.
    _embed_time(np.array(stream[:min(n, 1500)]), "initial")
    configurations = list(BENCH_CONFIGURATIONS)
    if scale >= 1.0:
        configurations.append(BENCH_CONFIGURATION_FULL_SCALE)
    values = np.array(stream)
    baseline = float("inf")
    elapsed_by_name: "dict[str, float]" = {}
    for _ in range(max(1, sweeps)):
        baseline = min(baseline, _read_and_copy(values))
        for name, encoding, options, run_length, subset_cap in \
                configurations:
            elapsed = _embed_time(values, encoding, options,
                                  run_length, subset_cap)
            previous = elapsed_by_name.get(name)
            if previous is None or elapsed < previous:
                elapsed_by_name[name] = elapsed
    result = ExperimentResult(
        experiment_id="throughput",
        title="µs/item per encoding; overhead vs per-item forwarding "
              "(Sec 6.4)",
        columns=["configuration", "us_per_item", "overhead_pct",
                 "speedup_vs_seed", "seconds"],
        paper_expectation=("initial fastest (paper: +5.7%); exhaustive "
                           "multi-hash orders of magnitude dearer "
                           "(paper: +1000%), decaying with resilience; "
                           "the pruned search collapses the gap"))

    def speedup(name: str, us_per_item: float) -> float:
        seed = SEED_US_PER_ITEM.get(name)
        if seed is None or us_per_item <= 0:
            return 1.0
        return seed / us_per_item

    base_us = 1e6 * baseline / n
    result.add(configuration="read-and-copy", seconds=baseline,
               us_per_item=base_us, overhead_pct=0.0,
               speedup_vs_seed=speedup("read-and-copy", base_us))
    for name, _, _, _, _ in configurations:
        elapsed = elapsed_by_name[name]
        us_per_item = 1e6 * elapsed / n
        result.add(configuration=name, seconds=elapsed,
                   us_per_item=us_per_item,
                   overhead_pct=100.0 * (elapsed - baseline) / baseline,
                   speedup_vs_seed=speedup(name, us_per_item))
    return result


def throughput_json(result: ExperimentResult, scale: float = 1.0,
                    hub_soak: "dict | None" = None,
                    remote_loopback: "dict | None" = None,
                    detect_parallel: "dict | None" = None,
                    metrics_overhead: "dict | None" = None,
                    loadgen_churn: "dict | None" = None,
                    chaos_soak: "dict | None" = None) -> dict:
    """The ``BENCH_throughput.json`` payload for a measured run."""
    encodings = {}
    for row in result.rows:
        name = row["configuration"]
        encodings[name] = {
            "us_per_item": round(row["us_per_item"], 4),
            "overhead_pct": round(row["overhead_pct"], 2),
            "seed_us_per_item": SEED_US_PER_ITEM.get(name),
            "speedup_vs_seed": round(row["speedup_vs_seed"], 2),
        }
    payload = {
        "benchmark": "throughput",
        "scale": scale,
        "primary_metric": "us_per_item",
        "baseline": "per-item forwarding loop",
        "encodings": encodings,
    }
    if hub_soak is not None:
        payload["hub_soak"] = hub_soak
    if remote_loopback is not None:
        payload["remote_loopback"] = remote_loopback
    if detect_parallel is not None:
        payload["detect_parallel"] = detect_parallel
    if metrics_overhead is not None:
        payload["metrics_overhead"] = metrics_overhead
    if loadgen_churn is not None:
        payload["loadgen_churn"] = loadgen_churn
    if chaos_soak is not None:
        payload["chaos_soak"] = chaos_soak
    return payload


# ----------------------------------------------------------------------
# multi-tenant hub soak
# ----------------------------------------------------------------------
def run_hub_soak(n_streams: int = 1000, chunk: int = 64,
                 batches: int = 4) -> dict:
    """Hub µs/item vs single-session µs/item at identical chunking.

    The soak pushes ``n_streams * batches`` chunks of ``chunk`` items.
    The single-session baseline ingests them sequentially into **one**
    :class:`~repro.pipeline.ProtectionSession`; the hub run routes the
    same chunks round-robin across ``n_streams`` independently-keyed
    sessions (the multi-tenant regime: every push lands on a different
    window, labeler and hasher).  Both paths therefore execute the same
    number of pushes over the same number of items through the same
    vectorized scan, so the ratio isolates the cost of multiplexing —
    routing, stats, LRU bookkeeping plus the cache pressure of a
    thousand live windows.  The regression guard in
    ``benchmarks/test_throughput.py`` holds the ratio at <= 1.5x.
    """
    from repro.hub import StreamHub
    from repro.pipeline import ProtectionSession

    params = synthetic_params()
    total = n_streams * batches * chunk
    data = np.asarray(reference_synthetic(total))
    chunks = [data[start:start + chunk]
              for start in range(0, total, chunk)]

    # -- single-session baseline: same pushes, one stream --------------
    single = ProtectionSession("1", DEFAULT_KEY, params=params,
                               encoding="initial")
    start_time = time.process_time()
    for piece in chunks:
        single.feed(piece)
    single.finish()
    single_seconds = time.process_time() - start_time

    # -- hub: same pushes, fanned over n_streams tenants ---------------
    hub = StreamHub()
    for i in range(n_streams):
        hub.protect(f"sensor-{i}", "1", b"tenant-%d" % i,
                    params=params, encoding="initial")
    ids = [f"sensor-{i}" for i in range(n_streams)]
    routed = [(ids[i % n_streams], piece)
              for i, piece in enumerate(chunks)]
    start_time = time.process_time()
    for stream_id, piece in routed:
        hub.push(stream_id, piece)
    for stream_id in ids:
        hub.finish(stream_id)
    hub_seconds = time.process_time() - start_time

    single_us = 1e6 * single_seconds / total
    hub_us = 1e6 * hub_seconds / total
    return {
        "n_streams": n_streams,
        "chunk": chunk,
        "batches_per_stream": batches,
        "items": total,
        "encoding": "initial",
        "single_session_us_per_item": round(single_us, 4),
        "hub_us_per_item": round(hub_us, 4),
        "hub_overhead_ratio": round(hub_us / single_us, 3)
        if single_us > 0 else 1.0,
    }


# ----------------------------------------------------------------------
# observability pricing: enabled metrics vs the null registry
# ----------------------------------------------------------------------
def run_metrics_overhead(n_items: int = 120000, chunk: int = 512,
                         repeats: int = 5) -> dict:
    """µs/item cost of an *enabled* registry on the hub push path.

    The same chunks are pushed through two hubs running the ``initial``
    encoding: one with metrics off (the default — push skips straight
    past the null instruments) and one reporting into an enabled
    :class:`~repro.obs.MetricsRegistry` (three counter increments, one
    histogram observation and two clock reads per push, all amortized
    over ``chunk`` items).  Process time, minimum over ``repeats``
    *interleaved* off/on sweeps after a discarded warmup pass — the
    instrument cost is ~1-2 µs per push, far below the swing a
    burstable host's frequency phases induce between two back-to-back
    measurements, so pairing the sides per phase is what makes the
    ratio mean anything.  The regression guard in
    ``benchmarks/test_throughput.py`` holds it at <= 1.05 —
    "near-zero cost" is a measured claim, not a slogan.
    """
    from repro.hub import StreamHub
    from repro.obs import MetricsRegistry

    params = synthetic_params()
    data = np.asarray(reference_synthetic(n_items))
    chunks = [data[start:start + chunk]
              for start in range(0, n_items, chunk)]

    def measure_once(metrics) -> float:
        hub = StreamHub(metrics=metrics)
        hub.protect("bench", "1", DEFAULT_KEY, params=params,
                    encoding="initial")
        cpu0 = time.process_time()
        for piece in chunks:
            hub.push("bench", piece)
        hub.finish("bench")
        return time.process_time() - cpu0

    measure_once(None)  # warmup: ufunc dispatch + specialization
    off_seconds = on_seconds = float("inf")
    for _ in range(max(1, repeats)):
        off_seconds = min(off_seconds, measure_once(None))
        on_seconds = min(on_seconds, measure_once(MetricsRegistry()))
    off_us = 1e6 * off_seconds / n_items
    on_us = 1e6 * on_seconds / n_items
    return {
        "items": n_items,
        "chunk": chunk,
        "encoding": "initial",
        "disabled_us_per_item": round(off_us, 4),
        "enabled_us_per_item": round(on_us, 4),
        "overhead_ratio": round(on_us / off_us, 4) if off_us > 0 else 1.0,
        "overhead_pct": round(100.0 * (on_us - off_us) / off_us, 2)
        if off_us > 0 else 0.0,
    }


def run_loadgen_churn(workers: int = 6, pushes: int = 10,
                      chunk: int = 256, crash_every: int = 3) -> dict:
    """The churn scenario at bench size (see :mod:`repro.obs.loadgen`).

    Spawns an in-process server, drives ``workers`` concurrent clients
    that crash and resume on cadence, and reports the feed round-trip
    latency histogram (p50/p95/p99 ms) plus throughput — the
    ``loadgen_churn`` row of ``BENCH_throughput.json``.  Exactly-once
    delivery under churn is part of the measurement: any conservation
    failure surfaces in ``verify_failures`` and fails the bench.
    """
    from repro.obs.loadgen import run_loadgen

    return run_loadgen(workers=workers, pushes=pushes, chunk=chunk,
                       crash_every=crash_every, verify_bits=True)


def run_chaos_soak(workers: int = 3, pushes: int = 12, chunk: int = 128,
                   crash_every: int = 4, seed: int = 1104) -> dict:
    """Supervised serving under a seeded fault plan: the resilience gate.

    Spawns ``repro supervise`` around a ``repro serve`` child running
    with a seeded chaos plan (connection resets, torn checkpoint
    writes, transient store EIO, forced process crashes), then drives
    the churn fleet at it through a chaos-wrapped *client* transport
    (latency, resets, mid-frame truncation) with a generous
    :class:`~repro.chaos.RetryPolicy`.  The soak proves the robustness
    contract end to end: the supervisor restarts every forced crash
    with ``--recover``, resumed streams replay exactly the missing
    suffix, and every worker's released output is **bit-identical** to
    a fault-free local embed of the same items —
    ``verify_failures == 0`` means zero stream loss *and*
    bit-identity.  The summary is the ``chaos_soak`` row of
    ``BENCH_throughput.json``.
    """
    import os
    import shutil
    import signal
    import socket
    import subprocess
    import sys
    import tempfile
    import threading

    from repro import chaos
    from repro.obs.loadgen import run_loadgen

    workdir = tempfile.mkdtemp(prefix="repro-chaos-soak-")
    plan = chaos.FaultPlan(
        seed=seed,
        client_transport=chaos.TransportFaults(
            latency_rate=0.05, latency_ms=(0.1, 0.8),
            reset_rate=0.02, truncate_rate=0.01),
        server_transport=chaos.TransportFaults(reset_rate=0.01),
        store=chaos.StoreFaults(torn_write_rate=0.05,
                                io_error_rate=0.05),
        process=chaos.ProcessFaults(crash_after_pushes=(6, 10)),
    )
    plan_path = os.path.join(workdir, "plan.json")
    plan.dump(plan_path)
    faults_path = os.path.join(workdir, "faults.jsonl")
    store_dir = os.path.join(workdir, "store")

    # A fixed port, unlike the ``--port 0`` benches: the child must
    # come back on the *same* address after every crash or the fleet's
    # redials would land in the void.
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()

    supervisor = subprocess.Popen(
        [sys.executable, "-m", "repro", "supervise",
         "--max-restarts", "100", "--restart-window", "300",
         "--backoff-base", "0.05", "--backoff-max", "0.2", "--",
         "--port", str(port), "--store", store_dir,
         "--chaos", plan_path, "--chaos-log", faults_path, "--json"],
        stdout=subprocess.PIPE, text=True)
    lines: "list[str]" = []
    ready = threading.Event()

    def _drain() -> None:
        for line in supervisor.stdout:
            lines.append(line)
            if '"serving"' in line:
                ready.set()
        ready.set()  # EOF unblocks the waiter even on startup failure

    reader = threading.Thread(target=_drain, daemon=True)
    reader.start()
    try:
        if not ready.wait(timeout=30) or supervisor.poll() is not None:
            raise RuntimeError(
                "supervised chaos server never came up:\n"
                + "".join(lines))
        chaos.install(plan, inner="tcp", side="client")
        try:
            summary = run_loadgen(
                workers=workers, pushes=pushes, chunk=chunk,
                crash_every=crash_every, host="127.0.0.1", port=port,
                transport="chaos", verify_bits=True,
                retry=chaos.RetryPolicy(attempts=200, base_delay=0.02,
                                        max_delay=0.25, deadline=120.0,
                                        op_timeout=15.0))
        finally:
            chaos.uninstall()
    finally:
        supervisor.send_signal(signal.SIGTERM)
        try:
            returncode = supervisor.wait(timeout=30)
        except subprocess.TimeoutExpired:  # pragma: no cover - hang guard
            supervisor.kill()
            returncode = supervisor.wait(timeout=10)
        reader.join(timeout=10)
        supervisor.stdout.close()

    starts = crashes = 0
    for line in lines:
        try:
            event = json.loads(line)
        except ValueError:
            continue
        if event.get("event") != "supervisor":
            continue
        if event.get("action") == "start":
            starts += 1
        elif event.get("action") == "exit" and event.get("returncode"):
            crashes += 1
    fault_events = 0
    if os.path.exists(faults_path):
        with open(faults_path) as handle:
            fault_events = sum(1 for raw in handle if raw.strip())
    shutil.rmtree(workdir, ignore_errors=True)
    return {
        "seed": seed,
        "workers": workers,
        "pushes_per_stream": pushes,
        "chunk": chunk,
        "crash_every": crash_every,
        "items": summary["items"],
        "pushes": summary["pushes"],
        "client_crashes": summary["crashes"],
        "resumes": summary["resumes"],
        "reconnects": summary["reconnects"],
        "verify_failures": summary["verify_failures"],
        "worker_errors": summary["worker_errors"],
        "server_crashes": crashes,
        "supervisor_restarts": max(starts - 1, 0),
        "supervisor_returncode": returncode,
        "fault_events": fault_events,
        "elapsed_seconds": summary["elapsed_seconds"],
        "items_per_s": summary["items_per_s"],
        "push_ms": summary["push_ms"],
    }


# ----------------------------------------------------------------------
# remote loopback: the network serving layer vs the in-process hub
# ----------------------------------------------------------------------

#: The transport x wire cells the loopback bench prices.  ``tcp-binary``
#: is the headline (the regression guard and the top-level ratio);
#: ``tcp-json`` shows what negotiation buys; ``websocket-binary``
#: prices the RFC 6455 framing on the same codec.
LOOPBACK_SCENARIOS = (("tcp", "json"), ("tcp", "binary"),
                      ("websocket", "binary"))


def _proc_cpu_seconds(pid: int) -> "float | None":
    """CPU seconds (user + system) a live process has consumed.

    Read from ``/proc/<pid>/stat`` so a scenario can snapshot the
    serve subprocess around each repeat without cooperation from the
    server.  Returns ``None`` where procfs is unavailable (non-Linux),
    in which case callers fall back to wall-clock accounting.
    """
    import os

    try:
        with open(f"/proc/{pid}/stat", "rb") as handle:
            fields = handle.read().rsplit(b") ", 1)[1].split()
        ticks = int(fields[11]) + int(fields[12])
        return ticks / os.sysconf("SC_CLK_TCK")
    except (OSError, ValueError, IndexError):  # pragma: no cover
        return None


def _loopback_scenario(data: np.ndarray, chunk: int, params,
                       transport: str, wire: str,
                       repeats: int = 3) -> dict:
    """One serving-stack measurement: CPU + wall seconds + counters.

    The server runs as a separate ``repro serve`` **process** — the
    deployment shape — so the measurement prices the protocol and the
    kernel, not artificial GIL contention between a client thread and a
    server thread sharing one interpreter.  The whole stream is handed
    to :meth:`RemoteSession.feed` in one call, so the client splits it
    into ``chunk``-item pushes and keeps the server's full credit
    window in flight — the pipelined regime a fleet feeder runs in,
    where loopback RTTs overlap the scan instead of serializing with
    it.

    The headline cost is **CPU seconds** (client process time plus the
    server's procfs utime+stime delta): on a shared host, wall clock
    prices whichever neighbour burst through during the run, while CPU
    time prices the code — and the two converge on an otherwise idle
    core anyway.  Wall seconds ride along for context.  Best of
    ``repeats`` passes, like the embed timings.
    """
    import signal
    import subprocess
    import sys

    from repro.server.client import RemoteClient

    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--transport", transport, "--checkpoint-every", "0",
         "--credits", "8"],
        stdout=subprocess.PIPE, text=True)
    try:
        ready = json.loads(server.stdout.readline())
        host = ready["serving"]["host"]
        port = ready["serving"]["port"]
        best_cpu = best_wall = float("inf")
        stats = None
        for attempt in range(repeats):
            with RemoteClient(host, port, push_items=chunk,
                              transport=transport, wire=wire) as client:
                session = client.protect(f"bench-{attempt}", "1",
                                         DEFAULT_KEY, params=params,
                                         encoding="initial")
                server_cpu0 = _proc_cpu_seconds(server.pid)
                wall0 = time.perf_counter()
                cpu0 = time.process_time()
                session.feed(data)
                session.finish()
                cpu = time.process_time() - cpu0
                wall = time.perf_counter() - wall0
                server_cpu1 = _proc_cpu_seconds(server.pid)
                if server_cpu0 is not None and server_cpu1 is not None:
                    cpu += server_cpu1 - server_cpu0
                else:  # pragma: no cover - no procfs
                    cpu = wall
                if cpu < best_cpu:
                    best_cpu = cpu
                    best_wall = wall
                    stats = client._async.wire_stats()
    finally:
        server.send_signal(signal.SIGTERM)
        try:
            server.wait(timeout=30)
        except subprocess.TimeoutExpired:  # pragma: no cover - hang guard
            server.kill()
            server.wait(timeout=10)
        server.stdout.close()
    return {"cpu_seconds": best_cpu, "wall_seconds": best_wall,
            "stats": stats}


def run_remote_loopback(n_items: int = 200000, chunk: int = 16000,
                        scenarios=LOOPBACK_SCENARIOS,
                        repeats: int = 3) -> dict:
    """CPU µs/item through ``repro serve`` vs the in-process hub.

    One protection stream is fed in identical ``chunk``-item pushes
    into a :class:`~repro.hub.StreamHub` directly, then through a
    ``repro serve`` subprocess on 127.0.0.1 once per ``(transport,
    wire)`` scenario.  Each scenario's ratio prices that serving
    configuration — framing, payload encoding, loopback round trips,
    credit bookkeeping — on top of the same scan, and its
    ``bytes_on_wire`` / ``frames_sent`` counters (from the client's
    codec-level accounting) make the codec wins visible next to the
    timings.  All figures are **CPU seconds** (baseline: process time;
    scenarios: client process time + server procfs delta) so a noisy
    neighbour on a shared host cannot masquerade as protocol overhead;
    ``wall_us_per_item`` rides along per scenario for context.
    Checkpointing is off on both sides so the comparison isolates
    serving cost, pushes carry ``chunk`` items so per-frame costs
    amortize the way a fleet feeder's credit window does, and both the
    baseline and every scenario take the best of ``repeats`` passes so
    the ratios compare floors, not scheduler noise.  The top-level
    ``remote_us_per_item`` / ``remote_overhead_ratio`` track the
    ``tcp-binary`` scenario — the production path the regression guard
    holds at <= 2.0x.
    """
    from repro.hub import StreamHub

    params = synthetic_params()
    data = np.asarray(reference_synthetic(n_items))
    chunks = [data[start:start + chunk]
              for start in range(0, n_items, chunk)]

    # -- in-process hub baseline ---------------------------------------
    hub_seconds = float("inf")
    for attempt in range(repeats):
        hub = StreamHub()
        hub.protect("bench", "1", DEFAULT_KEY, params=params,
                    encoding="initial")
        cpu0 = time.process_time()
        for piece in chunks:
            hub.push("bench", piece)
        hub.finish("bench")
        hub_seconds = min(hub_seconds, time.process_time() - cpu0)
    hub_us = 1e6 * hub_seconds / n_items

    # -- the same pushes through each serving configuration ------------
    measured = {}
    for transport, wire in scenarios:
        run = _loopback_scenario(data, chunk, params, transport, wire,
                                 repeats=repeats)
        us = 1e6 * run["cpu_seconds"] / n_items
        stats = run["stats"]
        measured[f"{transport}-{wire}"] = {
            "transport": transport,
            "wire": stats["wire"],
            "us_per_item": round(us, 4),
            "wall_us_per_item": round(
                1e6 * run["wall_seconds"] / n_items, 4),
            "overhead_ratio": round(us / hub_us, 3) if hub_us > 0 else 1.0,
            "bytes_on_wire": stats["bytes_sent"] + stats["bytes_received"],
            "frames_sent": stats["frames_sent"],
            "frames_received": stats["frames_received"],
        }

    headline = measured.get("tcp-binary") \
        or next(iter(measured.values()))
    return {
        "items": n_items,
        "chunk": chunk,
        "encoding": "initial",
        "inprocess_hub_us_per_item": round(hub_us, 4),
        "remote_us_per_item": headline["us_per_item"],
        "remote_overhead_ratio": headline["overhead_ratio"],
        "scenarios": measured,
    }


# ----------------------------------------------------------------------
# bit-identity reference (CI benchmark smoke job)
# ----------------------------------------------------------------------
_REFERENCE_N = 3000
_REFERENCE_WATERMARK = "101"


def run_detect_parallel(n_items: int = 140000, workers: int = 4) -> dict:
    """Span-parallel detection scaling scenario (wall-clock).

    One marked stream is cut into ``workers`` contiguous spans; the
    *same* task list is detected serially and through the process pool,
    so the measured ratio isolates pool scaling (fork + pickle overhead
    against parallel scan time) from any span-boundary effect.  The
    merged results of both runs must be *identical* — that is the
    bucket merge law under test — and is reported as ``merge_exact``.

    Wall-clock (``perf_counter``) is the right clock here: the pool's
    work happens in child processes, which ``process_time`` would not
    see.  ``speedup`` only means scaling on a machine with at least
    ``workers`` cores; ``cpu_count`` is recorded so consumers can gate
    on it (a 1-core container legitimately reports ~1x).
    """
    import os

    from repro.core.parallel_detect import (DetectionTask, merge_results,
                                            run_tasks, split_spans)

    params = synthetic_params()
    stream = np.array(reference_synthetic(n_items))
    marked, _ = watermark_stream(stream, "1", DEFAULT_KEY, params=params)
    ranges = split_spans(len(marked), workers,
                         min_span=8 * params.window_size)
    tasks = [DetectionTask(values=marked[start:end], wm_length=1,
                           key=DEFAULT_KEY, params=params)
             for (start, end) in ranges]
    start_t = time.perf_counter()
    serial_parts = run_tasks(tasks, workers=None)
    serial_s = time.perf_counter() - start_t
    start_t = time.perf_counter()
    parallel_parts = run_tasks(tasks, workers=workers)
    parallel_s = time.perf_counter() - start_t
    merged_serial = merge_results(serial_parts)
    merged_parallel = merge_results(parallel_parts)
    return {
        "items": int(n_items),
        "spans": len(ranges),
        "workers": int(workers),
        "cpu_count": os.cpu_count() or 1,
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "speedup": round(serial_s / parallel_s, 2) if parallel_s else 0.0,
        "merge_exact": merged_serial == merged_parallel,
        "total_bias": merged_parallel.total_bias,
    }


def check_speedups(result: ExperimentResult, floor: float,
                   detect_parallel: "dict | None" = None,
                   scaling_floor: float = 2.5) -> "list[str]":
    """Gate the measured speedups against the seed figures.

    Returns human-readable failures (empty == pass).  The floor is
    rescaled by the forwarding-loop calibration — a machine slower than
    the one that recorded :data:`SEED_US_PER_ITEM` owes proportionally
    less — and a row that still misses is re-measured up to three more
    times (min-of-runs, the same estimator the table uses) before
    failing: CI runners get descheduled, and a one-off stall is not a
    regression.  Burstable hosts swing their effective frequency on a
    minutes timescale, so one calibration sampled at check time can
    misrepresent the speed the *rows* were measured at; each retry
    therefore re-probes the calibration immediately before timing and
    is judged against its own adjacent floor.  ``detect_parallel`` adds
    the merge-exactness check unconditionally and the pool-scaling
    floor when the machine has enough cores for it to be meaningful.
    """
    failures: "list[str]" = []
    seed_calibration = SEED_US_PER_ITEM["read-and-copy"]

    def adjacent_floor() -> float:
        slowdown = max(machine_calibration() / seed_calibration, 1.0)
        return floor / slowdown

    effective_floor = adjacent_floor()
    by_name = {row[0]: row for row in
               BENCH_CONFIGURATIONS + (BENCH_CONFIGURATION_FULL_SCALE,)}
    measured = {row["configuration"]: row for row in result.rows}
    for name in SPEEDUP_GATED_ROWS:
        row = measured.get(name)
        if row is None:
            continue  # full-scale-only row absent at smoke scale
        speedup = row["speedup_vs_seed"]
        if speedup < effective_floor:
            # Re-measure before failing: min over extra runs discards
            # scheduler noise but can never manufacture speed.
            _, encoding, options, run_length, subset_cap = by_name[name]
            # Full-size stream regardless of the run's scale: the seed
            # figures were recorded at full scale, so the retry compares
            # like with like.
            stream = np.array(reference_synthetic(6000))
            best_us = row["us_per_item"]
            for _ in range(3):
                retry_floor = adjacent_floor()
                elapsed = _embed_time(stream, encoding, options,
                                      run_length, subset_cap)
                best_us = min(best_us, 1e6 * elapsed / len(stream))
                speedup = SEED_US_PER_ITEM[name] / best_us
                effective_floor = retry_floor
                if speedup >= effective_floor:
                    break
        if speedup < effective_floor:
            failures.append(
                f"{name}: speedup {speedup:.2f}x below floor "
                f"{floor}x (calibration-adjusted {effective_floor:.2f}x)")
    if detect_parallel is not None:
        if not detect_parallel["merge_exact"]:
            failures.append("detect_parallel: serial and pooled vote "
                            "buckets diverged (merge law violated)")
        if detect_parallel["cpu_count"] >= detect_parallel["workers"] \
                and detect_parallel["speedup"] < scaling_floor:
            failures.append(
                f"detect_parallel: {detect_parallel['speedup']}x at "
                f"{detect_parallel['workers']} workers below "
                f"{scaling_floor}x on a {detect_parallel['cpu_count']}"
                f"-core machine")
    return failures


def _reference_outputs() -> dict:
    """Embed + detect the fixed reference stream; digest the outputs."""
    stream = np.array(reference_synthetic(_REFERENCE_N))
    params = synthetic_params().with_updates(phi=5)
    marked, report = watermark_stream(stream, _REFERENCE_WATERMARK,
                                      DEFAULT_KEY, params=params)
    detection = detect_watermark(marked, len(_REFERENCE_WATERMARK),
                                 DEFAULT_KEY, params=params)
    return {
        "n_items": _REFERENCE_N,
        "watermark": _REFERENCE_WATERMARK,
        "marked_sha256": hashlib.sha256(marked.tobytes()).hexdigest(),
        "embedded": report.embedded,
        "bias": [detection.bias(i) for i in range(detection.wm_length)],
        "wm_estimate": [None if b is None else bool(b)
                        for b in detection.wm_estimate()],
    }


def reference_check(path: str) -> "list[str]":
    """Compare current embed/detect outputs against a recorded reference.

    Returns a list of human-readable mismatches (empty == bit-identical).
    """
    with open(path) as handle:
        recorded = json.load(handle)
    current = _reference_outputs()
    mismatches = []
    for field, expected in recorded.items():
        if current.get(field) != expected:
            mismatches.append(
                f"{field}: recorded {expected!r}, current "
                f"{current.get(field)!r}")
    return mismatches


def write_reference(path: str) -> None:
    """Record the current embed/detect outputs as the reference."""
    with open(path, "w") as handle:
        json.dump(_reference_outputs(), handle, indent=1)
        handle.write("\n")


def main(argv: "list[str] | None" = None) -> int:
    """CLI for the benchmark smoke job (see module docstring)."""
    import argparse

    from repro.experiments.runner import format_table

    parser = argparse.ArgumentParser(
        description="throughput harness: µs/item per encoding")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload multiplier (default 1.0)")
    parser.add_argument("--json", metavar="PATH",
                        help="write BENCH_throughput.json payload here")
    parser.add_argument("--check", metavar="PATH",
                        help="verify embed/detect outputs against this "
                             "recorded reference; non-zero exit on drift")
    parser.add_argument("--write-reference", metavar="PATH",
                        help="record current embed/detect outputs as the "
                             "reference")
    parser.add_argument("--assert-speedups", type=float, metavar="FLOOR",
                        default=None,
                        help="fail unless every batched-encoding row "
                             "beats FLOORx over the seed figures "
                             "(calibration-adjusted) and the parallel "
                             "vote merge is exact")
    args = parser.parse_args(argv)

    result = run_throughput(args.scale)
    print(format_table(result))
    soak = run_hub_soak(
        n_streams=max(100, int(1000 * min(args.scale, 1.0))))
    print(f"hub soak ({soak['n_streams']} streams): "
          f"{soak['hub_us_per_item']} us/item vs single "
          f"{soak['single_session_us_per_item']} us/item "
          f"(ratio {soak['hub_overhead_ratio']})")
    loopback = run_remote_loopback(
        n_items=max(10000, int(40000 * min(args.scale, 1.0))))
    print(f"remote loopback ({loopback['items']} items): "
          f"{loopback['remote_us_per_item']} us/item vs in-process "
          f"{loopback['inprocess_hub_us_per_item']} us/item "
          f"(ratio {loopback['remote_overhead_ratio']})")
    parallel = run_detect_parallel(
        n_items=max(70000, int(140000 * min(args.scale, 1.0))))
    print(f"detect parallel ({parallel['items']} items, "
          f"{parallel['spans']} spans): {parallel['speedup']}x at "
          f"{parallel['workers']} workers on {parallel['cpu_count']} "
          f"cores, merge_exact={parallel['merge_exact']}")
    overhead = run_metrics_overhead(
        n_items=max(30000, int(120000 * min(args.scale, 1.0))))
    print(f"metrics overhead ({overhead['items']} items): enabled "
          f"{overhead['enabled_us_per_item']} us/item vs disabled "
          f"{overhead['disabled_us_per_item']} us/item "
          f"(ratio {overhead['overhead_ratio']})")
    churn = run_loadgen_churn()
    print(f"loadgen churn ({churn['workers']} workers, "
          f"{churn['crashes']} crashes): push p50 "
          f"{churn['push_ms']['p50']} ms, p99 {churn['push_ms']['p99']} "
          f"ms, {churn['items_per_s']} items/s, "
          f"verify_failures={churn['verify_failures']}")
    chaos_soak = run_chaos_soak()
    print(f"chaos soak (seed {chaos_soak['seed']}): "
          f"{chaos_soak['server_crashes']} server crashes / "
          f"{chaos_soak['supervisor_restarts']} restarts, "
          f"{chaos_soak['fault_events']} server-side faults, "
          f"{chaos_soak['reconnects']} reconnects, "
          f"verify_failures={chaos_soak['verify_failures']}")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(throughput_json(result, args.scale, hub_soak=soak,
                                      remote_loopback=loopback,
                                      detect_parallel=parallel,
                                      metrics_overhead=overhead,
                                      loadgen_churn=churn,
                                      chaos_soak=chaos_soak),
                      handle, indent=1)
            handle.write("\n")
        print(f"wrote {args.json}")
    if args.assert_speedups is not None:
        failures = check_speedups(result, args.assert_speedups,
                                  detect_parallel=parallel)
        if churn["verify_failures"] or churn["worker_errors"]:
            failures.append(
                "loadgen_churn: exactly-once delivery violated under "
                f"churn ({churn['verify_failures']} verify failures, "
                f"{len(churn['worker_errors'])} worker errors)")
        if chaos_soak["verify_failures"] or chaos_soak["worker_errors"]:
            failures.append(
                "chaos_soak: stream loss or bit drift under faults "
                f"({chaos_soak['verify_failures']} verify failures, "
                f"{len(chaos_soak['worker_errors'])} worker errors)")
        if chaos_soak["supervisor_restarts"] < 3:
            failures.append(
                "chaos_soak: expected the seeded plan to force >= 3 "
                "server crash/restart cycles, saw "
                f"{chaos_soak['supervisor_restarts']}")
        if chaos_soak["supervisor_returncode"] != 0:
            failures.append(
                "chaos_soak: supervisor did not stop cleanly on "
                f"SIGTERM (exit {chaos_soak['supervisor_returncode']})")
        if failures:
            for line in failures:
                print(f"SPEEDUP FLOOR MISSED — {line}")
            return 1
        print(f"speedup floors held (>= {args.assert_speedups}x, "
              "merge exact)")
    if args.write_reference:
        write_reference(args.write_reference)
        print(f"recorded reference outputs at {args.write_reference}")
    if args.check:
        mismatches = reference_check(args.check)
        if mismatches:
            for line in mismatches:
                print(f"REFERENCE DRIFT — {line}")
            return 1
        print("embed/detect outputs bit-identical to recorded reference")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI smoke
    raise SystemExit(main())
