"""Reference datasets for the experiments, cached per process.

Embedding the reference streams is the expensive part of every figure;
caching the (stream, marked, report) triples keeps the whole benchmark
suite in the minutes range while every figure still exercises the real
pipeline.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.core.embedder import EmbedReport, watermark_stream
from repro.experiments.config import DEFAULT_KEY, irtf_params, synthetic_params
from repro.streams.generators import TemperatureSensorGenerator
from repro.streams.nasa import synthetic_irtf_month
from repro.streams.normalize import Normalizer


@lru_cache(maxsize=8)
def reference_synthetic(n_items: int = 8000, eta: int = 100,
                        seed: int = 7) -> np.ndarray:
    """The Sec-6 synthetic reference stream (read-only)."""
    values = TemperatureSensorGenerator(eta=eta, seed=seed).generate(n_items)
    values.setflags(write=False)
    return values


@lru_cache(maxsize=4)
def reference_irtf(seed: int = 20030901) -> np.ndarray:
    """The normalized IRTF-like month (read-only)."""
    values, _ = synthetic_irtf_month(seed=seed)
    normalized = Normalizer(low=0.0, high=35.0).normalize(values)
    normalized.setflags(write=False)
    return normalized


@lru_cache(maxsize=8)
def marked_synthetic(n_items: int = 8000, eta: int = 100, seed: int = 7
                     ) -> tuple[np.ndarray, EmbedReport]:
    """One-bit-watermarked synthetic stream plus its embed report."""
    stream = reference_synthetic(n_items, eta, seed)
    marked, report = watermark_stream(np.array(stream), "1", DEFAULT_KEY,
                                      params=synthetic_params())
    marked.setflags(write=False)
    return marked, report


@lru_cache(maxsize=4)
def marked_irtf(seed: int = 20030901) -> tuple[np.ndarray, EmbedReport]:
    """One-bit-watermarked IRTF-like stream plus its embed report."""
    stream = reference_irtf(seed)
    marked, report = watermark_stream(np.array(stream), "1", DEFAULT_KEY,
                                      params=irtf_params())
    marked.setflags(write=False)
    return marked, report
