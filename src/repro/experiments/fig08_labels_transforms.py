"""Figure 8 — label resilience under sampling and summarization.

Panel (a): labels altered vs *label size* under sampling of degree 3 —
larger labels are more fragile (more comparisons must survive).
Panel (b): labels altered vs summarization degree — degrades gracefully;
the paper highlights that 5% summarization (degree 20) still preserves
over 20% of labels.

Like Fig 6, this evaluates the bare Sec-4.1 labeling module (raw
extreme values): the paper's curves measure exactly the fragility the
hysteresis-robust pipeline later mitigates.  Label reconstruction on
the transformed stream uses the Sec-4.2 adjusted majorness degree, and
the comparison aligns extremes by (rescaled) stream position.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import label_alteration_aligned, labeled_major_extremes
from repro.core.degree import adjusted_sigma
from repro.experiments.config import scaled, synthetic_params
from repro.experiments.datasets import reference_synthetic
from repro.experiments.runner import ExperimentResult
from repro.transforms.sampling import uniform_random_sampling
from repro.transforms.summarization import summarize


def run_fig8a(scale: float = 1.0, seed: int = 81) -> ExperimentResult:
    """Labels altered vs label size, sampling degree 3.

    Uses the sharp-peaked (triangle) stream shape: label fragility under
    sampling comes from the surviving maximum drifting within the thin
    characteristic subset, a mechanism flat-topped streams suppress
    entirely (their sampled maxima are essentially exact).
    """
    from repro.streams.generators import TemperatureSensorGenerator

    params = synthetic_params()
    stream = TemperatureSensorGenerator(
        eta=100, seed=seed, shape="triangle").generate(
            scaled(8000, scale, 5000))
    sampled = uniform_random_sampling(stream, 3, rng=seed)
    sigma_eff = adjusted_sigma(params.sigma, 3.0)
    result = ExperimentResult(
        experiment_id="fig8a",
        title="label alteration vs label size (sampling degree 3)",
        columns=["label_size", "labels_altered_pct"],
        paper_expectation=("alteration grows with label size "
                           "(paper: ~10% at size 5 to ~40% at 25)"))
    for label_size in (5, 10, 15, 20, 25):
        original = labeled_major_extremes(stream, params,
                                          lambda_bits=label_size,
                                          use_robust_reference=False)
        transformed = labeled_major_extremes(sampled, params,
                                             lambda_bits=label_size,
                                             effective_sigma=sigma_eff,
                                             use_robust_reference=False)
        fraction = label_alteration_aligned(original, transformed,
                                            index_scale=3.0)
        result.add(label_size=label_size,
                   labels_altered_pct=100.0 * fraction)
    return result


def run_fig8b(scale: float = 1.0, seed: int = 82) -> ExperimentResult:
    """Labels altered vs summarization degree."""
    params = synthetic_params()
    stream = np.array(reference_synthetic(scaled(8000, scale, 5000)))
    original = labeled_major_extremes(stream, params,
                                      use_robust_reference=False)
    degrees = (2, 4, 6, 8, 12, 16, 20)
    if scale < 0.5:
        degrees = (2, 8, 20)
    result = ExperimentResult(
        experiment_id="fig8b",
        title="label alteration vs summarization degree",
        columns=["degree", "labels_altered_pct"],
        paper_expectation=("graceful degradation; >20% of labels survive "
                           "even at degree 20 (paper: ~20-80% altered)"))
    for degree in degrees:
        summarized = summarize(stream, degree)
        transformed = labeled_major_extremes(
            summarized, params,
            effective_sigma=adjusted_sigma(params.sigma, float(degree)),
            use_robust_reference=False)
        fraction = label_alteration_aligned(original, transformed,
                                            index_scale=float(degree))
        result.add(degree=degree, labels_altered_pct=100.0 * fraction)
    return result
