"""Figure 6 — label alteration under uniform ε-attacks.

Panel (a): alteration vs ε for two label bit-sizes (10 and 25); the
paper finds *smaller labels survive better* (fewer comparison bits to
corrupt).  Panel (b): alteration vs ε for altered-data fractions τ = 1%
and 2%; alteration grows with both ε and τ.

These experiments evaluate the *labeling module in isolation* — the
paper's "behavior of sub-systems" experiments — so they run the bare
Sec-4.1 scheme (raw extreme values, no hysteresis robustification) and
compare label sequences aligned by stream position, tolerating the
extreme insertions/deletions an aggressive ε-attack causes.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import label_alteration_aligned, labeled_major_extremes
from repro.attacks.epsilon import epsilon_attack
from repro.experiments.config import scaled, synthetic_params
from repro.experiments.datasets import reference_synthetic
from repro.experiments.runner import ExperimentResult

EPSILONS = (0.1, 0.25, 0.4, 0.55, 0.7, 0.85, 1.0)


def run_fig6a(scale: float = 1.0, seed: int = 61) -> ExperimentResult:
    """Label alteration vs ε, for label sizes 10 and 25 (τ = 2%)."""
    params = synthetic_params()
    stream = np.array(reference_synthetic(scaled(8000, scale, 5000)))
    result = ExperimentResult(
        experiment_id="fig6a",
        title="label alteration vs epsilon (label sizes 10 vs 25)",
        columns=["label_size", "epsilon", "labels_altered_pct"],
        paper_expectation=("alteration grows with epsilon; the smaller "
                           "label size survives better (paper: ~10-60%)"))
    for label_size in (10, 25):
        original = labeled_major_extremes(stream, params,
                                          lambda_bits=label_size,
                                          use_robust_reference=False)
        for epsilon in EPSILONS:
            attacked = epsilon_attack(stream, tau=0.02, epsilon=epsilon,
                                      rng=seed)
            labels = labeled_major_extremes(attacked, params,
                                            lambda_bits=label_size,
                                            use_robust_reference=False)
            fraction = label_alteration_aligned(original, labels)
            result.add(label_size=label_size, epsilon=epsilon,
                       labels_altered_pct=100.0 * fraction)
    return result


def run_fig6b(scale: float = 1.0, seed: int = 62) -> ExperimentResult:
    """Label alteration vs ε, for altered fractions τ = 1% and 2%."""
    params = synthetic_params()
    stream = np.array(reference_synthetic(scaled(8000, scale, 5000)))
    original = labeled_major_extremes(stream, params,
                                      use_robust_reference=False)
    result = ExperimentResult(
        experiment_id="fig6b",
        title="label alteration vs epsilon (1% vs 2% of data altered)",
        columns=["tau_pct", "epsilon", "labels_altered_pct"],
        paper_expectation=("alteration grows with epsilon and with the "
                           "altered fraction (paper: ~5-35%)"))
    for tau in (0.01, 0.02):
        for epsilon in EPSILONS:
            attacked = epsilon_attack(stream, tau=tau, epsilon=epsilon,
                                      rng=seed)
            labels = labeled_major_extremes(attacked, params,
                                            use_robust_reference=False)
            fraction = label_alteration_aligned(original, labels)
            result.add(tau_pct=100.0 * tau, epsilon=epsilon,
                       labels_altered_pct=100.0 * fraction)
    return result
