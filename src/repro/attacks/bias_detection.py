"""The subset-consistency (bias-detection) attack (paper Sec 4.3 intro).

"What prevents Mallory from identifying all the major extremes for which
there exists a majority of (possibly all) items in the characteristic
subset with a certain bit position set to the same identical value?" —
nothing, under the guarded-bit encoding: a whole subset agreeing on one
low bit (with zeroed neighbours, no less) is a loud statistical
signature.  This module implements that attack: scan extremes, find bit
positions where the subset agrees suspiciously, randomize them.

The multi-hash encoding survives by construction — its alterations are
hash-targeted, hence indistinguishable from noise, and no position-level
consistency exists to find.  The ablation benchmark runs this attack
against both encodings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.extremes import find_extremes
from repro.core.quantize import Quantizer
from repro.errors import ParameterError
from repro.util import bitops
from repro.util.rng import make_rng
from repro.util.validation import as_float_array


@dataclass
class BiasDetectionReport:
    """Extremes and positions Mallory flagged as mark-carrying."""

    flagged_extremes: int = 0
    randomized_items: int = 0
    positions: list[tuple[int, int]] = field(default_factory=list)


def bias_detection_attack(values, alpha_guess: int = 16,
                          value_bits: int = 32,
                          agreement_threshold: float = 1.0,
                          min_subset: int = 3,
                          prominence: float = 0.02, delta: float = 0.003,
                          rng: "int | np.random.Generator | None" = None
                          ) -> tuple[np.ndarray, BiasDetectionReport]:
    """Randomize bit positions on which a subset fully agrees.

    ``agreement_threshold`` is the fraction of subset members that must
    share the bit value (1.0 = unanimous, the guarded encoding's
    signature).  Only positions whose *guard neighbours* are also
    consistently zero are flagged — Mallory looks for the exact
    fingerprint the initial encoding leaves.
    """
    array = as_float_array(values, "values").copy()
    if not 0.5 < agreement_threshold <= 1.0:
        raise ParameterError(
            f"agreement_threshold must be in (0.5, 1], got "
            f"{agreement_threshold}"
        )
    if min_subset < 2:
        raise ParameterError(f"min_subset must be >= 2, got {min_subset}")
    generator = make_rng(rng)
    quantizer = Quantizer(value_bits)
    report = BiasDetectionReport()
    for extreme in find_extremes(array, prominence, delta):
        size = extreme.subset_size
        if size < min_subset:
            continue
        q_subset = [quantizer.quantize(float(array[i]))
                    for i in range(extreme.subset_start,
                                   extreme.subset_end + 1)]
        flagged_here = False
        for position in range(1, alpha_guess - 1):
            ones = sum(bitops.get_bit(q, position) for q in q_subset)
            agreement = max(ones, size - ones) / size
            guards_zero = all(
                bitops.get_bit(q, position - 1) == 0
                and bitops.get_bit(q, position + 1) == 0
                for q in q_subset)
            if agreement >= agreement_threshold and guards_zero:
                flagged_here = True
                report.positions.append((extreme.index, position))
                for offset, idx in enumerate(range(extreme.subset_start,
                                                   extreme.subset_end + 1)):
                    q = bitops.with_bit(q_subset[offset], position,
                                        int(generator.integers(0, 2)))
                    q_subset[offset] = q
                    array[idx] = quantizer.dequantize(q)
                    report.randomized_items += 1
        if flagged_here:
            report.flagged_extremes += 1
    return array, report
