"""The ε-attack: uninformed random alteration (paper Sec 6.1, attack A6).

Defined in the authors' earlier relational work [19] and reused here: a
*uniform altering epsilon-attack* modifies a fraction τ of the input
items by multiplying each with a value drawn uniformly from
``(1 + μ - ε, 1 + μ + ε)``:

* τ — fraction of items altered ("2% of data" in Fig 6(b));
* ε — alteration amplitude (the x-axis of Fig 6, one axis of Fig 7);
* μ — alteration mean (0 in all of the paper's plots).

The paper notes this closely models (A6), the realistic combination of
value addition and resampling, and is "often the only available attack
alternative" for an uninformed Mallory.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.util.rng import make_rng
from repro.util.validation import as_float_array

#: Values are kept strictly inside the normalized open interval after
#: multiplication; attacks that push data out of its domain would be
#: trivially detectable (and rejected by any consumer).
_CLIP = 0.4999


def epsilon_attack(values, tau: float, epsilon: float, mu: float = 0.0,
                   rng: "int | np.random.Generator | None" = None,
                   clip: bool = True) -> np.ndarray:
    """Multiply a τ-fraction of items by ``U(1 + μ - ε, 1 + μ + ε)``.

    Parameters
    ----------
    values:
        Normalized stream values.
    tau:
        Fraction of items to alter, in [0, 1].
    epsilon:
        Amplitude of the multiplicative noise, >= 0.
    mu:
        Mean shift of the multiplicative noise.
    clip:
        Keep results inside the normalized interval (default True).

    >>> out = epsilon_attack([0.1] * 100, tau=0.5, epsilon=0.2, rng=7)
    >>> int((out != 0.1).sum()) <= 50
    True
    """
    array = as_float_array(values, "values").copy()
    if not 0.0 <= tau <= 1.0:
        raise ParameterError(f"tau must be in [0, 1], got {tau}")
    if epsilon < 0.0:
        raise ParameterError(f"epsilon must be >= 0, got {epsilon}")
    if tau == 0.0 or epsilon == 0.0 and mu == 0.0:
        return array
    generator = make_rng(rng)
    n_altered = int(round(tau * array.size))
    if n_altered == 0:
        return array
    indices = generator.choice(array.size, size=n_altered, replace=False)
    factors = generator.uniform(1.0 + mu - epsilon, 1.0 + mu + epsilon,
                                size=n_altered)
    array[indices] = array[indices] * factors
    if clip:
        np.clip(array, -_CLIP, _CLIP, out=array)
    return array
