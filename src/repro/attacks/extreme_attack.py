"""The Sec-5 targeted extreme attack model.

Mallory "starts to modify randomly every a1-th (a1 > 1) extreme in such
a way as to alter a ratio of a2 in (0, 1) of the items in the extreme's
characteristic subset of radius a3".  The paper analyzes the informed
case a3 = δ (Mallory knows the radius), which is what we implement —
strengthening the demonstration, exactly as the paper's analysis does.

Alterations randomize the low bits of the chosen items: the analysis
assumes the attack does not disturb the labeling scheme (the "greater
than" relations between extreme magnitudes), which low-bit noise
respects by construction.  The companion math lives in
:mod:`repro.analysis.attack_math`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.extremes import find_extremes
from repro.core.quantize import Quantizer
from repro.errors import ParameterError
from repro.util.rng import make_rng
from repro.util.validation import as_float_array


@dataclass
class ExtremeAttackReport:
    """How much of the stream the targeted attack touched."""

    extremes_total: int = 0
    extremes_attacked: int = 0
    items_altered: int = 0


def targeted_extreme_attack(values, a1: int, a2: float,
                            a3: "float | None" = None,
                            lsb_bits: int = 16, value_bits: int = 32,
                            prominence: float = 0.02, delta: float = 0.003,
                            rng: "int | np.random.Generator | None" = None
                            ) -> tuple[np.ndarray, ExtremeAttackReport]:
    """Attack every ``a1``-th extreme's subset (ratio ``a2`` of items).

    Parameters
    ----------
    a1:
        Attack period over the extreme sequence (a1 > 1 per the paper).
    a2:
        Fraction of subset items randomized at each attacked extreme.
    a3:
        Subset radius Mallory assumes; ``None`` means the informed case
        a3 = δ.
    lsb_bits:
        Width of the randomized low-bit field (Mallory's guess at α).
    """
    array = as_float_array(values, "values").copy()
    if a1 < 2:
        raise ParameterError(f"a1 must be > 1, got {a1}")
    if not 0.0 < a2 <= 1.0:
        raise ParameterError(f"a2 must be in (0, 1], got {a2}")
    radius = delta if a3 is None else float(a3)
    if radius <= 0:
        raise ParameterError(f"a3 must be positive, got {a3}")
    generator = make_rng(rng)
    quantizer = Quantizer(value_bits)
    mask = (1 << lsb_bits) - 1
    report = ExtremeAttackReport()
    extremes = find_extremes(array, prominence, radius)
    report.extremes_total = len(extremes)
    for ordinal, extreme in enumerate(extremes):
        if ordinal % a1 != 0:
            continue
        report.extremes_attacked += 1
        indices = list(range(extreme.subset_start, extreme.subset_end + 1))
        n_alter = max(1, int(round(a2 * len(indices))))
        chosen = generator.choice(len(indices), size=min(n_alter, len(indices)),
                                  replace=False)
        for pick in chosen:
            idx = indices[int(pick)]
            q = quantizer.quantize(float(array[idx]))
            q = (q & ~mask) | int(generator.integers(0, mask + 1))
            array[idx] = quantizer.dequantize(q)
            report.items_altered += 1
    return array, report
