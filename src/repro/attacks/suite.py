"""Attack gauntlet: run a named battery of attacks/transforms at once.

Used by the ``attack_gauntlet`` example and the resilience overview in
EXPERIMENTS.md: one watermarked stream goes in, a dict of attacked
variants comes out, and the caller detects against each.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.attacks.additive import additive_attack
from repro.attacks.epsilon import epsilon_attack
from repro.attacks.extreme_attack import targeted_extreme_attack
from repro.errors import ParameterError
from repro.transforms.sampling import uniform_random_sampling
from repro.transforms.segmentation import random_segment
from repro.transforms.summarization import summarize
from repro.util.rng import make_rng, split_rng


@dataclass(frozen=True)
class AttackOutcome:
    """One gauntlet entry: the attacked stream plus a description."""

    name: str
    values: np.ndarray
    description: str


class AttackSuite:
    """A reproducible battery covering A1, A2, A3, A5, A6 and Sec 5.

    >>> suite = AttackSuite(seed=11)
    >>> names = [o.name for o in suite.run([0.1, -0.2, 0.3] * 400)]
    >>> "sampling-4" in names and "epsilon-50-10" in names
    True
    """

    def __init__(self, seed: "int | None" = 2004,
                 include: "list[str] | None" = None) -> None:
        self._seed = seed
        self._registry: dict[str, tuple[str, Callable]] = {}
        self._register_defaults()
        if include is not None:
            unknown = set(include) - set(self._registry)
            if unknown:
                raise ParameterError(f"unknown attacks: {sorted(unknown)}")
            self._registry = {k: v for k, v in self._registry.items()
                              if k in include}

    def _register_defaults(self) -> None:
        self._registry = {
            "sampling-4": (
                "uniform random sampling, degree 4 (keep 25%)",
                lambda v, r: uniform_random_sampling(v, 4, rng=r)),
            "sampling-12": (
                "uniform random sampling, degree 12 (keep ~8%)",
                lambda v, r: uniform_random_sampling(v, 12, rng=r)),
            "summarization-5": (
                "summarization, degree 5 (keep 20%)",
                lambda v, r: summarize(v, 5)),
            "segmentation-40": (
                "random contiguous segment, 40% of the stream",
                lambda v, r: random_segment(v, max(2, int(0.4 * len(v))),
                                            rng=r)),
            "epsilon-50-10": (
                "epsilon-attack: tau=50%, epsilon=10%",
                lambda v, r: epsilon_attack(v, tau=0.5, epsilon=0.1, rng=r)),
            "epsilon-10-30": (
                "epsilon-attack: tau=10%, epsilon=30%",
                lambda v, r: epsilon_attack(v, tau=0.1, epsilon=0.3, rng=r)),
            "additive-10": (
                "insert 10% plausible values (A5)",
                lambda v, r: additive_attack(v, fraction=0.10, rng=r)),
            "targeted-extremes": (
                "Sec-5 model: every 5th extreme, half its subset",
                lambda v, r: targeted_extreme_attack(v, a1=5, a2=0.5,
                                                     rng=r)[0]),
        }

    @property
    def names(self) -> list[str]:
        """Registered attack identifiers, in execution order."""
        return list(self._registry)

    def run(self, values) -> list[AttackOutcome]:
        """Apply every registered attack to an independent copy."""
        array = np.asarray(values, dtype=np.float64)
        master = make_rng(self._seed)
        children = split_rng(master, len(self._registry))
        outcomes: list[AttackOutcome] = []
        for (name, (description, attack)), child in zip(
                self._registry.items(), children):
            outcomes.append(AttackOutcome(
                name=name, values=np.asarray(attack(array.copy(), child)),
                description=description))
        return outcomes
