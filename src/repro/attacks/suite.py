"""Attack gauntlet: run a named battery of attacks/transforms at once.

Used by the ``attack_gauntlet`` example and the resilience overview in
EXPERIMENTS.md: one watermarked stream goes in, a dict of attacked
variants comes out, and the caller detects against each.

The battery itself carries no attack code: every entry names a component
registered with the central :class:`repro.registry.ComponentRegistry`
(kind ``"attack"`` or ``"transform"``) plus its options, so a newly
registered attack can join a gauntlet without touching this module.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ParameterError
from repro.registry import REGISTRY
from repro.util.rng import make_rng, split_rng

#: The default battery: (name, registry kind, component, options, description)
#: covering A1, A2, A3, A5, A6 and the Sec-5 targeted model.
DEFAULT_BATTERY = (
    ("sampling-4", "transform", "sample", {"degree": 4},
     "uniform random sampling, degree 4 (keep 25%)"),
    ("sampling-12", "transform", "sample", {"degree": 12},
     "uniform random sampling, degree 12 (keep ~8%)"),
    ("summarization-5", "transform", "summarize", {"degree": 5},
     "summarization, degree 5 (keep 20%)"),
    ("segmentation-40", "transform", "segment", {"fraction": 0.4},
     "random contiguous segment, 40% of the stream"),
    ("epsilon-50-10", "attack", "epsilon", {"tau": 0.5, "epsilon": 0.1},
     "epsilon-attack: tau=50%, epsilon=10%"),
    ("epsilon-10-30", "attack", "epsilon", {"tau": 0.1, "epsilon": 0.3},
     "epsilon-attack: tau=10%, epsilon=30%"),
    ("additive-10", "attack", "additive", {"fraction": 0.10},
     "insert 10% plausible values (A5)"),
    ("targeted-extremes", "attack", "extreme-targeted", {"a1": 5, "a2": 0.5},
     "Sec-5 model: every 5th extreme, half its subset"),
)


@dataclass(frozen=True)
class AttackOutcome:
    """One gauntlet entry: the attacked stream plus a description."""

    name: str
    values: np.ndarray
    description: str


class AttackSuite:
    """A reproducible battery covering A1, A2, A3, A5, A6 and Sec 5.

    >>> suite = AttackSuite(seed=11)
    >>> names = [o.name for o in suite.run([0.1, -0.2, 0.3] * 400)]
    >>> "sampling-4" in names and "epsilon-50-10" in names
    True
    """

    def __init__(self, seed: "int | None" = 2004,
                 include: "list[str] | None" = None) -> None:
        self._seed = seed
        self._registry: dict[str, tuple[str, Callable]] = {}
        self._register_defaults()
        if include is not None:
            unknown = set(include) - set(self._registry)
            if unknown:
                raise ParameterError(f"unknown attacks: {sorted(unknown)}")
            self._registry = {k: v for k, v in self._registry.items()
                              if k in include}

    def _register_defaults(self) -> None:
        self._registry = {}
        for name, kind, component, options, description in DEFAULT_BATTERY:
            self.add(name, kind, component, options, description)

    def add(self, name: str, kind: str, component: str,
            options: "dict | None" = None, description: str = "") -> None:
        """Append one registry-resolved entry to this gauntlet.

        ``options`` are passed to the registered builder; builders with
        an ``rng`` parameter additionally receive the per-run child RNG
        that makes the gauntlet reproducible.
        """
        builder = REGISTRY.get(kind, component)
        opts = dict(options or {})
        accepts_rng = "rng" in inspect.signature(builder).parameters

        def run(values: np.ndarray, rng) -> np.ndarray:
            resolved = dict(opts)
            if accepts_rng:
                resolved["rng"] = rng
            return np.asarray(builder(**resolved)(values))

        self._registry[name] = (description, run)

    @property
    def names(self) -> list[str]:
        """Registered attack identifiers, in execution order."""
        return list(self._registry)

    def run(self, values) -> list[AttackOutcome]:
        """Apply every registered attack to an independent copy."""
        array = np.asarray(values, dtype=np.float64)
        master = make_rng(self._seed)
        children = split_rng(master, len(self._registry))
        outcomes: list[AttackOutcome] = []
        for (name, (description, attack)), child in zip(
                self._registry.items(), children):
            outcomes.append(AttackOutcome(
                name=name, values=np.asarray(attack(array.copy(), child)),
                description=description))
        return outcomes
