"""Mallory's hash-bucket counting attack (paper Sec 4.1).

Against the *initial* scheme, a single variable — the extreme's value —
determines both the embedding location and the embedded bit.  Mallory
exploits the correlation without inverting the hash:

1. group observed extremes into buckets by ``msb(ε, β')`` (β' guessed);
2. within each bucket, count how often each low bit position is set;
3. positions showing a statistical bias (the same extremes always carry
   the same bit at the same place) are declared mark-carrying;
4. randomize those positions.

The labeled scheme (Sec 4.1's fix) decouples position from value —
adjacent extremes with equal values get different labels, hence
different positions — and the bias dissolves below Mallory's detection
threshold.  The ablation benchmark demonstrates exactly this contrast.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.core.extremes import find_extremes
from repro.core.quantize import Quantizer
from repro.errors import ParameterError
from repro.util import bitops
from repro.util.rng import make_rng
from repro.util.validation import as_float_array


@dataclass
class CorrelationAttackReport:
    """What Mallory learned: flagged (bucket, bit-position) pairs."""

    flagged: list[tuple[int, int]] = field(default_factory=list)
    buckets_examined: int = 0
    extremes_examined: int = 0
    randomized_items: int = 0

    @property
    def positions_found(self) -> int:
        """Number of (bucket, position) pairs declared mark-carrying."""
        return len(self.flagged)


def correlation_attack(values, beta_guess: int = 8, alpha_guess: int = 16,
                       value_bits: int = 32, bias_threshold: float = 0.35,
                       min_bucket: int = 4,
                       prominence: float = 0.02, delta: float = 0.003,
                       rng: "int | np.random.Generator | None" = None
                       ) -> tuple[np.ndarray, CorrelationAttackReport]:
    """Run the bucket-counting attack; returns (attacked, report).

    Parameters
    ----------
    beta_guess, alpha_guess, value_bits:
        Mallory's guesses at the secret geometry.  The paper notes the
        attack stays feasible even when β is secret ("the job becomes
        harder but not impossible"); the defaults assume a well-informed
        Mallory, which strengthens the defense demonstration.
    bias_threshold:
        Minimum |frequency - 0.5| that flags a bit position.
    min_bucket:
        Buckets with fewer extremes are skipped (no statistics).
    prominence, delta:
        Extreme-detection guesses (Mallory observes stream shape freely).

    Returns the attacked copy: for every flagged (bucket, position), the
    bit at ``position`` is randomized in all extremes of that bucket and
    in their characteristic-subset neighbours (Mallory cannot localize
    the mark more precisely, so he sprays the subset).
    """
    array = as_float_array(values, "values").copy()
    if not 1 <= beta_guess < value_bits:
        raise ParameterError(f"beta_guess must be in [1, value_bits), got {beta_guess}")
    if not 2 <= alpha_guess <= value_bits - beta_guess:
        raise ParameterError(
            f"alpha_guess must be in [2, value_bits - beta_guess], "
            f"got {alpha_guess}"
        )
    if not 0.0 < bias_threshold < 0.5:
        raise ParameterError(
            f"bias_threshold must be in (0, 0.5), got {bias_threshold}"
        )
    generator = make_rng(rng)
    quantizer = Quantizer(value_bits)
    extremes = find_extremes(array, prominence, delta)
    report = CorrelationAttackReport(extremes_examined=len(extremes))

    buckets: dict[int, list[int]] = defaultdict(list)
    for position_in_list, extreme in enumerate(extremes):
        bucket = quantizer.msb(extreme.value, beta_guess)
        buckets[bucket].append(position_in_list)

    for bucket, members in buckets.items():
        if len(members) < min_bucket:
            continue
        report.buckets_examined += 1
        q_values = [quantizer.quantize(extremes[m].value) for m in members]
        for position in range(alpha_guess):
            ones = sum(bitops.get_bit(q, position) for q in q_values)
            frequency = ones / len(q_values)
            if abs(frequency - 0.5) >= bias_threshold:
                report.flagged.append((bucket, position))
                # Randomize the flagged position across the bucket's
                # extremes and their subset neighbourhoods.
                for m in members:
                    extreme = extremes[m]
                    for idx in range(extreme.subset_start,
                                     extreme.subset_end + 1):
                        q = quantizer.quantize(float(array[idx]))
                        q = bitops.with_bit(q, position,
                                            int(generator.integers(0, 2)))
                        array[idx] = quantizer.dequantize(q)
                        report.randomized_items += 1
    return array, report
