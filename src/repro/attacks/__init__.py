"""The adversary: Mallory's attack repertoire (paper Secs 2.1, 4.1, 4.3, 5).

Implementing the attacks — not just the defenses — is what lets the
test-suite and benchmarks demonstrate the resilience claims:

* :mod:`repro.attacks.epsilon` — uninformed random alteration (A6), the
  ε-attack of [19] used throughout Sec 6.1;
* :mod:`repro.attacks.additive` — bounded insertion of plausible values
  (A5);
* :mod:`repro.attacks.correlation` — the hash-bucket counting attack of
  Sec 4.1 that breaks value-derived bit positions;
* :mod:`repro.attacks.bias_detection` — the subset-consistency attack of
  Sec 4.3 that breaks the guarded-bit encoding;
* :mod:`repro.attacks.extreme_attack` — the Sec-5 targeted model
  (every a1-th extreme, ratio a2 of its radius-a3 subset);
* :mod:`repro.attacks.suite` — a gauntlet runner for examples/benches.

Stream-mangling attacks also register *builders* with the central
:class:`repro.registry.ComponentRegistry` under kind ``"attack"``
(options in, ``values -> values`` callable out), which is how the
:class:`AttackSuite`, the ``repro attack`` CLI and
:meth:`repro.transforms.Compose.from_names` resolve them by name.
"""

from __future__ import annotations

from repro.attacks.additive import additive_attack
from repro.attacks.bias_detection import bias_detection_attack
from repro.attacks.correlation import CorrelationAttackReport, correlation_attack
from repro.attacks.epsilon import epsilon_attack
from repro.attacks.extreme_attack import targeted_extreme_attack
from repro.attacks.suite import AttackOutcome, AttackSuite
from repro.registry import REGISTRY

__all__ = [
    "additive_attack",
    "bias_detection_attack",
    "CorrelationAttackReport",
    "correlation_attack",
    "epsilon_attack",
    "targeted_extreme_attack",
    "AttackOutcome",
    "AttackSuite",
]


# ----------------------------------------------------------------------
# registry builders: options in, `values -> values` callable out
# ----------------------------------------------------------------------
@REGISTRY.register("attack", "epsilon",
                   description="(A6) epsilon-attack: alter a `tau` "
                               "fraction of items by up to `epsilon`")
def _build_epsilon(tau: float = 0.1, epsilon: float = 0.1, mu: float = 0.0,
                   rng=None):
    """Builder for the uninformed random-alteration attack."""
    def apply(values):
        return epsilon_attack(values, tau=tau, epsilon=epsilon, mu=mu,
                              rng=rng)
    return apply


@REGISTRY.register("attack", "additive",
                   description="(A5) insert a `fraction` of plausible "
                               "fabricated values")
def _build_additive(fraction: float = 0.1, rng=None):
    """Builder for the bounded-insertion attack."""
    def apply(values):
        return additive_attack(values, fraction=fraction, rng=rng)
    return apply


@REGISTRY.register("attack", "extreme-targeted",
                   description="Sec-5 targeted model: every `a1`-th "
                               "extreme, ratio `a2` of its subset")
def _build_extreme_targeted(a1: int = 5, a2: float = 0.5, rng=None):
    """Builder for the targeted extreme-alteration attack."""
    def apply(values):
        attacked, _report = targeted_extreme_attack(values, a1=a1, a2=a2,
                                                    rng=rng)
        return attacked
    return apply
