"""The adversary: Mallory's attack repertoire (paper Secs 2.1, 4.1, 4.3, 5).

Implementing the attacks — not just the defenses — is what lets the
test-suite and benchmarks demonstrate the resilience claims:

* :mod:`repro.attacks.epsilon` — uninformed random alteration (A6), the
  ε-attack of [19] used throughout Sec 6.1;
* :mod:`repro.attacks.additive` — bounded insertion of plausible values
  (A5);
* :mod:`repro.attacks.correlation` — the hash-bucket counting attack of
  Sec 4.1 that breaks value-derived bit positions;
* :mod:`repro.attacks.bias_detection` — the subset-consistency attack of
  Sec 4.3 that breaks the guarded-bit encoding;
* :mod:`repro.attacks.extreme_attack` — the Sec-5 targeted model
  (every a1-th extreme, ratio a2 of its radius-a3 subset);
* :mod:`repro.attacks.suite` — a gauntlet runner for examples/benches.
"""

from repro.attacks.additive import additive_attack
from repro.attacks.bias_detection import bias_detection_attack
from repro.attacks.correlation import CorrelationAttackReport, correlation_attack
from repro.attacks.epsilon import epsilon_attack
from repro.attacks.extreme_attack import targeted_extreme_attack
from repro.attacks.suite import AttackOutcome, AttackSuite

__all__ = [
    "additive_attack",
    "bias_detection_attack",
    "CorrelationAttackReport",
    "correlation_attack",
    "epsilon_attack",
    "targeted_extreme_attack",
    "AttackOutcome",
    "AttackSuite",
]
