"""Value-insertion attack (paper Sec 2.1, attack A5).

Mallory splices new values into the stream.  The paper bounds this
attack structurally: to preserve the stream's value Mallory can only add
a *limited amount* of data, and the inserted values must follow a
*similar distribution* — outliers would be flagged by any consumer
comparing against the known distribution.  We honour both bounds:
insertions are drawn from the empirical distribution of the stream
itself (bootstrap) or from a fitted normal, and the fraction is capped.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.util.rng import make_rng
from repro.util.validation import as_float_array

_DISTRIBUTIONS = ("local", "empirical", "normal")


def additive_attack(values, fraction: float,
                    rng: "int | np.random.Generator | None" = None,
                    distribution: str = "local") -> np.ndarray:
    """Insert ``fraction * n`` plausible values at random positions.

    Parameters
    ----------
    fraction:
        Ratio of inserted items to original items, in (0, 0.5] — the
        paper's "limited amount" bound.
    distribution:
        ``"local"`` (default) interpolates each insertion between its
        would-be neighbours plus small jitter — the only form that stays
        plausible on a *smooth* sensor stream, where a globally sampled
        value spliced into the wrong region is an obvious outlier
        (exactly the "easy to identify" case the paper's threat model
        rules out).  ``"empirical"`` bootstraps the observed marginal
        distribution; ``"normal"`` draws from a fitted gaussian.  Both
        are kept as stress-test variants: they violate the stream's
        temporal continuity and are detectable by any consumer.

    Returns the lengthened stream (original order preserved).
    """
    array = as_float_array(values, "values")
    if not 0.0 < fraction <= 0.5:
        raise ParameterError(
            f"fraction must be in (0, 0.5] (the paper's limited-addition "
            f"bound), got {fraction}"
        )
    if distribution not in _DISTRIBUTIONS:
        raise ParameterError(
            f"unknown distribution {distribution!r}; "
            f"choose one of {_DISTRIBUTIONS}"
        )
    generator = make_rng(rng)
    n_insert = max(1, int(round(fraction * array.size)))
    positions = np.sort(generator.integers(0, array.size + 1, size=n_insert))
    if distribution == "local":
        left = array[np.clip(positions - 1, 0, array.size - 1)]
        right = array[np.clip(positions, 0, array.size - 1)]
        mix = generator.uniform(0.0, 1.0, size=n_insert)
        jitter_scale = float(np.std(np.diff(array))) if array.size > 1 else 0.0
        jitter = generator.normal(0.0, 0.25 * jitter_scale or 1e-9,
                                  size=n_insert)
        inserted = left * mix + right * (1.0 - mix) + jitter
        inserted = np.clip(inserted, -0.4999, 0.4999)
    elif distribution == "empirical":
        inserted = generator.choice(array, size=n_insert, replace=True)
    else:
        inserted = generator.normal(float(np.mean(array)),
                                    float(np.std(array)) or 1e-6,
                                    size=n_insert)
        inserted = np.clip(inserted, -0.4999, 0.4999)
    return np.insert(array, positions, inserted)
