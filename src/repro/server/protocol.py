"""Wire protocol: versioned, length-prefixed JSON frames over TCP.

Every message on a ``repro.server`` connection is one **frame**: a
4-byte big-endian unsigned length prefix followed by that many bytes of
UTF-8 JSON encoding a single object.  The object's ``type`` field names
one of eight frame types:

========  =========  =====================================================
type      direction  meaning
========  =========  =====================================================
hello     both       version/tenant negotiation; the server's reply
                     carries the per-stream credit grant
open      c -> s     register (or resume) one keyed stream
push      c -> s     one chunk of stream values; consumes one credit
flush     c -> s     end-of-stream: drain the window, report evidence
result    s -> c     response to open/push/flush (values, offsets, votes)
credit    s -> c     flow control: returns credits for a stream
error     s -> c     a request failed (code + message, stream if known)
bye       both       orderly goodbye; the server's drain notice
========  =========  =====================================================

Numeric payloads travel as base64-encoded little-endian float64 bytes
(:func:`encode_array` / :func:`decode_array`), so values round-trip
**bit-identically** — the whole point of the library.

Client-to-server frames (``open``/``push``/``flush``) may carry a
``delivered`` field: the count of output items the client has safely
received for that stream.  It is the acknowledgement that lets the
server prune its bounded output-replay buffer and re-send exactly the
unacknowledged output range on resume (exactly-once delivery even when
a result frame is lost to a crash; see :mod:`repro.server.service`).

Decoding is strict: unknown frame types, missing or unknown fields,
wrong field types, negative counters, truncated or oversized frames and
undecodable payloads all raise :class:`repro.errors.ProtocolError` —
never a raw ``KeyError`` from frame plumbing, and never a silently
half-understood frame (fuzzed in ``tests/unit/test_protocol.py``,
mirroring the checkpoint deserialization contract).
"""

from __future__ import annotations

import asyncio
import base64
import binascii
import json
import struct
from dataclasses import dataclass

import numpy as np

from repro.errors import ProtocolError

#: Protocol version spoken by this library; HELLO frames carry it and
#: mismatches are rejected during the handshake.
PROTOCOL_VERSION = 1

#: Default upper bound on one frame's JSON body, in bytes.  At 8 MiB a
#: frame holds ~780k float64 items after base64 — far beyond a sane
#: chunk — so anything larger is a corrupt or hostile length prefix.
MAX_FRAME_BYTES = 8 * 1024 * 1024

_HEADER = struct.Struct(">I")

#: Per-frame-type field contract: (required, optional).  Unknown fields
#: are rejected — a field this library does not understand would
#: otherwise be dropped silently (same strictness as checkpoints).
_FRAME_FIELDS = {
    "hello": (frozenset({"type", "version"}),
              frozenset({"tenant", "server", "credits"})),
    "open": (frozenset({"type", "stream_id", "kind", "key"}),
             frozenset({"watermark", "wm_length", "params", "encoding",
                        "encoding_options", "require_labels",
                        "transform_degree", "resume", "delivered"})),
    "push": (frozenset({"type", "stream_id", "seq", "values"}),
             frozenset({"delivered"})),
    "flush": (frozenset({"type", "stream_id"}),
              frozenset({"delivered"})),
    "result": (frozenset({"type", "op", "stream_id"}),
               frozenset({"seq", "values", "items_in", "items_out",
                          "finished", "detection"})),
    "credit": (frozenset({"type", "stream_id", "credits"}), frozenset()),
    "error": (frozenset({"type", "code", "message"}),
              frozenset({"stream_id"})),
    "bye": (frozenset({"type"}), frozenset({"reason"})),
}

#: Expected Python type per field (bools are not ints here).
_FIELD_TYPES = {
    "type": str,
    "version": int,
    "tenant": str,
    "server": str,
    "credits": int,
    "stream_id": str,
    "kind": str,
    "key": str,
    "watermark": str,
    "wm_length": int,
    "params": dict,
    "encoding": str,
    "encoding_options": dict,
    "require_labels": bool,
    "transform_degree": (int, float),
    "resume": bool,
    "seq": int,
    "delivered": int,
    "values": str,
    "op": str,
    "items_in": int,
    "items_out": int,
    "finished": bool,
    "detection": dict,
    "code": str,
    "message": str,
    "reason": str,
}

#: Integer fields that must be non-negative.
_NON_NEGATIVE = frozenset({"version", "credits", "seq", "wm_length",
                           "items_in", "items_out", "delivered"})

#: Fields that must be non-empty strings.
_NON_EMPTY = frozenset({"type", "stream_id", "kind", "op", "code"})


def validate_frame(frame, *, source: str = "frame") -> dict:
    """Check one decoded frame object; raise :class:`ProtocolError` if bad.

    ``source`` names where the frame came from (a peer address, "encode")
    so error messages point at the offending side.  Returns the frame
    unchanged on success.
    """
    if not isinstance(frame, dict):
        raise ProtocolError(
            f"{source}: frame must be a JSON object, "
            f"got {type(frame).__name__}"
        )
    frame_type = frame.get("type")
    if not isinstance(frame_type, str) or frame_type not in _FRAME_FIELDS:
        raise ProtocolError(
            f"{source}: unknown frame type {frame_type!r}; expected one "
            f"of {sorted(_FRAME_FIELDS)}"
        )
    required, optional = _FRAME_FIELDS[frame_type]
    unknown = set(frame) - required - optional
    if unknown:
        raise ProtocolError(
            f"{source}: unknown fields {sorted(unknown)} in "
            f"{frame_type!r} frame"
        )
    missing = required - set(frame)
    if missing:
        raise ProtocolError(
            f"{source}: {frame_type!r} frame is missing required fields "
            f"{sorted(missing)}"
        )
    for name, value in frame.items():
        expected = _FIELD_TYPES[name]
        # JSON has distinct true/int, but Python bool *is* int — reject
        # booleans wherever an integer is expected (and vice versa).
        if isinstance(value, bool) and expected is not bool:
            raise ProtocolError(
                f"{source}: field {name!r} must be "
                f"{getattr(expected, '__name__', expected)}, got bool"
            )
        if not isinstance(value, expected):
            expected_name = (expected.__name__ if isinstance(expected, type)
                             else "number")
            raise ProtocolError(
                f"{source}: field {name!r} must be {expected_name}, got "
                f"{type(value).__name__}"
            )
        if name in _NON_NEGATIVE and value < 0:
            raise ProtocolError(
                f"{source}: field {name!r} must be >= 0, got {value}"
            )
        if name in _NON_EMPTY and not value:
            raise ProtocolError(
                f"{source}: field {name!r} must be a non-empty string"
            )
    return frame


def encode_frame(frame: dict, *, max_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Serialize one validated frame to its length-prefixed wire form."""
    validate_frame(frame, source="encode")
    try:
        body = json.dumps(frame, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"frame is not JSON-serializable: {exc}") from exc
    if len(body) > max_bytes:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the {max_bytes}-byte "
            "frame limit; push smaller chunks"
        )
    return _HEADER.pack(len(body)) + body


def decode_frame(body: bytes, *, source: str = "frame") -> dict:
    """Decode and validate one frame body (the bytes after the prefix)."""
    try:
        decoded = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(
            f"{source}: frame body is not valid UTF-8 JSON "
            f"(truncated or corrupt?): {exc}"
        ) from exc
    return validate_frame(decoded, source=source)


@dataclass
class FrameDecoder:
    """Incremental (sans-IO) frame decoder for arbitrary byte arrivals.

    Feed raw bytes in any fragmentation; complete frames come out
    validated.  The decoder enforces the frame-size limit *from the
    length prefix alone*, so an oversized or hostile prefix is rejected
    before any buffering of its body.  Used by the fuzz tests and by
    any sync transport.
    """

    max_bytes: int = MAX_FRAME_BYTES
    _buffer: bytes = b""

    def feed(self, data: bytes) -> "list[dict]":
        """Consume ``data``; return every frame completed by it."""
        self._buffer += bytes(data)
        frames = []
        while True:
            if len(self._buffer) < _HEADER.size:
                return frames
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > self.max_bytes:
                raise ProtocolError(
                    f"frame length prefix {length} exceeds the "
                    f"{self.max_bytes}-byte frame limit (corrupt stream?)"
                )
            if len(self._buffer) < _HEADER.size + length:
                return frames
            body = self._buffer[_HEADER.size:_HEADER.size + length]
            self._buffer = self._buffer[_HEADER.size + length:]
            frames.append(decode_frame(body))

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame (0 at a boundary)."""
        return len(self._buffer)


async def read_frame(reader: asyncio.StreamReader, *,
                     max_bytes: int = MAX_FRAME_BYTES) -> "dict | None":
    """Read one frame from an asyncio stream; ``None`` on clean EOF.

    EOF *inside* a frame (mid-prefix or mid-body) raises
    :class:`ProtocolError` — the peer died mid-sentence, which callers
    must treat as a lost connection, not a clean goodbye.
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError(
            "connection closed mid-frame (inside the length prefix)"
        ) from exc
    (length,) = _HEADER.unpack(header)
    if length > max_bytes:
        raise ProtocolError(
            f"frame length prefix {length} exceeds the {max_bytes}-byte "
            "frame limit (corrupt stream?)"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed mid-frame ({len(exc.partial)} of "
            f"{length} body bytes)"
        ) from exc
    return decode_frame(body)


async def write_frame(writer: asyncio.StreamWriter, frame: dict, *,
                      max_bytes: int = MAX_FRAME_BYTES) -> None:
    """Validate, serialize and send one frame, honouring backpressure."""
    writer.write(encode_frame(frame, max_bytes=max_bytes))
    await writer.drain()


# ----------------------------------------------------------------------
# payload encoding
# ----------------------------------------------------------------------
def encode_array(values) -> str:
    """Encode a float64 array as base64 text (bit-exact round-trip)."""
    array = np.asarray(values, dtype="<f8").ravel()
    return base64.b64encode(array.tobytes()).decode("ascii")


def decode_array(text: str, *, source: str = "frame") -> np.ndarray:
    """Decode :func:`encode_array` text back into a float64 array."""
    if not isinstance(text, str):
        raise ProtocolError(
            f"{source}: values payload must be a base64 string, got "
            f"{type(text).__name__}"
        )
    try:
        raw = base64.b64decode(text.encode("ascii"), validate=True)
    except (UnicodeEncodeError, binascii.Error, ValueError) as exc:
        raise ProtocolError(
            f"{source}: values payload is not valid base64: {exc}"
        ) from exc
    if len(raw) % 8:
        raise ProtocolError(
            f"{source}: values payload of {len(raw)} bytes is not a "
            "whole number of float64 items (truncated?)"
        )
    return np.frombuffer(raw, dtype="<f8").astype(np.float64)


def encode_key(key: bytes) -> str:
    """Encode secret key bytes for the OPEN frame (transport only —
    the server holds keys in memory and never persists them)."""
    if isinstance(key, str):
        key = key.encode("utf-8")
    return base64.b64encode(bytes(key)).decode("ascii")


def decode_key(text: str, *, source: str = "frame") -> bytes:
    """Decode an OPEN frame's key field back into key bytes."""
    try:
        key = base64.b64decode(str(text).encode("ascii"), validate=True)
    except (UnicodeEncodeError, binascii.Error, ValueError) as exc:
        raise ProtocolError(
            f"{source}: key is not valid base64: {exc}"
        ) from exc
    if not key:
        raise ProtocolError(f"{source}: key must not be empty")
    return key
