"""Wire protocol: negotiated frame codecs over pluggable transports.

Every message on a ``repro.server`` connection is one **frame**.  How a
frame becomes bytes is the job of a :class:`FrameCodec`, negotiated per
connection at HELLO (see *Wire negotiation* below); how those bytes are
delimited on the network is the job of a transport
(:mod:`repro.server.transports`).  Two codecs ship:

* ``wire=1`` (:class:`JsonFrameCodec`, name ``"json"``) — UTF-8 JSON
  bodies with base64-encoded float64 payloads.  Kept byte-for-byte
  identical to the original protocol, so version-1 clients interoperate
  unmodified.
* ``wire=2`` (:class:`BinaryFrameCodec`, name ``"binary"``) — a
  struct-packed header, a small JSON *meta* section for the cold
  fields, and the ``values`` payload as **raw little-endian float64
  bytes** decoded straight into an array view: no base64, no per-item
  Python objects on the hot path.

Logically a frame is a mapping whose ``type`` field names one of nine
frame types:

========  =========  =====================================================
type      direction  meaning
========  =========  =====================================================
hello     both       version/tenant negotiation; the server's reply
                     carries the per-stream credit grant
open      c -> s     register (or resume) one keyed stream
push      c -> s     one chunk of stream values; consumes one credit
flush     c -> s     end-of-stream: drain the window, report evidence
result    s -> c     response to open/push/flush (values, offsets, votes)
credit    s -> c     flow control: returns credits for a stream
error     s -> c     a request failed (code + message, stream if known)
status    both       observability: a bare request (c -> s) is answered
                     with a ``payload`` JSON snapshot (s -> c) of the
                     server's metrics registry and per-tenant hub state
bye       both       orderly goodbye; the server's drain notice
========  =========  =====================================================

Numeric payloads round-trip **bit-identically** on both codecs — the
whole point of the library.  Codec-decoded frames carry ``values`` as a
float64 :class:`numpy.ndarray`; the module-level wire-1 helpers
(:func:`encode_frame` / :func:`decode_frame` / :func:`read_frame`)
preserve the original base64-text representation for compatibility.

**Wire negotiation.**  The HELLO exchange always speaks wire 1 (JSON),
so any client can open the conversation.  A client that can speak a
newer codec adds ``wire: <max version>`` to its HELLO; the server
answers with the version it granted (``min(requested, server max)``)
and both sides switch codecs for every subsequent frame.  A HELLO
without ``wire`` pins the connection to wire 1 and the server's reply
omits the field — a version-1 client never sees a field it does not
know.

Client-to-server frames (``open``/``push``/``flush``) may carry a
``delivered`` field: the count of output items the client has safely
received for that stream.  It is the acknowledgement that lets the
server prune its bounded output-replay buffer and re-send exactly the
unacknowledged output range on resume (exactly-once delivery even when
a result frame is lost to a crash; see :mod:`repro.server.service`).

Decoding is strict: unknown frame types, missing or unknown fields,
wrong field types, negative counters, truncated or oversized frames and
undecodable payloads all raise :class:`repro.errors.ProtocolError` —
never a raw ``KeyError`` from frame plumbing, and never a silently
half-understood frame (fuzzed in ``tests/unit/test_protocol.py``,
mirroring the checkpoint deserialization contract).
"""

from __future__ import annotations

import asyncio
import base64
import binascii
import json
import struct
from dataclasses import dataclass

import numpy as np

from repro.errors import ProtocolError

#: Protocol version spoken by this library; HELLO frames carry it and
#: mismatches are rejected during the handshake.
PROTOCOL_VERSION = 1

#: Wire (codec) versions: 1 = JSON frames, 2 = binary frames.
WIRE_JSON = 1
WIRE_BINARY = 2

#: Default upper bound on one frame's JSON body, in bytes.  At 8 MiB a
#: frame holds ~780k float64 items after base64 — far beyond a sane
#: chunk — so anything larger is a corrupt or hostile length prefix.
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: Absolute ceiling on any declared frame size, regardless of how large
#: a caller sets its ``max_bytes``.  A hostile peer declaring a huge
#: length must hit a clean :class:`ProtocolError` *before* any body
#: buffering can grow toward an OOM — even on a decoder misconfigured
#: with an enormous limit.
HARD_MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")


def effective_max_bytes(max_bytes: int) -> int:
    """The enforced frame-size cap: ``max_bytes`` clamped to the hard
    ceiling (:data:`HARD_MAX_FRAME_BYTES`)."""
    return min(int(max_bytes), HARD_MAX_FRAME_BYTES)

#: Per-frame-type field contract: (required, optional).  Unknown fields
#: are rejected — a field this library does not understand would
#: otherwise be dropped silently (same strictness as checkpoints).
_FRAME_FIELDS = {
    "hello": (frozenset({"type", "version"}),
              frozenset({"tenant", "server", "credits", "wire",
                         "transport"})),
    "open": (frozenset({"type", "stream_id", "kind", "key"}),
             frozenset({"watermark", "wm_length", "params", "encoding",
                        "encoding_options", "require_labels",
                        "transform_degree", "resume", "delivered"})),
    "push": (frozenset({"type", "stream_id", "seq", "values"}),
             frozenset({"delivered"})),
    "flush": (frozenset({"type", "stream_id"}),
              frozenset({"delivered"})),
    "result": (frozenset({"type", "op", "stream_id"}),
               frozenset({"seq", "values", "items_in", "items_out",
                          "finished", "detection"})),
    "credit": (frozenset({"type", "stream_id", "credits"}), frozenset()),
    "error": (frozenset({"type", "code", "message"}),
              frozenset({"stream_id"})),
    # The bare form is the client's request; the server's reply carries
    # the snapshot in ``payload``.  NOTE: "status" sorts *after* every
    # pre-existing frame name, so the binary codec's sorted type codes
    # for older frames are unchanged (pinned in test_protocol.py).
    "status": (frozenset({"type"}), frozenset({"payload"})),
    "bye": (frozenset({"type"}), frozenset({"reason"})),
}

#: Expected Python type per field (bools are not ints here).
_FIELD_TYPES = {
    "type": str,
    "version": int,
    "wire": int,
    "transport": str,
    "tenant": str,
    "server": str,
    "credits": int,
    "stream_id": str,
    "kind": str,
    "key": str,
    "watermark": str,
    "wm_length": int,
    "params": dict,
    "encoding": str,
    "encoding_options": dict,
    "require_labels": bool,
    "transform_degree": (int, float),
    "resume": bool,
    "seq": int,
    "delivered": int,
    "values": (str, np.ndarray),
    "op": str,
    "items_in": int,
    "items_out": int,
    "finished": bool,
    "detection": dict,
    "code": str,
    "message": str,
    "reason": str,
    "payload": dict,
}

#: Integer fields that must be non-negative.
_NON_NEGATIVE = frozenset({"version", "wire", "credits", "seq",
                           "wm_length", "items_in", "items_out",
                           "delivered"})

#: Fields that must be non-empty strings.
_NON_EMPTY = frozenset({"type", "stream_id", "kind", "op", "code"})


def validate_frame(frame, *, source: str = "frame") -> dict:
    """Check one decoded frame object; raise :class:`ProtocolError` if bad.

    ``source`` names where the frame came from (a peer address, "encode")
    so error messages point at the offending side.  Returns the frame
    unchanged on success.
    """
    if not isinstance(frame, dict):
        raise ProtocolError(
            f"{source}: frame must be a JSON object, "
            f"got {type(frame).__name__}"
        )
    frame_type = frame.get("type")
    if not isinstance(frame_type, str) or frame_type not in _FRAME_FIELDS:
        raise ProtocolError(
            f"{source}: unknown frame type {frame_type!r}; expected one "
            f"of {sorted(_FRAME_FIELDS)}"
        )
    required, optional = _FRAME_FIELDS[frame_type]
    unknown = set(frame) - required - optional
    if unknown:
        raise ProtocolError(
            f"{source}: unknown fields {sorted(unknown)} in "
            f"{frame_type!r} frame"
        )
    missing = required - set(frame)
    if missing:
        raise ProtocolError(
            f"{source}: {frame_type!r} frame is missing required fields "
            f"{sorted(missing)}"
        )
    for name, value in frame.items():
        expected = _FIELD_TYPES[name]
        # JSON has distinct true/int, but Python bool *is* int — reject
        # booleans wherever an integer is expected (and vice versa).
        if isinstance(value, bool) and expected is not bool:
            raise ProtocolError(
                f"{source}: field {name!r} must be "
                f"{getattr(expected, '__name__', expected)}, got bool"
            )
        if not isinstance(value, expected):
            if isinstance(expected, type):
                expected_name = expected.__name__
            elif expected == (int, float):
                expected_name = "number"
            else:
                expected_name = " or ".join(t.__name__ for t in expected)
            raise ProtocolError(
                f"{source}: field {name!r} must be {expected_name}, got "
                f"{type(value).__name__}"
            )
        if name in _NON_NEGATIVE and value < 0:
            raise ProtocolError(
                f"{source}: field {name!r} must be >= 0, got {value}"
            )
        if name in _NON_EMPTY and not value:
            raise ProtocolError(
                f"{source}: field {name!r} must be a non-empty string"
            )
    return frame


def _encode_json_body(frame: dict, *, max_bytes: int) -> bytes:
    """Serialize one validated frame to its wire-1 JSON body bytes.

    An ndarray ``values`` field is converted to its base64 text form in
    place (same field position), so callers may hold payloads as arrays
    and still emit bytes identical to a base64-text caller.
    """
    if isinstance(frame.get("values"), np.ndarray):
        frame = {**frame, "values": encode_array(frame["values"])}
    validate_frame(frame, source="encode")
    try:
        body = json.dumps(frame, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"frame is not JSON-serializable: {exc}") from exc
    limit = effective_max_bytes(max_bytes)
    if len(body) > limit:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the {limit}-byte "
            "frame limit; push smaller chunks"
        )
    return body


def encode_frame(frame: dict, *, max_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Serialize one validated frame to its length-prefixed wire-1 form."""
    body = _encode_json_body(frame, max_bytes=max_bytes)
    return _HEADER.pack(len(body)) + body


def decode_frame(body: bytes, *, source: str = "frame") -> dict:
    """Decode and validate one frame body (the bytes after the prefix)."""
    try:
        decoded = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(
            f"{source}: frame body is not valid UTF-8 JSON "
            f"(truncated or corrupt?): {exc}"
        ) from exc
    return validate_frame(decoded, source=source)


@dataclass
class FrameDecoder:
    """Incremental (sans-IO) frame decoder for arbitrary byte arrivals.

    Feed raw bytes in any fragmentation; complete frames come out
    validated.  The decoder enforces the frame-size limit *from the
    length prefix alone* — clamped to the absolute
    :data:`HARD_MAX_FRAME_BYTES` ceiling even if ``max_bytes`` is set
    absurdly high — so an oversized or hostile prefix is rejected with
    a clean :class:`ProtocolError` before any buffering of its body can
    grow toward an OOM.  Used by the fuzz tests and by any sync
    transport.

    ``codec`` selects the body decoder: ``None`` keeps the legacy
    wire-1 behaviour (``values`` stays base64 text); a
    :class:`FrameCodec` decodes bodies through that codec (``values``
    becomes an ndarray).
    """

    max_bytes: int = MAX_FRAME_BYTES
    codec: "FrameCodec | None" = None
    _buffer: bytes = b""

    def feed(self, data: bytes) -> "list[dict]":
        """Consume ``data``; return every frame completed by it."""
        self._buffer += bytes(data)
        limit = effective_max_bytes(self.max_bytes)
        frames = []
        while True:
            if len(self._buffer) < _HEADER.size:
                return frames
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > limit:
                raise ProtocolError(
                    f"frame length prefix {length} exceeds the "
                    f"{limit}-byte frame limit (corrupt stream?)"
                )
            if len(self._buffer) < _HEADER.size + length:
                return frames
            body = self._buffer[_HEADER.size:_HEADER.size + length]
            self._buffer = self._buffer[_HEADER.size + length:]
            if self.codec is None:
                frames.append(decode_frame(body))
            else:
                frames.append(self.codec.decode(body))

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame (0 at a boundary)."""
        return len(self._buffer)


async def read_frame(reader: asyncio.StreamReader, *,
                     max_bytes: int = MAX_FRAME_BYTES) -> "dict | None":
    """Read one frame from an asyncio stream; ``None`` on clean EOF.

    EOF *inside* a frame (mid-prefix or mid-body) raises
    :class:`ProtocolError` — the peer died mid-sentence, which callers
    must treat as a lost connection, not a clean goodbye.
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError(
            "connection closed mid-frame (inside the length prefix)"
        ) from exc
    (length,) = _HEADER.unpack(header)
    limit = effective_max_bytes(max_bytes)
    if length > limit:
        raise ProtocolError(
            f"frame length prefix {length} exceeds the {limit}-byte "
            "frame limit (corrupt stream?)"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed mid-frame ({len(exc.partial)} of "
            f"{length} body bytes)"
        ) from exc
    return decode_frame(body)


async def write_frame(writer: asyncio.StreamWriter, frame: dict, *,
                      max_bytes: int = MAX_FRAME_BYTES) -> None:
    """Validate, serialize and send one frame, honouring backpressure."""
    writer.write(encode_frame(frame, max_bytes=max_bytes))
    await writer.drain()


# ----------------------------------------------------------------------
# payload encoding
# ----------------------------------------------------------------------
def encode_array(values) -> str:
    """Encode a float64 array as base64 text (bit-exact round-trip)."""
    array = np.asarray(values, dtype="<f8").ravel()
    return base64.b64encode(array.tobytes()).decode("ascii")


def decode_array(text: str, *, source: str = "frame") -> np.ndarray:
    """Decode :func:`encode_array` text back into a float64 array."""
    if not isinstance(text, str):
        raise ProtocolError(
            f"{source}: values payload must be a base64 string, got "
            f"{type(text).__name__}"
        )
    try:
        raw = base64.b64decode(text.encode("ascii"), validate=True)
    except (UnicodeEncodeError, binascii.Error, ValueError) as exc:
        raise ProtocolError(
            f"{source}: values payload is not valid base64: {exc}"
        ) from exc
    if len(raw) % 8:
        raise ProtocolError(
            f"{source}: values payload of {len(raw)} bytes is not a "
            "whole number of float64 items (truncated?)"
        )
    return np.frombuffer(raw, dtype="<f8").astype(np.float64)


def as_float64(values) -> np.ndarray:
    """Coerce a decoded payload to a native float64 array (no copy when
    it already is one, as on little-endian machines)."""
    array = np.asarray(values)
    if array.dtype == np.float64:
        return array
    return array.astype(np.float64)


def encode_key(key: bytes) -> str:
    """Encode secret key bytes for the OPEN frame (transport only —
    the server holds keys in memory and never persists them)."""
    if isinstance(key, str):
        key = key.encode("utf-8")
    return base64.b64encode(bytes(key)).decode("ascii")


def decode_key(text: str, *, source: str = "frame") -> bytes:
    """Decode an OPEN frame's key field back into key bytes."""
    try:
        key = base64.b64decode(str(text).encode("ascii"), validate=True)
    except (UnicodeEncodeError, binascii.Error, ValueError) as exc:
        raise ProtocolError(
            f"{source}: key is not valid base64: {exc}"
        ) from exc
    if not key:
        raise ProtocolError(f"{source}: key must not be empty")
    return key


# ----------------------------------------------------------------------
# frame codecs (the negotiated wire versions)
# ----------------------------------------------------------------------
class FrameCodec:
    """One wire version: frame dict <-> frame body bytes.

    Codecs are transport-agnostic — they see one frame *body* at a
    time; message delimiting (length prefixes, WebSocket frames) is the
    transport's job (:mod:`repro.server.transports`).  Decoded frames
    carry ``values`` as a float64 ndarray; frames given to
    :meth:`encode` may hold ``values`` as an ndarray or as wire-1
    base64 text.
    """

    #: Numeric wire version carried in HELLO negotiation.
    wire: int = 0
    #: Human name used by ``--wire`` flags and bench scenario labels.
    name: str = ""

    def encode(self, frame: dict, *,
               max_bytes: int = MAX_FRAME_BYTES) -> bytes:
        """Validate and serialize one frame to its body bytes."""
        raise NotImplementedError

    def decode(self, body: bytes, *, source: str = "frame") -> dict:
        """Decode and validate one frame body; ``values`` -> ndarray."""
        raise NotImplementedError


class JsonFrameCodec(FrameCodec):
    """Wire version 1: UTF-8 JSON bodies, base64 float64 payloads.

    The bytes this codec produces are identical to the original
    (pre-negotiation) protocol, so a version-1 peer cannot tell it is
    talking to a multi-codec implementation.
    """

    wire = WIRE_JSON
    name = "json"

    def encode(self, frame: dict, *,
               max_bytes: int = MAX_FRAME_BYTES) -> bytes:
        """Serialize one frame to JSON body bytes (arrays -> base64)."""
        return _encode_json_body(frame, max_bytes=max_bytes)

    def decode(self, body: bytes, *, source: str = "frame") -> dict:
        """Decode a JSON body; the ``values`` field becomes an ndarray."""
        frame = decode_frame(body, source=source)
        if "values" in frame:
            frame["values"] = decode_array(frame["values"], source=source)
        return frame


#: Binary frame body header: frame-type code (uint8), flags (uint8,
#: bit 0 = a values payload follows the meta section), meta length
#: (uint32 little-endian).
_BINARY_HEADER = struct.Struct("<BBI")
_BINARY_HAS_VALUES = 0x01
_TYPE_CODES = {name: code + 1
               for code, name in enumerate(sorted(_FRAME_FIELDS))}
_TYPE_NAMES = {code: name for name, code in _TYPE_CODES.items()}


class BinaryFrameCodec(FrameCodec):
    """Wire version 2: struct-packed header + raw float64 payload.

    Body layout::

        offset 0  uint8   frame-type code (1..9, sorted frame names)
        offset 1  uint8   flags (bit 0: values payload present)
        offset 2  uint32  meta length M, little-endian
        offset 6  M bytes meta: UTF-8 JSON object of every field except
                          ``type`` and ``values``
        offset 6+M ...    values payload: raw little-endian float64

    The payload decodes with :func:`numpy.frombuffer` straight into an
    array view over the received body — no base64, no per-item Python
    objects — which is what drops the remote-serving overhead to near
    the in-process cost.  Decoding is as strict as wire 1: bad type
    codes, truncated headers, meta that is not a JSON object, meta
    smuggling ``type``/``values`` fields, a payload that is not a whole
    number of float64 items, or a payload on a flagless frame all raise
    :class:`ProtocolError`.
    """

    wire = WIRE_BINARY
    name = "binary"

    def encode(self, frame: dict, *,
               max_bytes: int = MAX_FRAME_BYTES) -> bytes:
        """Serialize one frame to its binary body bytes."""
        validate_frame(frame, source="encode")
        values = frame.get("values")
        if isinstance(values, str):
            values = decode_array(values, source="encode")
        meta = {name: value for name, value in frame.items()
                if name not in ("type", "values")}
        try:
            meta_bytes = json.dumps(
                meta, separators=(",", ":")).encode("utf-8")
        except (TypeError, ValueError) as exc:
            raise ProtocolError(
                f"frame meta is not JSON-serializable: {exc}") from exc
        payload = (np.ascontiguousarray(values, dtype="<f8").tobytes()
                   if values is not None else b"")
        flags = _BINARY_HAS_VALUES if values is not None else 0
        body = (_BINARY_HEADER.pack(_TYPE_CODES[frame["type"]], flags,
                                    len(meta_bytes))
                + meta_bytes + payload)
        limit = effective_max_bytes(max_bytes)
        if len(body) > limit:
            raise ProtocolError(
                f"frame of {len(body)} bytes exceeds the {limit}-byte "
                "frame limit; push smaller chunks"
            )
        return body

    def decode(self, body: bytes, *, source: str = "frame") -> dict:
        """Decode one binary body; the payload becomes an ndarray view."""
        body = bytes(body)
        if len(body) < _BINARY_HEADER.size:
            raise ProtocolError(
                f"{source}: binary frame of {len(body)} bytes is shorter "
                f"than the {_BINARY_HEADER.size}-byte header"
            )
        type_code, flags, meta_len = _BINARY_HEADER.unpack_from(body)
        type_name = _TYPE_NAMES.get(type_code)
        if type_name is None:
            raise ProtocolError(
                f"{source}: unknown binary frame type code {type_code}"
            )
        if flags & ~_BINARY_HAS_VALUES:
            raise ProtocolError(
                f"{source}: unknown binary frame flags 0x{flags:02x}"
            )
        payload_offset = _BINARY_HEADER.size + meta_len
        if payload_offset > len(body):
            raise ProtocolError(
                f"{source}: binary frame meta length {meta_len} overruns "
                f"the {len(body)}-byte body (truncated?)"
            )
        try:
            meta = json.loads(
                body[_BINARY_HEADER.size:payload_offset].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(
                f"{source}: binary frame meta is not valid UTF-8 JSON: "
                f"{exc}"
            ) from exc
        if not isinstance(meta, dict):
            raise ProtocolError(
                f"{source}: binary frame meta must be a JSON object, got "
                f"{type(meta).__name__}"
            )
        if "type" in meta or "values" in meta:
            raise ProtocolError(
                f"{source}: binary frame meta must not carry "
                "'type'/'values' fields"
            )
        frame = {"type": type_name, **meta}
        payload_bytes = len(body) - payload_offset
        if not flags & _BINARY_HAS_VALUES:
            if payload_bytes:
                raise ProtocolError(
                    f"{source}: {payload_bytes} payload bytes on a frame "
                    "whose flags declare no values"
                )
        else:
            if payload_bytes % 8:
                raise ProtocolError(
                    f"{source}: values payload of {payload_bytes} bytes "
                    "is not a whole number of float64 items (truncated?)"
                )
            frame["values"] = as_float64(
                np.frombuffer(body, dtype="<f8", offset=payload_offset))
        return validate_frame(frame, source=source)


#: Wire version -> codec instance (codecs are stateless singletons).
CODECS = {codec.wire: codec
          for codec in (JsonFrameCodec(), BinaryFrameCodec())}

#: The newest wire version this library speaks.
MAX_WIRE = max(CODECS)


def codec_for(wire: int) -> FrameCodec:
    """The codec for a numeric wire version; unknown versions raise."""
    codec = CODECS.get(wire)
    if codec is None:
        raise ProtocolError(
            f"unknown wire version {wire!r}; this library speaks "
            f"{sorted(CODECS)}"
        )
    return codec


def resolve_wire(wire) -> int:
    """Normalize a ``--wire`` value (name or number) to a wire version.

    Accepts codec names (``"json"``, ``"binary"``) and their numeric
    versions; anything else raises :class:`ProtocolError` listing the
    valid spellings.
    """
    if isinstance(wire, str) and not wire.isdigit():
        for codec in CODECS.values():
            if codec.name == wire:
                return codec.wire
        raise ProtocolError(
            f"unknown wire codec {wire!r}; valid names are "
            f"{sorted(codec.name for codec in CODECS.values())}"
        )
    return codec_for(int(wire)).wire
