"""Transport-blind serving engine: many tenants, one endpoint.

:class:`StreamService` is the deployable face of the library — the
SecureStreams / Gabriel middleware shape: one server multiplexes many
stream sources behind one endpoint, each tenant namespace backed by
its own :class:`~repro.hub.StreamHub` and
:class:`~repro.stores.CheckpointStore`.  The engine never touches
sockets: it exchanges frame bodies through a named
:class:`~repro.server.transports.Transport` (``tcp``, ``websocket``,
or any plugin registered under the ``transport`` registry kind), and
each connection's frame *encoding* is a negotiated
:class:`~repro.server.protocol.FrameCodec` — JSON (wire 1, the
original bytes) or binary (wire 2, raw float64 payloads).

Design points:

* **credit-based flow control** — the server grants each opened stream
  ``credits`` outstanding PUSH frames (the HELLO reply announces the
  grant); every processed PUSH returns its credit via a CREDIT frame.
  A client that pushes beyond its credit gets a ``flow`` ERROR and the
  frame is dropped — backpressure instead of unbounded buffering.
* **durability** — sessions checkpoint on a per-stream push cadence
  (``checkpoint_every``), on an optional wall-clock interval, when a
  connection ends, and during drain.  Keys arrive in OPEN frames and
  live only in process memory.
* **exactly-once outputs** — result payloads a client has not yet
  acknowledged (the ``delivered`` field on its frames) are kept in a
  bounded per-stream replay buffer, persisted in a sidecar entry
  *before* every session checkpoint (via the hub's checkpoint hook).
  On resume the server re-sends exactly the unacknowledged output
  range, so a result frame lost to a dropped connection — or to a
  SIGKILL between a checkpoint and the client's read — is redelivered
  rather than lost, and the client's dedup line drops any overlap.
* **graceful drain** — on SIGTERM (``repro serve`` installs the
  handler) the service checkpoints every stream, notifies each
  connected client with ``BYE {reason: "drain"}``, closes, and the CLI
  exits 0.
* **wire negotiation** — the HELLO exchange always travels as wire-1
  JSON.  A client that can speak a newer codec adds ``wire: N`` to its
  HELLO; the server grants ``min(N, its own max)`` and echoes the
  grant (plus the transport name) in the reply, and both sides switch
  codecs for every subsequent frame.  A client that sends no ``wire``
  field gets a reply without one — byte-identical to the
  pre-negotiation protocol — and the connection stays on JSON.
* **crash recovery** — started with ``recover=True`` over an existing
  store, the service re-admits each checkpointed stream lazily when its
  client reconnects and re-supplies the key (checkpoints are key-free,
  so eager recovery is impossible by design); OPEN's RESULT reports
  ``items_in``/``items_out`` so the client replays exactly the
  unseen suffix.  Finished streams are dropped from hub *and* store
  after their FLUSH result is sent, so a long-lived server does not
  leak (see :meth:`repro.hub.StreamHub.drop`).
"""

from __future__ import annotations

import asyncio
import hashlib
import logging
import time
from collections import deque
from pathlib import Path
from urllib.parse import quote, unquote

import numpy as np

from repro.core.params import WatermarkParams
from repro.core.serialize import params_from_dict
from repro.errors import ProtocolError, ReproError
from repro.hub import StreamHub
from repro.obs import MetricsRegistry
from repro.server import protocol
from repro.server.transports import (Listener, TransportConnection,
                                     build_transport)
from repro.stores import build_store

logger = logging.getLogger("repro.server.service")

#: Default per-stream credit grant (outstanding PUSH frames).
DEFAULT_CREDITS = 4

#: How long a draining connection handler keeps serving in-flight
#: frames before saying BYE.  A STATUS request racing a SIGTERM lands
#: inside this window and still receives a well-formed final snapshot
#: instead of a connection reset.
DRAIN_GRACE_SECONDS = 0.25

#: Upper bound on frames one connection may land during its drain
#: grace, so a client spamming requests cannot hold the drain open.
DRAIN_GRACE_FRAMES = 32


def _key_fingerprint(tenant: str, stream_id: str, key: bytes) -> str:
    """One-way fingerprint binding a key to one stream of one tenant.

    Persisted in the replay sidecar so a ``--recover`` restart can
    refuse a resume under the wrong key (which would silently corrupt
    the watermark and lock out the owner).  The key itself is never
    stored; the domain-separated hash resists cross-stream correlation.
    """
    digest = hashlib.sha256()
    for part in (b"repro.server.keyfp", tenant.encode("utf-8"),
                 stream_id.encode("utf-8"), bytes(key)):
        digest.update(len(part).to_bytes(4, "big"))
        digest.update(part)
    return digest.hexdigest()


class _Connection:
    """Per-connection state: tenant binding, codec, streams, credits."""

    def __init__(self, channel: TransportConnection,
                 max_bytes: int) -> None:
        self.channel = channel
        self.codec: protocol.FrameCodec = protocol.codec_for(
            protocol.WIRE_JSON)
        self.max_bytes = max_bytes
        self.tenant: "str | None" = None
        self.hub: "StreamHub | None" = None
        #: stream_id -> remaining PUSH credits on this connection.
        self.credits: "dict[str, int]" = {}
        self.name = channel.peer
        # Per-transport×wire traffic instruments, bound by the service
        # after the handshake settles the codec (``None`` until then —
        # HELLO frames are not attributed to a negotiated wire).
        self.m_frames_in = None
        self.m_frames_out = None
        self.m_bytes_in = None
        self.m_bytes_out = None

    async def read(self) -> "dict | None":
        """Read and decode one frame; ``None`` on clean end-of-stream."""
        body = await self.channel.read_message()
        if body is None:
            return None
        if self.m_bytes_in is not None:
            self.m_frames_in.inc()
            self.m_bytes_in.inc(len(body))
        return self.codec.decode(body, source=f"frame from {self.name}")

    async def send(self, frame: dict) -> None:
        """Encode (validating) and write one frame to this client."""
        body = self.codec.encode(frame, max_bytes=self.max_bytes)
        if self.m_bytes_out is not None:
            self.m_frames_out.inc()
            self.m_bytes_out.inc(len(body))
        await self.channel.write_message(body)

    async def send_many(self, frames: "list[dict]") -> None:
        """Encode and write several frames in one transport batch."""
        bodies = [self.codec.encode(frame, max_bytes=self.max_bytes)
                  for frame in frames]
        if self.m_bytes_out is not None:
            self.m_frames_out.inc(len(bodies))
            self.m_bytes_out.inc(sum(len(body) for body in bodies))
        await self.channel.write_messages(bodies)

    async def close(self) -> None:
        """Close the transport, swallowing teardown races."""
        await self.channel.close()

    def abort(self) -> None:
        """Drop the connection immediately (crash-path tests use this)."""
        self.channel.abort()


class StreamService:
    """Serve :class:`~repro.hub.StreamHub` tenants over a transport.

    Parameters
    ----------
    host, port:
        Bind address.  Port 0 picks a free port; read it back from
        :attr:`address` after :meth:`start`.
    transport:
        Registered transport name (``tcp`` or ``websocket``; see the
        ``transport`` rows of ``repro list``).
    max_wire:
        Newest wire version (codec name or number) this server will
        grant during HELLO negotiation.  Clients always may negotiate
        down; ``"json"``/1 pins the server to the original encoding.
    store_path:
        Root directory for durable per-tenant stores (each tenant gets
        ``store_path/<quoted-tenant>``).  ``None`` keeps checkpoints in
        per-tenant memory stores (no durability, still drains cleanly).
    store_backend:
        Registered store name (``repro list``) used when ``store_path``
        is given; default ``"directory"``.
    credits:
        PUSH frames a client may have outstanding per stream.
    checkpoint_every:
        Hub checkpoint cadence (every N pushes per stream).
    checkpoint_interval:
        Optional wall-clock seconds between checkpoint-all sweeps.
    max_live_sessions:
        Per-tenant LRU residency cap (see :class:`StreamHub`).
    recover:
        Allow starting over a non-empty store and resuming its streams.
        Without it a non-empty store is refused, so a stale directory
        cannot be silently adopted.
    metrics:
        The :class:`~repro.obs.MetricsRegistry` this server reports
        into.  Defaults to a fresh enabled registry — a serving process
        is the one place observability is on by default; pass
        ``MetricsRegistry(enabled=False)`` to switch it off.
    status_interval:
        Optional wall-clock seconds between periodic status snapshots
        handed to ``status_sink`` (the ``repro serve
        --status-interval`` JSON log line).
    status_sink:
        Callable receiving each periodic :meth:`status_snapshot` dict.
    fault_injector:
        Optional :class:`~repro.chaos.FaultInjector` (``repro serve
        --chaos``): wraps the listening transport and the per-tenant
        session stores with the chaos wrappers and arms the plan's
        process-crash gates inside the push path.  The replay sidecar
        stores stay unwrapped — they model the service's own metadata,
        not the failure domain under test.
    """

    def __init__(self, *, host: str = "127.0.0.1", port: int = 0,
                 transport: str = "tcp",
                 max_wire: "int | str" = protocol.MAX_WIRE,
                 store_path: "str | Path | None" = None,
                 store_backend: str = "directory",
                 credits: int = DEFAULT_CREDITS,
                 checkpoint_every: int = 1,
                 checkpoint_interval: "float | None" = None,
                 max_live_sessions: "int | None" = None,
                 recover: bool = False,
                 max_frame_bytes: int = protocol.MAX_FRAME_BYTES,
                 metrics: "MetricsRegistry | None" = None,
                 status_interval: "float | None" = None,
                 status_sink=None,
                 fault_injector=None) -> None:
        if credits < 1:
            raise ReproError(f"credits must be >= 1, got {credits}")
        self._host = host
        self._port = port
        self._transport_name = transport
        self._transport = build_transport(transport)
        self._fault_injector = fault_injector
        if fault_injector is not None \
                and fault_injector.plan.server_transport.active():
            from repro.chaos.wrappers import ChaosTransport
            self._transport = ChaosTransport(
                inner=self._transport, injector=fault_injector,
                side="server")
        self._max_wire = protocol.resolve_wire(max_wire)
        self._store_path = Path(store_path) if store_path is not None else None
        self._store_backend = store_backend
        self._credits = int(credits)
        self._checkpoint_every = int(checkpoint_every)
        self._checkpoint_interval = checkpoint_interval
        self._max_live = max_live_sessions
        self._recover = recover
        self._max_frame_bytes = int(max_frame_bytes)
        self._hubs: "dict[str, StreamHub]" = {}
        #: tenant -> sidecar store holding each stream's replay buffer.
        self._meta_stores: "dict[str, object]" = {}
        #: (tenant, stream_id) -> owning connection, while one is live.
        self._owners: "dict[tuple[str, str], _Connection]" = {}
        #: (tenant, stream_id) -> key bytes seen for that stream.
        self._keys: "dict[tuple[str, str], bytes]" = {}
        #: (tenant, stream_id) -> deque of (start_pos, values) result
        #: payloads not yet acknowledged by the client.
        self._outbuf: "dict[tuple[str, str], deque]" = {}
        #: (tenant, stream_id) -> output items the client acknowledged.
        self._acked: "dict[tuple[str, str], int]" = {}
        #: (tenant, stream_id) -> pushes since registration (cadence).
        self._push_counts: "dict[tuple[str, str], int]" = {}
        self._connections: "set[_Connection]" = set()
        self._listener: "Listener | None" = None
        self._drained = asyncio.Event()
        self._draining = False
        self._drain_begun = asyncio.Event()
        self._drain_reason = "drain"
        self._drain_seconds: "float | None" = None
        self._started_at: "float | None" = None
        self._flusher: "asyncio.Task | None" = None
        self._status_task: "asyncio.Task | None" = None
        self._status_interval = status_interval
        self._status_sink = status_sink
        self.frames_in = 0
        self.pushes = 0
        self.errors = 0
        #: wire version -> connections that negotiated it (lifetime).
        self.wire_sessions: "dict[int, int]" = {}
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        m = self.metrics
        self._m_connections_total = m.counter("server_connections_total")
        self._m_credit_stalls = m.counter("server_credit_stalls_total")
        self._m_checkpoint_failures = m.counter(
            "server_checkpoint_failures_total")
        m.gauge_callback(
            "server_store_fallbacks",
            lambda: sum(self._store_stat(hub, "fallbacks")
                        for hub in self._hubs.values()))
        m.gauge_callback(
            "server_store_quarantined",
            lambda: sum(self._store_stat(hub, "quarantined")
                        for hub in self._hubs.values()))
        m.gauge_callback("server_connections", lambda: len(self._connections))
        m.gauge_callback("server_tenants", lambda: len(self._hubs))
        m.gauge_callback("server_replay_buffer_chunks",
                         lambda: sum(len(buf)
                                     for buf in self._outbuf.values()))
        m.gauge_callback(
            "server_replay_buffer_items",
            lambda: sum(values.size for buf in self._outbuf.values()
                        for _, values in buf))
        m.gauge_callback("server_frames_in", lambda: self.frames_in)
        m.gauge_callback("server_pushes", lambda: self.pushes)
        m.gauge_callback("server_errors", lambda: self.errors)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "tuple[str, int]":
        """Bind and start accepting; return the bound ``(host, port)``."""
        if self._store_path is not None and not self._recover:
            leftover = self.recoverable()
            if leftover:
                raise ReproError(
                    f"store {self._store_path} already holds checkpoints "
                    f"for {sum(len(v) for v in leftover.values())} "
                    "stream(s); start with --recover to resume them"
                )
        self._listener = await self._transport.serve(
            self._host, self._port, self._handle_connection,
            max_bytes=self._max_frame_bytes)
        self._host, self._port = self._listener.address
        self._started_at = time.time()
        if self._checkpoint_interval:
            self._flusher = asyncio.create_task(self._checkpoint_loop())
        if self._status_interval:
            self._status_task = asyncio.create_task(self._status_loop())
        return self.address

    @property
    def address(self) -> "tuple[str, int]":
        """The bound ``(host, port)`` (final after :meth:`start`)."""
        return self._host, self._port

    async def serve_until_drained(self) -> None:
        """Block until :meth:`drain` completes (the CLI's main loop)."""
        await self._drained.wait()

    async def drain(self, reason: str = "drain") -> None:
        """Graceful shutdown: checkpoint all, notify clients, stop.

        Safe to call more than once; later calls wait for the first.
        Connection handlers own their goodbye: each keeps serving
        in-flight frames for :data:`DRAIN_GRACE_SECONDS` (so a STATUS
        request racing the SIGTERM still gets a well-formed final
        snapshot), then sends BYE and closes; this method waits for
        them and force-closes any straggler past the deadline.
        """
        if self._draining:
            await self._drained.wait()
            return
        self._draining = True
        self._drain_reason = reason
        started = time.perf_counter()
        self._drain_begun.set()
        try:
            for task in (self._flusher, self._status_task):
                if task is not None:
                    task.cancel()
            if self._listener is not None:
                self._listener.close()
            try:
                self.checkpoint_all()
            except ReproError:
                # A failing store (full disk, ...) must not leave the
                # server unkillable: clients are still notified and the
                # listener still closes.  Cadence checkpoints are the
                # durability backstop.
                self.errors += 1
            loop = asyncio.get_running_loop()
            deadline = loop.time() + 4 * DRAIN_GRACE_SECONDS + 1.0
            while self._connections and loop.time() < deadline:
                await asyncio.sleep(0.02)
            for connection in list(self._connections):
                await self._send_bye(connection)
                await connection.close()
            if self._listener is not None:
                await self._listener.wait_closed()
        finally:
            self._drain_seconds = round(time.perf_counter() - started, 6)
            self.metrics.gauge("server_drain_seconds").set(
                self._drain_seconds)
            self._drained.set()

    def checkpoint_all(self) -> "dict[str, dict[str, int]]":
        """Checkpoint every stream of every tenant hub now."""
        return {tenant: hub.checkpoint_all()
                for tenant, hub in self._hubs.items()}

    def status(self) -> dict:
        """Operator snapshot: what this server speaks and has served.

        Surfaces the negotiated axes — transport name, the newest wire
        version the server grants, and how many connections negotiated
        each wire version — next to the lifetime frame counters, so
        ``repro serve``'s ready/drained lines can show what a running
        server actually speaks.
        """
        return {
            "transport": self._transport_name,
            "max_wire": self._max_wire,
            "wire_sessions": {str(wire): count for wire, count
                              in sorted(self.wire_sessions.items())},
            "connections": len(self._connections),
            "tenants": sorted(self._hubs),
            "frames_in": self.frames_in,
            "pushes": self.pushes,
            "errors": self.errors,
            "draining": self._draining,
            "uptime_seconds": (round(time.time() - self._started_at, 3)
                               if self._started_at is not None else None),
        }

    def status_snapshot(self) -> dict:
        """Full observability snapshot (the STATUS frame payload).

        Three sections, all JSON-safe: ``server`` (:meth:`status` plus
        drain timing), ``tenants`` (per-stream hub stats — including
        ``checkpoint_lag`` / ``us_per_item`` — and the aggregated
        encoding-search telemetry of each tenant's live sessions), and
        ``metrics`` (the registry's counters, gauges with callbacks
        sampled now, and histograms with p50/p95/p99).
        """
        tenants = {}
        for tenant, hub in self._hubs.items():
            tenants[tenant] = {
                "streams": len(hub),
                "stats": hub.stats(),
                "encoding": hub.encoding_summary(),
            }
        return {
            "server": {**self.status(),
                       "drain_seconds": self._drain_seconds},
            "tenants": tenants,
            "metrics": self.metrics.snapshot(),
        }

    async def _status_loop(self) -> None:
        while True:
            await asyncio.sleep(self._status_interval)
            if self._status_sink is None:
                continue
            try:
                self._status_sink(self.status_snapshot())
            except Exception:
                # A broken sink (closed pipe, ...) must not kill serving.
                self.errors += 1

    def recoverable(self) -> "dict[str, list[str]]":
        """Checkpointed stream ids per tenant found under the store root.

        Tenant discovery assumes the directory layout this service
        writes (one subdirectory per tenant); the ids inside each are
        read through the configured backend's own :meth:`ids`, not by
        re-parsing file names here.
        """
        found: "dict[str, list[str]]" = {}
        if self._store_path is None or not self._store_path.is_dir():
            return found
        for entry in sorted(self._store_path.iterdir()):
            if not entry.is_dir() or entry.name == "%meta":
                continue
            ids = build_store(self._store_backend, entry).ids()
            if ids:
                found[unquote(entry.name)] = list(ids)
        return found

    @staticmethod
    def _store_stat(hub: StreamHub, name: str) -> int:
        """A durability counter off the hub's store (chaos-unwrapped)."""
        store = hub.store
        store = getattr(store, "inner", store)
        return int(getattr(store, name, 0))

    def hub_for(self, tenant: str) -> StreamHub:
        """The tenant's hub, created (with its stores) on first use.

        The hub itself runs with ``checkpoint_every=0``: the *service*
        owns the cadence so checkpoints land only after a push's result
        has been handed to the transport — never between ingestion and
        delivery, where a crash would strand released outputs.  The
        checkpoint hook persists the replay sidecar immediately before
        every session write (including LRU evictions), so the sidecar
        is never older than the session state it covers.
        """
        hub = self._hubs.get(tenant)
        if hub is None:
            if self._store_path is not None:
                quoted = quote(tenant, safe="")
                store = build_store(self._store_backend,
                                    self._store_path / quoted)
                # Sidecars live under one reserved directory whose name
                # cannot collide with any quoted tenant: quote() output
                # contains "%" only in valid %XX escapes, never "%m".
                meta = build_store(self._store_backend,
                                   self._store_path / "%meta" / quoted)
            else:
                store = build_store("memory")
                meta = build_store("memory")
            if self._fault_injector is not None \
                    and self._fault_injector.plan.store.active():
                from repro.chaos.wrappers import ChaosCheckpointStore
                store = ChaosCheckpointStore(store, self._fault_injector,
                                             site=f"store.{tenant}")
            hub = StreamHub(store=store, checkpoint_every=0,
                            max_live_sessions=self._max_live,
                            checkpoint_hook=lambda stream_id, _t=tenant:
                            self._save_sidecar(_t, stream_id),
                            metrics=self.metrics,
                            metrics_labels={"tenant": tenant})
            self._hubs[tenant] = hub
            self._meta_stores[tenant] = meta
        return hub

    # ------------------------------------------------------------------
    # output replay buffer (exactly-once delivery)
    # ------------------------------------------------------------------
    def _note_ack(self, claim: "tuple[str, str]", delivered: int) -> None:
        """Record the client's delivery watermark; prune covered buffers."""
        acked = max(self._acked.get(claim, 0), int(delivered))
        self._acked[claim] = acked
        buffer = self._outbuf.get(claim)
        while buffer and buffer[0][0] + buffer[0][1].size <= acked:
            buffer.popleft()

    def _buffer_output(self, claim: "tuple[str, str]", start: int,
                       values: np.ndarray) -> None:
        """Retain one result payload until the client acknowledges it."""
        if values.size:
            self._outbuf.setdefault(claim, deque()).append(
                (int(start), values))

    def _replay_slice(self, claim: "tuple[str, str]", delivered: int,
                      items_out: int) -> "np.ndarray | None":
        """Outputs in ``[delivered, items_out)`` from the replay buffer.

        ``None`` when nothing is missing.  A gap — outputs released and
        acknowledged-range pruned, yet not covering the request — means
        exactly-once delivery is impossible; that must fail loudly,
        never resume with silent output loss.
        """
        if delivered >= items_out:
            return None
        pieces = []
        position = delivered
        for start, values in self._outbuf.get(claim, ()):
            end = start + values.size
            if end <= position:
                continue
            if start > position:
                break
            pieces.append(values[position - start:])
            position = end
        if position < items_out:
            raise ReproError(
                f"cannot resume stream {claim[1]!r}: output items "
                f"[{position}, {items_out}) were released but are no "
                "longer in the replay buffer (open the stream fresh "
                "and replay its source instead)"
            )
        replay = np.concatenate(pieces)
        return replay[:items_out - delivered]

    def _save_sidecar(self, tenant: str, stream_id: str) -> None:
        """Persist the stream's replay buffer + key fingerprint.

        Invoked by the hub's checkpoint hook *before* the session state
        is written, so after any crash the durable sidecar covers at
        least every output the durable session state has released.
        """
        claim = (tenant, stream_id)
        key = self._keys.get(claim)
        entry = {
            "acked": self._acked.get(claim, 0),
            "key_fp": (_key_fingerprint(tenant, stream_id, key)
                       if key is not None else None),
            "chunks": [[int(start), protocol.encode_array(values)]
                       for start, values in self._outbuf.get(claim, ())],
        }
        self._meta_stores[tenant].save(stream_id, entry)

    def _load_sidecar(self, tenant: str, stream_id: str,
                      key: bytes) -> None:
        """Rehydrate the replay buffer after a ``--recover`` restore.

        Verifies the key fingerprint recorded at checkpoint time: a
        resume under a different key would continue the embedding with
        a corrupted watermark and lock the owner out.
        """
        claim = (tenant, stream_id)
        meta = self._meta_stores[tenant]
        if stream_id not in meta:
            return
        entry = meta.load(stream_id)
        recorded = entry.get("key_fp")
        if recorded is not None \
                and recorded != _key_fingerprint(tenant, stream_id, key):
            raise ReproError(
                f"key mismatch for stream {stream_id!r}; a resumed "
                "stream must re-supply its original key"
            )
        self._acked[claim] = int(entry.get("acked", 0))
        self._outbuf[claim] = deque(
            (int(start), protocol.decode_array(values, source="sidecar"))
            for start, values in entry.get("chunks", ()))

    def _forget_stream(self, claim: "tuple[str, str]") -> None:
        """Drop all service-side state for a finished/dropped stream."""
        self._owners.pop(claim, None)
        self._keys.pop(claim, None)
        self._outbuf.pop(claim, None)
        self._acked.pop(claim, None)
        self._push_counts.pop(claim, None)
        meta = self._meta_stores.get(claim[0])
        if meta is not None and claim[1] in meta:
            meta.delete(claim[1])

    async def _checkpoint_loop(self) -> None:
        while True:
            await asyncio.sleep(self._checkpoint_interval)
            try:
                self.checkpoint_all()
            except ReproError:
                # A single failed sweep (e.g. full disk) must not kill
                # the server; the next cadence checkpoint retries.
                self.errors += 1

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self,
                                 channel: TransportConnection) -> None:
        connection = _Connection(channel, self._max_frame_bytes)
        self._connections.add(connection)
        self._m_connections_total.inc()
        try:
            if await self._handshake(connection):
                await self._serve_frames(connection)
        except (ConnectionError, OSError):
            pass
        finally:
            self._release(connection)
            self._connections.discard(connection)
            await connection.close()

    async def _handshake(self, connection: _Connection) -> bool:
        """HELLO exchange: bind the tenant, negotiate the wire codec.

        The exchange itself always travels as wire-1 JSON.  The reply
        carries ``wire``/``transport`` fields only when the client
        *asked* for a wire version, so a pre-negotiation client — which
        rejects unknown HELLO fields — receives byte-identical replies.
        """
        try:
            frame = await connection.read()
        except ProtocolError as exc:
            await self._send_error(connection, "protocol", str(exc))
            return False
        if frame is None:
            return False
        if frame["type"] != "hello":
            await self._send_error(
                connection, "protocol",
                f"expected hello, got {frame['type']!r}")
            return False
        if frame["version"] != protocol.PROTOCOL_VERSION:
            await self._send_error(
                connection, "version",
                f"server speaks protocol {protocol.PROTOCOL_VERSION}, "
                f"client sent {frame['version']}")
            return False
        requested = frame.get("wire")
        if requested is not None and requested < 1:
            await self._send_error(
                connection, "protocol",
                f"requested wire version must be >= 1, got {requested}")
            return False
        connection.tenant = frame.get("tenant", "default")
        connection.hub = self.hub_for(connection.tenant)
        from repro import __version__
        reply = {"type": "hello",
                 "version": protocol.PROTOCOL_VERSION,
                 "server": f"repro/{__version__}",
                 "credits": self._credits}
        granted = protocol.WIRE_JSON
        if requested is not None:
            granted = min(int(requested), self._max_wire)
            reply["wire"] = granted
            reply["transport"] = self._transport_name
        await connection.send(reply)
        # The reply still went out on the old codec; everything after
        # it speaks the granted one (on both sides).
        connection.codec = protocol.codec_for(granted)
        self.wire_sessions[granted] = self.wire_sessions.get(granted, 0) + 1
        labels = {"transport": self._transport_name,
                  "wire": connection.codec.name}
        m = self.metrics
        connection.m_frames_in = m.counter("server_frames_in_total",
                                           **labels)
        connection.m_frames_out = m.counter("server_frames_out_total",
                                            **labels)
        connection.m_bytes_in = m.counter("server_bytes_in_total", **labels)
        connection.m_bytes_out = m.counter("server_bytes_out_total",
                                           **labels)
        return True

    async def _next_frame(self, connection: _Connection) \
            -> "tuple[asyncio.Future | None, bool]":
        """One read, raced against the drain notice.

        Returns ``(read_future, timed_out)``: the completed read future
        (``result()`` yields the frame, or re-raises its error), or
        ``(None, True)`` when the server is draining and no frame
        arrived within the grace window — the caller should say BYE.
        """
        read = asyncio.ensure_future(connection.read())
        if not self._draining:
            notice = asyncio.ensure_future(self._drain_begun.wait())
            try:
                await asyncio.wait({read, notice},
                                   return_when=asyncio.FIRST_COMPLETED)
            finally:
                notice.cancel()
        if not read.done():
            # Drain began with no frame in flight: grant the grace
            # window, so a request already on the wire (STATUS during
            # SIGTERM) is still served before the goodbye.
            done, _ = await asyncio.wait({read},
                                         timeout=DRAIN_GRACE_SECONDS)
            if not done:
                read.cancel()
                try:
                    await read
                except (asyncio.CancelledError, ConnectionError, OSError,
                        ProtocolError):
                    pass
                return None, True
        return read, False

    async def _serve_frames(self, connection: _Connection) -> None:
        handlers = {"open": self._on_open, "push": self._on_push,
                    "flush": self._on_flush, "status": self._on_status}
        grace_frames = 0
        while True:
            read, timed_out = await self._next_frame(connection)
            if timed_out:
                await self._send_bye(connection)
                return
            try:
                frame = read.result()
            except ProtocolError as exc:
                self.errors += 1
                await self._send_error(connection, "protocol", str(exc))
                return
            if frame is None:
                return
            if self._draining:
                grace_frames += 1
                if grace_frames > DRAIN_GRACE_FRAMES:
                    await self._send_bye(connection)
                    return
            self.frames_in += 1
            frame_type = frame["type"]
            if frame_type == "bye":
                self._release(connection)
                await connection.send({"type": "bye"})
                return
            handler = handlers.get(frame_type)
            if handler is None:
                self.errors += 1
                await self._send_error(
                    connection, "protocol",
                    f"clients do not send {frame_type!r} frames")
                return
            try:
                await handler(connection, frame)
            except ProtocolError as exc:
                self.errors += 1
                await self._send_error(connection, "protocol", str(exc),
                                       stream_id=frame.get("stream_id"))
                return
            except ReproError as exc:
                # Semantic failure (unknown stream, bad params, finished
                # session, ...): report and keep the connection.
                self.errors += 1
                await self._send_error(connection, _error_code(exc),
                                       str(exc),
                                       stream_id=frame.get("stream_id"))

    async def _send_bye(self, connection: _Connection) -> None:
        """Best-effort goodbye carrying the drain reason."""
        try:
            await connection.send({"type": "bye",
                                   "reason": self._drain_reason})
        except (ConnectionError, OSError, ProtocolError):
            pass

    async def _send_error(self, connection: _Connection, code: str,
                          message: str,
                          stream_id: "str | None" = None) -> None:
        frame = {"type": "error", "code": code, "message": message}
        if stream_id:
            frame["stream_id"] = stream_id
        try:
            await connection.send(frame)
        except (ConnectionError, OSError):
            pass

    def _release(self, connection: _Connection) -> None:
        """Detach the connection's streams, checkpointing live ones."""
        for (tenant, stream_id), owner in list(self._owners.items()):
            if owner is not connection:
                continue
            del self._owners[(tenant, stream_id)]
            hub = self._hubs.get(tenant)
            if hub is not None and stream_id in hub \
                    and not hub.stats(stream_id)["finished"]:
                try:
                    hub.checkpoint(stream_id)
                except ReproError:
                    self.errors += 1

    # ------------------------------------------------------------------
    # frame handlers
    # ------------------------------------------------------------------
    async def _on_open(self, connection: _Connection, frame: dict) -> None:
        hub, tenant = connection.hub, connection.tenant
        stream_id = frame["stream_id"]
        claim = (tenant, stream_id)
        owner = self._owners.get(claim)
        if owner is not None and owner is not connection:
            raise ReproError(
                f"stream {stream_id!r} is already open on another "
                "connection"
            )
        key = protocol.decode_key(frame["key"], source="open")
        resume = bool(frame.get("resume", False))
        delivered = int(frame.get("delivered", 0))
        known_key = self._keys.get(claim)
        if stream_id in hub:
            if not resume:
                raise ReproError(
                    f"stream {stream_id!r} already exists; reconnects "
                    "must open with resume=true"
                )
            if known_key is not None and known_key != key:
                raise ReproError(
                    f"key mismatch for stream {stream_id!r}; a resumed "
                    "stream must re-supply its original key"
                )
        elif resume and stream_id in hub.store:
            # Fingerprint check precedes the restore so a wrong key
            # cannot even build the session.
            self._load_sidecar(tenant, stream_id, key)
            hub.restore(stream_id, key)
        else:
            # Fresh registration — also the resume fallback when the
            # server lost everything before the first checkpoint (the
            # client then replays from item 0).  Any stale sidecar or
            # buffer under this id belongs to a previous life.
            self._forget_stream(claim)
            self._register(hub, stream_id, key, frame)
        self._owners[claim] = connection
        self._keys[claim] = key
        connection.credits[stream_id] = self._credits
        offsets = hub.offsets(stream_id)
        self._note_ack(claim, delivered)
        result = {"type": "result", "op": "open", "stream_id": stream_id,
                  "items_in": offsets["items_in"],
                  "items_out": offsets["items_out"],
                  "finished": offsets["finished"]}
        # Outputs released but never acknowledged are redelivered here;
        # the client deduplicates against its own delivery counter.
        replay = self._replay_slice(claim, delivered,
                                    offsets["items_out"])
        if replay is not None and replay.size:
            result["values"] = replay
        await connection.send(result)
        await connection.send({"type": "credit", "stream_id": stream_id,
                               "credits": self._credits})

    def _register(self, hub: StreamHub, stream_id: str, key: bytes,
                  frame: dict) -> None:
        params = WatermarkParams()
        if frame.get("params"):
            params = params_from_dict(frame["params"])
        kwargs = {
            "params": params,
            "encoding": frame.get("encoding", "multihash"),
            "encoding_options": frame.get("encoding_options") or {},
            "require_labels": bool(frame.get("require_labels", True)),
        }
        kind = frame["kind"]
        if kind == "protection":
            if "watermark" not in frame:
                raise ProtocolError(
                    "open(kind=protection) requires a watermark field")
            hub.protect(stream_id, frame["watermark"], key, **kwargs)
        elif kind == "detection":
            if "wm_length" not in frame:
                raise ProtocolError(
                    "open(kind=detection) requires a wm_length field")
            hub.detect(stream_id, int(frame["wm_length"]), key,
                       transform_degree=float(
                           frame.get("transform_degree", 1.0)),
                       **kwargs)
        else:
            raise ProtocolError(
                f"open kind must be 'protection' or 'detection', "
                f"got {kind!r}"
            )

    async def _on_status(self, connection: _Connection,
                         frame: dict) -> None:
        """Answer a STATUS request with the full snapshot payload."""
        await connection.send({"type": "status",
                               "payload": self.status_snapshot()})

    async def _on_push(self, connection: _Connection, frame: dict) -> None:
        stream_id = frame["stream_id"]
        self._check_owned(connection, stream_id)
        if connection.credits.get(stream_id, 0) <= 0:
            # Flow-control violation: the frame is dropped, not queued.
            # (On this serial handler the TCP receive queue is the
            # physical backpressure; the counter is defense in depth for
            # concurrent handler variants.)
            self.errors += 1
            self._m_credit_stalls.inc()
            await self._send_error(
                connection, "flow",
                f"no push credits left for stream {stream_id!r}; wait "
                "for a credit frame", stream_id=stream_id)
            return
        claim = (connection.tenant, stream_id)
        self._note_ack(claim, int(frame.get("delivered", 0)))
        values = frame["values"]
        connection.credits[stream_id] -= 1
        if self._fault_injector is not None:
            # Chaos crash gates: the plan may kill the process here
            # (before ingestion), after ingestion, or after delivery —
            # the three windows with distinct recovery obligations.
            self._fault_injector.crash_gate("pre-ingest")
        try:
            out = connection.hub.push(stream_id, values)
        except ReproError:
            # A semantically failed push (finished session, quality
            # rollback, ...) must still hand its credit back, or the
            # window shrinks permanently and the stream deadlocks.
            connection.credits[stream_id] += 1
            await connection.send({"type": "credit",
                                   "stream_id": stream_id, "credits": 1})
            raise
        self.pushes += 1
        if self._fault_injector is not None:
            self._fault_injector.crash_gate("post-ingest")
        offsets = connection.hub.offsets(stream_id)
        # Buffer before sending: if the transport dies mid-send, the
        # release-time checkpoint persists these outputs for redelivery.
        self._buffer_output(claim, offsets["items_out"] - out.size, out)
        result = {"type": "result", "op": "push",
                  "stream_id": stream_id, "seq": frame["seq"],
                  "values": out,
                  "items_in": offsets["items_in"],
                  "items_out": offsets["items_out"]}
        connection.credits[stream_id] += 1
        # One transport batch: the client wakes once per push for the
        # RESULT+CREDIT pair instead of twice (same frames either way).
        await connection.send_many([result, {"type": "credit",
                                             "stream_id": stream_id,
                                             "credits": 1}])
        if self._fault_injector is not None:
            self._fault_injector.crash_gate("post-delivery")
        # The service owns the checkpoint cadence, *after* the result
        # reached the transport — a checkpoint between ingestion and
        # delivery would strand the released outputs on a crash.
        self._push_counts[claim] = self._push_counts.get(claim, 0) + 1
        if self._checkpoint_every \
                and self._push_counts[claim] % self._checkpoint_every == 0:
            try:
                connection.hub.checkpoint(stream_id)
            except ReproError as exc:
                # A failed cadence checkpoint loses durability, not
                # correctness: the stream stays live and a later save
                # (or crash recovery from the previous generation)
                # covers the gap.  Count it, shout, and keep serving —
                # surfacing it as a stream error would kill a healthy
                # stream over a transient disk hiccup.
                self.errors += 1
                self._m_checkpoint_failures.inc()
                logger.warning(
                    "checkpoint for %s/%s failed (serving continues, "
                    "durability lags one cadence): %s",
                    connection.tenant, stream_id, exc)

    async def _on_flush(self, connection: _Connection, frame: dict) -> None:
        hub = connection.hub
        stream_id = frame["stream_id"]
        self._check_owned(connection, stream_id)
        claim = (connection.tenant, stream_id)
        self._note_ack(claim, int(frame.get("delivered", 0)))
        stats = hub.stats(stream_id)
        result = {"type": "result", "op": "flush", "stream_id": stream_id,
                  "finished": True}
        if stats["finished"]:
            # Redelivery of a flush whose result was lost: the tail sits
            # in the replay buffer; the resume-time open re-sent it.
            tail = np.empty(0, dtype=np.float64)
        else:
            tail = hub.finish(stream_id)
        result["values"] = tail
        if stats["kind"] == "detection":
            result["detection"] = _detection_payload(hub.result(stream_id))
        offsets = hub.offsets(stream_id)
        result["items_in"] = offsets["items_in"]
        result["items_out"] = offsets["items_out"]
        self._buffer_output(claim, offsets["items_out"] - tail.size, tail)
        await connection.send(result)
        # The stream is complete and its result delivered: evict it and
        # its checkpoint + sidecar so a long-lived server does not leak.
        hub.drop(stream_id)
        self._forget_stream(claim)
        connection.credits.pop(stream_id, None)

    def _check_owned(self, connection: _Connection, stream_id: str) -> None:
        claim = (connection.tenant, stream_id)
        if self._owners.get(claim) is not connection:
            raise ReproError(
                f"stream {stream_id!r} is not open on this connection; "
                "send an open frame first"
            )


def _detection_payload(result) -> dict:
    """JSON evidence snapshot of a :class:`DetectionResult`.

    Carries the raw voting buckets (not just derived verdicts), so the
    client SDK reconstructs a full :class:`DetectionResult` and remote
    callers keep the exact in-process evidence API.
    """
    return {
        "wm_length": result.wm_length,
        "buckets_true": [int(v) for v in result.buckets_true],
        "buckets_false": [int(v) for v in result.buckets_false],
        "abstentions": int(result.abstentions),
        "vote_threshold": int(result.vote_threshold),
        "counters": result.counters.to_dict(),
        "bias": [int(result.bias(i)) for i in range(result.wm_length)],
        "estimate": [None if bit is None else bool(bit)
                     for bit in result.wm_estimate()],
    }


def _error_code(exc: ReproError) -> str:
    """Stable machine-readable code for a server-side failure class."""
    name = type(exc).__name__
    return {
        "HubError": "unknown-stream",
        "SessionStateError": "bad-checkpoint",
        "CheckpointStoreError": "store",
        "ParameterError": "bad-params",
        "RegistryError": "bad-params",
    }.get(name, "error")
