"""Network serving layer: the :class:`~repro.hub.StreamHub`, served.

This package turns the in-process streaming library into a deployable
service (the SecureStreams / Gabriel middleware shape):

* :mod:`repro.server.protocol` — a versioned frame protocol
  (HELLO/OPEN/PUSH/FLUSH/RESULT/CREDIT/ERROR/BYE) with strict decode
  validation and negotiated frame codecs: wire 1 (JSON bodies, base64
  float64 payloads — the original bytes) and wire 2 (struct-packed
  binary bodies with raw little-endian float64 payloads);
* :mod:`repro.server.transports` — pluggable message transports
  (``tcp`` length-prefixed streams, ``websocket`` RFC 6455) registered
  under the ``transport`` registry kind;
* :mod:`repro.server.service` — a transport-blind asyncio server
  multiplexing one :class:`~repro.hub.StreamHub` per tenant namespace
  with credit-based per-stream flow control, periodic checkpointing
  through any registered :class:`~repro.stores.CheckpointStore`,
  graceful drain on SIGTERM and ``--recover`` restart;
* :mod:`repro.server.client` — sync and async client SDKs whose
  :class:`~repro.server.client.RemoteSession` mirrors the
  :class:`~repro.pipeline.ProtectionSession` /
  :class:`~repro.pipeline.DetectionSession` push/finish API, with
  transparent reconnect-and-resume from server-reported offsets.

Run a server and reach it remotely::

    $ repro serve --port 7707 --store /var/lib/repro/fleet

    from repro.server import RemoteClient
    with RemoteClient("127.0.0.1", 7707) as client:
        session = client.protect("sensor-1", "(c) DataCorp", b"k1")
        for chunk in chunks:
            forward(session.feed(chunk))
        forward(session.finish())
"""

from repro.server.client import (
    AsyncRemoteClient,
    AsyncRemoteSession,
    RemoteClient,
    RemoteSession,
)
from repro.server.protocol import (
    CODECS,
    MAX_FRAME_BYTES,
    MAX_WIRE,
    PROTOCOL_VERSION,
    BinaryFrameCodec,
    FrameCodec,
    FrameDecoder,
    JsonFrameCodec,
    codec_for,
    decode_array,
    decode_frame,
    encode_array,
    encode_frame,
    resolve_wire,
)
from repro.server.service import StreamService
from repro.server.transports import (
    TcpTransport,
    Transport,
    TransportConnection,
    WebSocketTransport,
    build_transport,
)

__all__ = [
    "AsyncRemoteClient",
    "AsyncRemoteSession",
    "RemoteClient",
    "RemoteSession",
    "CODECS",
    "MAX_FRAME_BYTES",
    "MAX_WIRE",
    "PROTOCOL_VERSION",
    "BinaryFrameCodec",
    "FrameCodec",
    "FrameDecoder",
    "JsonFrameCodec",
    "codec_for",
    "decode_array",
    "decode_frame",
    "encode_array",
    "encode_frame",
    "resolve_wire",
    "StreamService",
    "TcpTransport",
    "Transport",
    "TransportConnection",
    "WebSocketTransport",
    "build_transport",
]
