"""Network serving layer: the :class:`~repro.hub.StreamHub` over TCP.

This package turns the in-process streaming library into a deployable
service (the SecureStreams / Gabriel middleware shape):

* :mod:`repro.server.protocol` — a versioned, length-prefixed JSON
  frame protocol (HELLO/OPEN/PUSH/FLUSH/RESULT/CREDIT/ERROR/BYE) with
  strict decode validation and base64-encoded float64 payloads;
* :mod:`repro.server.service` — an asyncio TCP server multiplexing one
  :class:`~repro.hub.StreamHub` per tenant namespace with credit-based
  per-stream flow control, periodic checkpointing through any
  registered :class:`~repro.stores.CheckpointStore`, graceful drain on
  SIGTERM and ``--recover`` restart;
* :mod:`repro.server.client` — sync and async client SDKs whose
  :class:`~repro.server.client.RemoteSession` mirrors the
  :class:`~repro.pipeline.ProtectionSession` /
  :class:`~repro.pipeline.DetectionSession` push/finish API, with
  transparent reconnect-and-resume from server-reported offsets.

Run a server and reach it remotely::

    $ repro serve --port 7707 --store /var/lib/repro/fleet

    from repro.server import RemoteClient
    with RemoteClient("127.0.0.1", 7707) as client:
        session = client.protect("sensor-1", "(c) DataCorp", b"k1")
        for chunk in chunks:
            forward(session.feed(chunk))
        forward(session.finish())
"""

from repro.server.client import (
    AsyncRemoteClient,
    AsyncRemoteSession,
    RemoteClient,
    RemoteSession,
)
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameDecoder,
    decode_array,
    decode_frame,
    encode_array,
    encode_frame,
)
from repro.server.service import StreamService

__all__ = [
    "AsyncRemoteClient",
    "AsyncRemoteSession",
    "RemoteClient",
    "RemoteSession",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "FrameDecoder",
    "decode_array",
    "decode_frame",
    "encode_array",
    "encode_frame",
    "StreamService",
]
