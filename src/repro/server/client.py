"""Client SDK: remote sessions with reconnect-and-resume.

:class:`AsyncRemoteClient` (asyncio) and :class:`RemoteClient` (its
synchronous wrapper, running a private event loop on a daemon thread)
speak the :mod:`repro.server.protocol` frame protocol to a
:class:`~repro.server.service.StreamService`.  Sessions obtained from
:meth:`~AsyncRemoteClient.protect` / :meth:`~AsyncRemoteClient.detect`
mirror the in-process :class:`~repro.pipeline.ProtectionSession` /
:class:`~repro.pipeline.DetectionSession` push/finish API, so code
written against local sessions works remotely by swapping the
constructor::

    with RemoteClient("127.0.0.1", 7707) as client:
        session = client.protect("sensor-1", "(c) DataCorp", b"k1")
        for chunk in chunks:
            forward(session.feed(chunk))      # watermarked, window-delayed
        forward(session.finish())

**Reconnect-and-resume.**  A session retains every item it has fed (the
rights owner's raw stream) and counts every output item it has
delivered.  When the connection drops — network blip, server restart,
even a SIGKILLed server brought back with ``--recover`` — the client
reconnects, re-opens each live stream with ``resume`` and the original
key, reads the server-reported ``items_in``/``items_out`` offsets, and
replays exactly the unseen input suffix.  Redelivered output items are
deduplicated against the delivery counter, so the caller observes each
output item **exactly once**, bit-identical to an uninterrupted run
(asserted by ``tests/integration/test_server.py`` and
``examples/remote_fleet.py``).

**Flow control.**  The server grants N outstanding PUSH frames per
stream; :meth:`~AsyncRemoteSession.feed` splits large chunks and keeps
at most that many in flight, waiting for CREDIT frames instead of
buffering unboundedly.
"""

from __future__ import annotations

import asyncio
import logging
import threading
from collections import deque

import numpy as np

from repro.chaos.retry import RetryPolicy
from repro.core.detector import DetectionResult
from repro.core.scanner import ScanCounters
from repro.core.serialize import params_to_dict
from repro.errors import (
    DetectionError,
    ParameterError,
    ProtocolError,
    RemoteError,
    ReproError,
)
from repro.server import protocol
from repro.server.transports import TransportConnection, build_transport

_EMPTY = np.empty(0, dtype=np.float64)

logger = logging.getLogger("repro.server.client")

#: Errors that mean "the connection is gone" (trigger reconnect), as
#: opposed to semantic failures the server reported on a healthy link.
#: ConnectionResetError (raised by our own read path on EOF/BYE/torn
#: frames/op timeouts) is a ConnectionError subclass, so it is covered.
#: ProtocolError is deliberately *not* here: a malformed conversation on
#: a healthy link is a bug to surface, not weather to retry — wire-level
#: damage is converted to ConnectionResetError at the read boundary.
_CONNECTION_ERRORS = (ConnectionError, OSError, EOFError,
                      asyncio.IncompleteReadError)

#: Timeouts differ across asyncio generations (3.10 has both).
_TIMEOUT_ERRORS = (TimeoutError, asyncio.TimeoutError)


class AsyncRemoteSession:
    """One remote stream: the async push/finish API plus resume state.

    Obtained from :meth:`AsyncRemoteClient.protect` /
    :meth:`AsyncRemoteClient.detect`; not constructed directly.
    """

    def __init__(self, client: "AsyncRemoteClient", stream_id: str,
                 kind: str, key: bytes, open_fields: dict) -> None:
        self._client = client
        self.stream_id = stream_id
        self.kind = kind
        self._key = key
        #: Config fields re-sent verbatim on every (re-)open.
        self._open_fields = dict(open_fields)
        #: Every chunk ever fed, in order — the replay source.
        self._retained: "list[np.ndarray]" = []
        self._fed = 0
        #: Output items handed to the caller (exactly-once dedupe line).
        self._delivered = 0
        #: The server's output position for the *next* incoming values
        #: payload (reset from ``items_out`` at every open/resume).
        self._server_pos = 0
        #: Novel outputs received while not inside feed() (replay).
        self._pending: "list[np.ndarray]" = []
        self._seq = 0
        self._finished = False
        self._detection: "dict | None" = None

    # -- bookkeeping ----------------------------------------------------
    @property
    def items_ingested(self) -> int:
        """Items fed into this session so far (client-side count)."""
        return self._fed

    @property
    def finished(self) -> bool:
        """Whether :meth:`finish` has completed."""
        return self._finished

    def _retained_suffix(self, offset: int) -> np.ndarray:
        """Concatenated retained items from absolute offset ``offset``."""
        if offset >= self._fed:
            return _EMPTY
        flat = (np.concatenate(self._retained) if self._retained
                else _EMPTY)
        return flat[offset:]

    def _accept_output(self, values: np.ndarray) -> None:
        """Deduplicate one incoming values payload into the pending buffer.

        ``values`` starts at server output position ``_server_pos``;
        anything before ``_delivered`` was already handed to the caller
        (a redelivery after resume) and is dropped.  Novel items land in
        ``_pending`` — never in transient local state — so a connection
        loss between receiving an output and returning it to the caller
        cannot discard it (it is drained by the next feed/finish).
        """
        skip = min(max(self._delivered - self._server_pos, 0), values.size)
        self._server_pos += values.size
        novel = values[skip:]
        self._delivered += novel.size
        if novel.size:
            self._pending.append(novel)

    def _take_pending(self) -> "list[np.ndarray]":
        pending, self._pending = self._pending, []
        return pending

    # -- the session API ------------------------------------------------
    async def feed(self, chunk) -> np.ndarray:
        """Push one chunk; return the (novel) output items released."""
        if self._finished:
            raise ParameterError(
                "session already finished; start a new one")
        array = np.asarray(chunk, dtype=np.float64).ravel()
        self._retained.append(array)
        self._fed += array.size
        return await self._client._feed(self, array)

    async def finish(self) -> np.ndarray:
        """End the stream; return the remaining (novel) output items."""
        if self._finished:
            raise ParameterError("session already finished")
        return await self._client._finish(self)

    def result(self) -> DetectionResult:
        """The reconstructed detection evidence (after :meth:`finish`)."""
        if self.kind != "detection":
            raise DetectionError(
                f"stream {self.stream_id!r} is a protection stream; "
                "only detection streams have voting results"
            )
        if self._detection is None:
            raise DetectionError(
                "no remote evidence yet; detection results arrive with "
                "finish()"
            )
        payload = self._detection
        return DetectionResult(
            buckets_true=[int(v) for v in payload["buckets_true"]],
            buckets_false=[int(v) for v in payload["buckets_false"]],
            counters=ScanCounters.from_dict(payload["counters"]),
            abstentions=int(payload["abstentions"]),
            vote_threshold=int(payload["vote_threshold"]))


class AsyncRemoteClient:
    """Asyncio client for a :class:`~repro.server.service.StreamService`.

    Parameters
    ----------
    host, port:
        The server endpoint.
    tenant:
        Tenant namespace; streams of different tenants never collide.
    retry:
        The :class:`~repro.chaos.retry.RetryPolicy` governing
        reconnects: attempt budget, exponential backoff with full
        jitter, per-operation timeout and overall deadline.  The
        default rides out a server restart with ``--recover``.
        Connection-level failures retry; semantic failures (wrong key,
        protocol violations, server-reported errors) fail fast.
    reconnect_attempts, reconnect_delay:
        Legacy knobs kept for compatibility: when given (and ``retry``
        is not), they shape an equivalent policy via
        :meth:`RetryPolicy.legacy`.
    push_items:
        Maximum items per PUSH frame; larger chunks are split and
        pipelined inside the server's credit window.
    transport:
        Registered transport name (``tcp``, ``websocket``, or a
        plugin); must match what the server listens on.
    wire:
        Wire version to request at HELLO — a codec name (``"json"``,
        ``"binary"``) or number.  The server grants at most its own
        maximum, and the client follows the grant.  ``"json"``/1 skips
        negotiation entirely: the HELLO bytes (and every frame after)
        are identical to a pre-negotiation client, which is also what
        talking to an old server requires.
    """

    def __init__(self, host: str, port: int, *, tenant: str = "default",
                 retry: "RetryPolicy | None" = None,
                 reconnect_attempts: "int | None" = None,
                 reconnect_delay: "float | None" = None,
                 push_items: int = 4096,
                 transport: str = "tcp",
                 wire: "int | str" = protocol.MAX_WIRE,
                 max_frame_bytes: int = protocol.MAX_FRAME_BYTES) -> None:
        self._host = host
        self._port = int(port)
        self._tenant = tenant
        if retry is None:
            retry = RetryPolicy.legacy(
                40 if reconnect_attempts is None else reconnect_attempts,
                0.25 if reconnect_delay is None else reconnect_delay)
        self._retry = retry
        self._push_items = max(1, int(push_items))
        self._max_frame_bytes = int(max_frame_bytes)
        self._transport_name = transport
        self._transport = build_transport(transport)
        self._wire = protocol.resolve_wire(wire)
        self._channel: "TransportConnection | None" = None
        self._codec = protocol.codec_for(protocol.WIRE_JSON)
        self._lock = asyncio.Lock()
        self._sessions: "dict[str, AsyncRemoteSession]" = {}
        self._credits: "dict[str, int]" = {}
        self.server_credits: "int | None" = None
        self.reconnects = 0
        #: Wire version granted by the server on the live connection.
        self.negotiated_wire: "int | None" = None
        self.bytes_sent = 0
        self.bytes_received = 0
        self.frames_sent = 0
        self.frames_received = 0

    async def __aenter__(self) -> "AsyncRemoteClient":
        """Connect on entry."""
        await self.connect()
        return self

    async def __aexit__(self, *exc_info) -> None:
        """Say goodbye and close on exit."""
        await self.close()

    # -- connection management ------------------------------------------
    async def connect(self) -> None:
        """Dial the server and complete the HELLO handshake."""
        async with self._lock:
            if self._channel is None:
                await self._dial()

    async def close(self) -> None:
        """Send BYE (best effort) and drop the connection."""
        async with self._lock:
            if self._channel is None:
                return
            try:
                await self._send({"type": "bye"})
                # The server's goodbye surfaces as ConnectionResetError.
                # Cap the wait: a goodbye lost in flight must not stall
                # shutdown for the full op timeout.
                await self._read(timeout=2.0)
            except _CONNECTION_ERRORS + _TIMEOUT_ERRORS + (RemoteError,
                                                           ProtocolError):
                pass
            await self._drop_transport()

    async def status(self) -> dict:
        """Fetch the server's observability snapshot (STATUS frame).

        Returns the decoded ``payload`` dict — server counters,
        per-tenant hub stats and the metrics registry snapshot (see
        :meth:`repro.server.service.StreamService.status_snapshot`).
        Reconnects once if the link is down.
        """
        async with self._lock:
            if self._channel is None:
                await self._dial()
            try:
                await self._send({"type": "status"})
                frame = await self._expect("status")
            except _CONNECTION_ERRORS:
                await self._reconnect()
                try:
                    await self._send({"type": "status"})
                    frame = await self._expect("status")
                except _CONNECTION_ERRORS as exc:
                    # Never leak raw socket errors past the SDK surface.
                    raise RemoteError(
                        "connection-lost",
                        f"connection lost fetching status: {exc}") from exc
            return frame.get("payload", {})

    def simulate_crash(self) -> None:
        """Chaos hook: drop the transport abruptly, with no goodbye.

        The next operation finds the connection gone, redials and
        resumes every live stream — the client-crash path the churn
        load generator (``repro loadgen``) and the integration tests
        exercise deliberately.
        """
        channel = self._channel
        self._channel = None
        self._codec = protocol.codec_for(protocol.WIRE_JSON)
        self.negotiated_wire = None
        if channel is not None:
            channel.abort()

    def wire_stats(self) -> dict:
        """Traffic snapshot: negotiated axes plus byte/frame counters.

        ``bytes_*`` count frame bodies (what the codec produced), so
        the numbers compare codecs rather than transports' per-message
        framing overhead; the throughput bench records them per
        scenario as ``bytes_on_wire``.
        """
        return {
            "transport": self._transport_name,
            "wire": self.negotiated_wire,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "frames_sent": self.frames_sent,
            "frames_received": self.frames_received,
        }

    async def _drop_transport(self) -> None:
        if self._channel is not None:
            try:
                await self._channel.close()
            except (ConnectionError, OSError):
                pass
        self._channel = None
        self._codec = protocol.codec_for(protocol.WIRE_JSON)
        self.negotiated_wire = None

    async def _dial(self) -> None:
        """One reconnect cycle under the retry policy.

        Dials with exponential backoff and full jitter until the
        handshake (and stream resume) succeeds, the attempt budget runs
        out, or the policy deadline expires.  Only connection-level
        errors are retried — a server that *answers* and rejects us
        (wrong key, protocol violation) propagates immediately.
        """
        policy = self._retry
        last_error: "Exception | None" = None
        loop = asyncio.get_running_loop()
        started = loop.time()
        # The full retry budget exists to ride out a server restart
        # without losing stream state; with no sessions yet there is no
        # state to protect, so an unreachable server fails fast.
        attempts = policy.attempts if self._sessions \
            else min(policy.attempts, 4)
        exhausted = f"{attempts} attempts"
        for attempt in range(attempts):
            if attempt:
                delay = policy.backoff_delay(attempt - 1)
                if policy.deadline is not None:
                    remaining = policy.deadline - (loop.time() - started)
                    if remaining <= 0:
                        exhausted = f"{policy.deadline:g}s deadline"
                        break
                    delay = min(delay, remaining)
                await asyncio.sleep(delay)
            try:
                connector = self._transport.connect(
                    self._host, self._port,
                    max_bytes=self._max_frame_bytes)
                if policy.op_timeout is not None:
                    connector = asyncio.wait_for(connector,
                                                 policy.op_timeout)
                self._channel = await connector
                hello = {"type": "hello",
                         "version": protocol.PROTOCOL_VERSION,
                         "tenant": self._tenant}
                # wire=1 sends (and expects back) the exact
                # pre-negotiation HELLO — old servers reject unknown
                # fields, so the request field only appears when a
                # newer codec is actually wanted.
                if self._wire > protocol.WIRE_JSON:
                    hello["wire"] = self._wire
                await self._send(hello)
                reply = await self._expect("hello")
                self.server_credits = reply.get("credits", 1)
                granted = reply.get("wire", protocol.WIRE_JSON)
                if granted > self._wire:
                    raise ProtocolError(
                        f"server granted wire version {granted}, newer "
                        f"than the requested {self._wire}")
                self._codec = protocol.codec_for(granted)
                self.negotiated_wire = granted
                await self._resume_sessions()
                return
            except _CONNECTION_ERRORS + _TIMEOUT_ERRORS as exc:
                last_error = exc
                await self._drop_transport()
        raise RemoteError(
            "unreachable",
            f"cannot reach {self._host}:{self._port} after "
            f"{exhausted}: {last_error}")

    async def _reconnect(self) -> None:
        self.reconnects += 1
        await self._drop_transport()
        await self._dial()

    async def _resume_sessions(self) -> None:
        """Re-open every live stream and replay its unseen suffix."""
        for session in self._sessions.values():
            offsets = await self._open(session, resume=True)
            replay = session._retained_suffix(offsets["items_in"])
            for piece in _split(replay, self._push_items):
                # Replay sequentially (credit-safe); novel outputs land
                # in the session's pending buffer for its next feed().
                frame = await self._push_one(session, piece)
                session._accept_output(frame["values"])

    async def _open(self, session: AsyncRemoteSession,
                    resume: bool) -> dict:
        frame = dict(session._open_fields)
        frame.update({"type": "open", "stream_id": session.stream_id,
                      "kind": session.kind,
                      "key": protocol.encode_key(session._key),
                      "delivered": session._delivered})
        if resume:
            frame["resume"] = True
        # Stale credits from a previous connection epoch are void; the
        # server re-grants via a CREDIT frame right after its result.
        self._credits[session.stream_id] = 0
        await self._send(frame)
        result = await self._expect("result", op="open",
                                    stream_id=session.stream_id)
        if "values" in result:
            # Redelivery of outputs we never acknowledged (e.g. a
            # result frame lost to a crash): they start exactly at our
            # delivery watermark, so everything is novel.
            replay = result["values"]
            session._delivered += replay.size
            if replay.size:
                session._pending.append(replay)
        session._server_pos = result["items_out"]
        return result

    # -- framed exchanges ------------------------------------------------
    async def _send(self, frame: dict) -> None:
        if self._channel is None:
            raise ConnectionResetError("not connected")
        body = self._codec.encode(frame, max_bytes=self._max_frame_bytes)
        self.bytes_sent += len(body)
        self.frames_sent += 1
        await self._channel.write_message(body)

    async def _read(self, timeout: "float | None" = None) -> dict:
        """Read one frame; apply CREDIT grants, raise ERROR / BYE.

        CREDIT frames are returned (already applied) so callers waiting
        on the credit window can notice them; ERROR frames become
        :class:`RemoteError`, BYE and EOF become a lost connection.

        Wire-level damage — a truncated or undecodable frame, or a
        server silent past the policy's per-operation timeout — is
        converted to :class:`ConnectionResetError` here, at the channel
        boundary: to the resume machinery it *is* a lost connection,
        and classifying it here keeps raw transport exceptions from
        leaking to callers.  Semantic :class:`ProtocolError`\\ s raised
        above this boundary (unexpected frame types on a healthy link)
        stay fatal.
        """
        if self._channel is None:
            raise ConnectionResetError("not connected")
        if timeout is None:
            timeout = self._retry.op_timeout
        try:
            reader = self._channel.read_message()
            if timeout is not None:
                reader = asyncio.wait_for(reader, timeout)
            body = await reader
        except ProtocolError as exc:
            # The peer died mid-message (or sent garbage): wire damage.
            raise ConnectionResetError(f"wire damage: {exc}") from exc
        except _TIMEOUT_ERRORS as exc:
            raise ConnectionResetError(
                f"server silent for {timeout:g}s (op timeout)") from exc
        if body is None:
            raise ConnectionResetError("server closed the connection")
        self.bytes_received += len(body)
        self.frames_received += 1
        try:
            frame = self._codec.decode(body, source="server")
        except ProtocolError as exc:
            # An undecodable body on an intact transport message: the
            # frame was torn in flight — same recovery as a dead link.
            raise ConnectionResetError(f"wire damage: {exc}") from exc
        if frame["type"] == "credit":
            stream_id = frame["stream_id"]
            self._credits[stream_id] = \
                self._credits.get(stream_id, 0) + frame["credits"]
            return frame
        if frame["type"] == "error":
            raise RemoteError(frame["code"], frame["message"])
        if frame["type"] == "bye":
            # The server is draining (or answering our goodbye): treat
            # as a lost connection; resume logic takes over.
            raise ConnectionResetError("server said bye")
        return frame

    async def _expect(self, frame_type: str, **fields) -> dict:
        """Read past credit frames until the expected frame arrives."""
        while True:
            frame = await self._read()
            if frame["type"] == "credit":
                continue
            if frame["type"] != frame_type or any(
                    frame.get(name) != value
                    for name, value in fields.items()):
                raise ProtocolError(
                    f"expected {frame_type} {fields or ''}, got {frame}")
            return frame

    async def _await_credit(self, stream_id: str) -> None:
        """Block until the stream has at least one push credit."""
        while self._credits.get(stream_id, 0) <= 0:
            frame = await self._read()
            if frame["type"] != "credit":
                raise ProtocolError(
                    f"expected a credit frame, got {frame}")

    def _push_frame(self, session: AsyncRemoteSession,
                    piece: np.ndarray) -> "tuple[dict, int]":
        seq = session._seq
        session._seq += 1
        return ({"type": "push", "stream_id": session.stream_id,
                 "seq": seq, "delivered": session._delivered,
                 "values": piece}, seq)

    async def _push_one(self, session: AsyncRemoteSession,
                        piece: np.ndarray) -> dict:
        """One PUSH/RESULT round-trip honouring the credit window."""
        stream_id = session.stream_id
        await self._await_credit(stream_id)
        self._credits[stream_id] -= 1
        frame, seq = self._push_frame(session, piece)
        await self._send(frame)
        return await self._expect("result", op="push", stream_id=stream_id,
                                  seq=seq)

    async def _pipeline(self, session: AsyncRemoteSession,
                        pieces: "list[np.ndarray]") -> None:
        """Push pieces keeping up to the credit window in flight.

        Sends whenever a credit is available, otherwise reads — so the
        server's grant, not client buffering, paces the stream
        (gabriel-style flow control).  Results arrive in push order on
        the single connection; their novel outputs accumulate in the
        session's pending buffer (crash-safe, drained by the caller).
        """
        stream_id = session.stream_id
        queue = deque(pieces)
        expected: "deque[int]" = deque()
        while queue or expected:
            if queue and self._credits.get(stream_id, 0) > 0:
                self._credits[stream_id] -= 1
                frame, seq = self._push_frame(session, queue.popleft())
                await self._send(frame)
                expected.append(seq)
                continue
            frame = await self._read()
            if frame["type"] == "credit":
                continue
            if frame["type"] != "result" or frame.get("op") != "push" \
                    or frame.get("stream_id") != stream_id \
                    or not expected or frame.get("seq") != expected[0]:
                raise ProtocolError(
                    f"expected push result seq "
                    f"{expected[0] if expected else '?'}, got {frame}")
            expected.popleft()
            session._accept_output(frame["values"])

    # -- session operations (called by AsyncRemoteSession) ---------------
    async def _register(self, stream_id: str, kind: str, key,
                        open_fields: dict) -> AsyncRemoteSession:
        if stream_id in self._sessions:
            raise RemoteError(
                "exists", f"stream {stream_id!r} is already open on this "
                          "client")
        session = AsyncRemoteSession(self, stream_id, kind,
                                     key if isinstance(key, bytes)
                                     else str(key).encode("utf-8"),
                                     open_fields)
        async with self._lock:
            if self._channel is None:
                await self._dial()
            try:
                await self._open(session, resume=False)
            except _CONNECTION_ERRORS:
                # One transparent retry on a fresh transport — with
                # resume: the first OPEN may have reached the server
                # before the drop, and the server falls through to a
                # fresh registration when the stream exists nowhere.
                await self._reconnect()
                try:
                    await self._open(session, resume=True)
                except _CONNECTION_ERRORS as exc:
                    # Never leak raw socket errors past the SDK surface.
                    raise RemoteError(
                        "connection-lost",
                        f"connection lost opening stream "
                        f"{stream_id!r}: {exc}") from exc
            self._sessions[stream_id] = session
        return session

    async def _feed(self, session: AsyncRemoteSession,
                    array: np.ndarray) -> np.ndarray:
        async with self._lock:
            if self._channel is None:
                # A live session over a dead channel (simulate_crash, a
                # noticed drop): this dial is a reconnect.  The chunk is
                # already in the retained buffer, so the dial's resume
                # replays it along with the rest of the unseen suffix —
                # pipelining it again here would ingest it twice
                # server-side.
                self.reconnects += 1
                await self._dial()
                return _concat(session._take_pending())
            try:
                await self._pipeline(session,
                                     _split(array, self._push_items))
            except _CONNECTION_ERRORS:
                # The transport died with pieces outstanding.  The
                # retained buffer already covers every item of this
                # feed, so reconnect + resume replays them; novel
                # outputs (including any received before the drop) are
                # already in the pending buffer.
                await self._reconnect()
            return _concat(session._take_pending())

    async def _finish(self, session: AsyncRemoteSession) -> np.ndarray:
        async with self._lock:
            if self._channel is None:
                await self._dial()
            while True:
                try:
                    await self._send({"type": "flush",
                                      "stream_id": session.stream_id,
                                      "delivered": session._delivered})
                    frame = await self._expect("result", op="flush",
                                               stream_id=session.stream_id)
                    break
                except _CONNECTION_ERRORS:
                    await self._reconnect()
            session._accept_output(frame["values"])
            if "detection" in frame:
                session._detection = frame["detection"]
            session._finished = True
            self._sessions.pop(session.stream_id, None)
            self._credits.pop(session.stream_id, None)
            return _concat(session._take_pending())

    # -- factories -------------------------------------------------------
    async def protect(self, stream_id: str, watermark, key, *,
                      params=None, encoding: str = "multihash",
                      encoding_options: "dict | None" = None,
                      require_labels: bool = True) -> AsyncRemoteSession:
        """Open a remote embedding stream (mirrors ``StreamHub.protect``)."""
        fields = {"watermark": str(watermark),
                  "encoding": encoding,
                  "require_labels": require_labels}
        if params is not None:
            fields["params"] = params_to_dict(params)
        if encoding_options:
            fields["encoding_options"] = dict(encoding_options)
        return await self._register(stream_id, "protection", key, fields)

    async def detect(self, stream_id: str, wm_length: int, key, *,
                     params=None, encoding: str = "multihash",
                     encoding_options: "dict | None" = None,
                     transform_degree: float = 1.0,
                     require_labels: bool = True) -> AsyncRemoteSession:
        """Open a remote detection stream (mirrors ``StreamHub.detect``)."""
        fields = {"wm_length": int(wm_length),
                  "encoding": encoding,
                  "transform_degree": float(transform_degree),
                  "require_labels": require_labels}
        if params is not None:
            fields["params"] = params_to_dict(params)
        if encoding_options:
            fields["encoding_options"] = dict(encoding_options)
        return await self._register(stream_id, "detection", key, fields)


# ----------------------------------------------------------------------
# synchronous wrapper
# ----------------------------------------------------------------------
class RemoteSession:
    """Synchronous view of an :class:`AsyncRemoteSession`.

    Mirrors the :class:`~repro.pipeline.ProtectionSession` /
    :class:`~repro.pipeline.DetectionSession` API (``feed`` /
    ``finish`` / ``result`` / ``items_ingested``), so in-process code
    ports to the network by swapping constructors.
    """

    def __init__(self, client: "RemoteClient",
                 session: AsyncRemoteSession) -> None:
        self._client = client
        self._session = session

    @property
    def stream_id(self) -> str:
        """The stream's id on the server."""
        return self._session.stream_id

    @property
    def kind(self) -> str:
        """``"protection"`` or ``"detection"``."""
        return self._session.kind

    @property
    def items_ingested(self) -> int:
        """Items fed into this session so far."""
        return self._session.items_ingested

    @property
    def finished(self) -> bool:
        """Whether :meth:`finish` has completed."""
        return self._session.finished

    def feed(self, chunk) -> np.ndarray:
        """Push one chunk; return the (novel) output items released."""
        return self._client._call(self._session.feed(chunk))

    def finish(self) -> np.ndarray:
        """End the stream; return the remaining output items."""
        return self._client._call(self._session.finish())

    def result(self) -> DetectionResult:
        """The reconstructed detection evidence (after :meth:`finish`)."""
        return self._session.result()


class RemoteClient:
    """Synchronous client: an :class:`AsyncRemoteClient` on a thread.

    Owns a private event loop on a daemon thread and proxies every
    operation onto it, so scripts, the CLI and tests drive remote
    sessions without touching asyncio.  Accepts the same constructor
    arguments as :class:`AsyncRemoteClient` and works as a context
    manager.
    """

    def __init__(self, host: str, port: int, **options) -> None:
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._loop.run_forever,
                                        name="repro-remote-client",
                                        daemon=True)
        self._thread.start()
        self._async = AsyncRemoteClient(host, port, **options)
        try:
            self._call(self._async.connect())
        except BaseException:
            # A failed connect must not leak the loop thread (callers
            # retrying construction would accumulate one per attempt).
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=5)
            if self._thread.is_alive():  # pragma: no cover - wedged loop
                # The connect error is already propagating; closing a
                # still-running loop would mask it, so just shout.
                logger.error(
                    "client loop thread %s did not stop within 5s; "
                    "a background thread is leaking",
                    self._thread.name)
            else:
                self._loop.close()
            raise

    def _call(self, coroutine):
        """Run one coroutine on the client loop and wait for it."""
        return asyncio.run_coroutine_threadsafe(
            coroutine, self._loop).result()

    def __enter__(self) -> "RemoteClient":
        """Already connected; context entry is a no-op."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Close the connection and stop the private loop."""
        self.close()

    @property
    def reconnects(self) -> int:
        """How many times the transport was re-established."""
        return self._async.reconnects

    def status(self) -> dict:
        """Fetch the server's observability snapshot (STATUS frame)."""
        return self._call(self._async.status())

    def simulate_crash(self) -> None:
        """Chaos hook: drop the transport with no goodbye.

        Runs on the client loop (and waits for it), so callers can
        crash deterministically between two feeds.
        """
        async def crash() -> None:
            self._async.simulate_crash()
        self._call(crash())

    def protect(self, stream_id: str, watermark, key,
                **options) -> RemoteSession:
        """Open a remote embedding stream (see ``AsyncRemoteClient``)."""
        return RemoteSession(self, self._call(
            self._async.protect(stream_id, watermark, key, **options)))

    def detect(self, stream_id: str, wm_length: int, key,
               **options) -> RemoteSession:
        """Open a remote detection stream (see ``AsyncRemoteClient``)."""
        return RemoteSession(self, self._call(
            self._async.detect(stream_id, wm_length, key, **options)))

    def close(self) -> None:
        """Say goodbye, close the transport and stop the loop thread.

        Raises :class:`~repro.errors.ReproError` if the loop thread
        fails to stop within the join timeout — a silent return here
        would leak a live thread (and its event loop) while looking
        exactly like a clean shutdown.
        """
        if self._loop.is_closed():
            return
        try:
            self._call(self._async.close())
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=5)
            if self._thread.is_alive():  # pragma: no cover - wedged loop
                logger.error(
                    "client loop thread %s did not stop within 5s",
                    self._thread.name)
                raise ReproError(
                    "client loop thread did not stop within 5s; a "
                    "background thread is still running (not closed)")
            self._loop.close()


def _split(array: np.ndarray, size: int) -> "list[np.ndarray]":
    """Cut one array into pieces of at most ``size`` items."""
    if array.size == 0:
        return []
    return [array[start:start + size]
            for start in range(0, array.size, size)]


def _concat(pieces: "list[np.ndarray]") -> np.ndarray:
    """Concatenate released pieces (empty-safe)."""
    pieces = [piece for piece in pieces if piece.size]
    if not pieces:
        return _EMPTY
    return np.concatenate(pieces)
