"""Pluggable transports: message framing under the negotiated codecs.

The serving engine (:class:`repro.server.service.StreamService`) and
the client SDK (:mod:`repro.server.client`) are **transport-blind**:
they exchange whole frame bodies (bytes produced/consumed by a
:class:`repro.server.protocol.FrameCodec`) through the small interface
in this module, and transports are resolved by name through the
central :class:`repro.registry.ComponentRegistry` under the
``transport`` kind — the same pattern stores follow, and the Gabriel
shape of one engine behind ``websocket_server``/``zeromq_server``
front-ends.

Two transports ship:

``tcp``
    A 4-byte big-endian length prefix followed by the frame body over
    a plain asyncio TCP stream.  Byte-for-byte the original protocol,
    so version-1 peers interoperate unmodified.
``websocket``
    RFC 6455 over asyncio streams (no third-party dependency): an HTTP
    Upgrade handshake, then each frame body travels as one binary
    WebSocket message (client-to-server messages masked, as the RFC
    requires).  Lets browsers and WS-only infrastructure reach a
    ``repro serve`` endpoint.

Both transports enforce the declared-size cap *before* buffering a
message body (a hostile length yields a clean
:class:`repro.errors.ProtocolError`, never an OOM), and both clamp the
cap to :data:`repro.server.protocol.HARD_MAX_FRAME_BYTES`.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import os
import struct

import numpy as np

from repro.errors import ProtocolError, ReproError
from repro.registry import REGISTRY
from repro.server.protocol import MAX_FRAME_BYTES, effective_max_bytes

_LENGTH_PREFIX = struct.Struct(">I")


class TransportConnection:
    """One bidirectional message channel between a client and a server.

    Messages are whole frame bodies; the transport owns delimiting.
    ``read_message`` returns ``None`` on a clean end-of-stream and
    raises :class:`ProtocolError` when the peer dies mid-message.
    """

    #: ``"host:port"`` of the remote peer, for error messages.
    peer: str = "peer"

    async def read_message(self) -> "bytes | None":
        """Read one complete message body; ``None`` on clean EOF."""
        raise NotImplementedError

    async def write_message(self, body: bytes) -> None:
        """Send one message body, honouring transport backpressure."""
        raise NotImplementedError

    async def write_messages(self, bodies: "list[bytes]") -> None:
        """Send several message bodies, coalescing where the transport
        can (one syscall and one peer wakeup instead of one each)."""
        for body in bodies:
            await self.write_message(body)

    async def close(self) -> None:
        """Close the connection in an orderly way (idempotent)."""
        raise NotImplementedError

    def abort(self) -> None:
        """Drop the connection immediately (no goodbye, no flush)."""
        raise NotImplementedError


class Listener:
    """A bound server endpoint accepting transport connections."""

    def __init__(self, server: "asyncio.base_events.Server",
                 address: "tuple[str, int]") -> None:
        self._server = server
        self.address = address

    def close(self) -> None:
        """Stop accepting new connections (existing ones live on)."""
        self._server.close()

    async def wait_closed(self) -> None:
        """Wait until the listening socket is fully closed."""
        await self._server.wait_closed()


class Transport:
    """One named transport: a listener factory plus a dialer.

    Subclasses register under the ``transport`` registry kind and are
    constructed with no arguments (:func:`build_transport`); all
    per-connection tuning travels through method keywords.
    """

    #: Registry name (``repro serve --transport <name>``).
    name: str = ""

    async def serve(self, host: str, port: int, handler, *,
                    max_bytes: int = MAX_FRAME_BYTES) -> Listener:
        """Bind and accept; ``handler(connection)`` runs per connection."""
        raise NotImplementedError

    async def connect(self, host: str, port: int, *,
                      max_bytes: int = MAX_FRAME_BYTES
                      ) -> TransportConnection:
        """Dial a server; returns the connected message channel."""
        raise NotImplementedError


def _peer_name(writer: asyncio.StreamWriter) -> str:
    peer = writer.get_extra_info("peername")
    return f"{peer[0]}:{peer[1]}" if peer else "peer"


class _StreamConnection(TransportConnection):
    """Shared asyncio-stream plumbing for both transports."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, max_bytes: int) -> None:
        self._reader = reader
        self._writer = writer
        self._max_bytes = effective_max_bytes(max_bytes)
        self.peer = _peer_name(writer)

    async def close(self) -> None:
        """Close the underlying stream, swallowing teardown races."""
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    def abort(self) -> None:
        """Abort the socket immediately (simulates a crash/SIGKILL)."""
        self._writer.transport.abort()


# ----------------------------------------------------------------------
# TCP: 4-byte length prefix + body (the original wire framing)
# ----------------------------------------------------------------------
@REGISTRY.register("transport", "tcp",
                   description="length-prefixed frames over plain TCP "
                               "(the original wire framing)")
class TcpTransport(Transport):
    """Length-prefixed frame bodies over a plain asyncio TCP stream."""

    name = "tcp"

    async def serve(self, host: str, port: int, handler, *,
                    max_bytes: int = MAX_FRAME_BYTES) -> Listener:
        """Start an asyncio TCP server wrapping connections for
        ``handler``."""
        async def accept(reader, writer):
            await handler(_TcpConnection(reader, writer, max_bytes))

        server = await asyncio.start_server(accept, host, port)
        bound = server.sockets[0].getsockname()
        return Listener(server, (bound[0], bound[1]))

    async def connect(self, host: str, port: int, *,
                      max_bytes: int = MAX_FRAME_BYTES
                      ) -> TransportConnection:
        """Dial ``host:port`` and return the framed channel."""
        reader, writer = await asyncio.open_connection(host, port)
        return _TcpConnection(reader, writer, max_bytes)


class _TcpConnection(_StreamConnection):
    """TCP message channel: ``uint32-be length || body`` per message."""

    async def read_message(self) -> "bytes | None":
        try:
            header = await self._reader.readexactly(_LENGTH_PREFIX.size)
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            raise ProtocolError(
                "connection closed mid-frame (inside the length prefix)"
            ) from exc
        (length,) = _LENGTH_PREFIX.unpack(header)
        if length > self._max_bytes:
            raise ProtocolError(
                f"frame length prefix {length} exceeds the "
                f"{self._max_bytes}-byte frame limit (corrupt stream?)"
            )
        try:
            return await self._reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise ProtocolError(
                f"connection closed mid-frame ({len(exc.partial)} of "
                f"{length} body bytes)"
            ) from exc

    async def write_message(self, body: bytes) -> None:
        self._writer.write(_LENGTH_PREFIX.pack(len(body)) + body)
        await self._writer.drain()

    async def write_messages(self, bodies: "list[bytes]") -> None:
        """Write all frames into one kernel send: the receiving loop
        wakes once and drains them from its buffer without further
        round trips (the RESULT+CREDIT pair rides this)."""
        self._writer.write(b"".join(
            _LENGTH_PREFIX.pack(len(body)) + body for body in bodies))
        await self._writer.drain()


# ----------------------------------------------------------------------
# WebSocket: RFC 6455 on asyncio streams, stdlib only
# ----------------------------------------------------------------------
_WS_GUID = b"258EAFA5-E914-47DA-95CA-C5AB0DC85B11"
_WS_MAX_HEADER = 16 * 1024  # upgrade request/response size cap

_OP_CONT, _OP_TEXT, _OP_BINARY = 0x0, 0x1, 0x2
_OP_CLOSE, _OP_PING, _OP_PONG = 0x8, 0x9, 0xA


def websocket_accept(key: str) -> str:
    """The ``Sec-WebSocket-Accept`` value for a client's nonce key."""
    digest = hashlib.sha1(key.strip().encode("ascii") + _WS_GUID)
    return base64.b64encode(digest.digest()).decode("ascii")


def _apply_mask(data: bytes, mask: bytes) -> bytes:
    """XOR ``data`` with the repeating 4-byte mask (RFC 6455 §5.3).

    Vectorized with numpy so masking stays off the per-item cost path
    even for large payloads.
    """
    if not data:
        return b""
    array = np.frombuffer(data, dtype=np.uint8)
    pattern = np.resize(np.frombuffer(mask, dtype=np.uint8), array.size)
    return np.bitwise_xor(array, pattern).tobytes()


async def _read_headers(reader: asyncio.StreamReader,
                        what: str) -> "tuple[str, dict[str, str]]":
    """Read one HTTP request/response head; returns (start line, headers).

    Reads line by line with ``readuntil`` so nothing past the blank
    line is consumed — bytes the peer pipelines straight after the
    handshake (its first frame) stay buffered for the frame reader.
    """
    raw = bytearray()
    while True:
        try:
            line = await reader.readuntil(b"\r\n")
        except asyncio.IncompleteReadError as exc:
            raise ProtocolError(
                f"connection closed during the WebSocket {what}") from exc
        except asyncio.LimitOverrunError as exc:
            raise ProtocolError(
                f"WebSocket {what} line exceeds the stream limit") from exc
        raw += line
        if len(raw) > _WS_MAX_HEADER:
            raise ProtocolError(
                f"WebSocket {what} exceeds {_WS_MAX_HEADER} bytes")
        if line == b"\r\n" and len(raw) > 2:
            break
    head = bytes(raw[:-4])
    try:
        lines = head.decode("latin-1").split("\r\n")
    except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 total
        raise ProtocolError(f"undecodable WebSocket {what}") from exc
    headers: "dict[str, str]" = {}
    for line in lines[1:]:
        name, sep, value = line.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    return lines[0], headers


class _WebSocketConnection(_StreamConnection):
    """One upgraded WebSocket channel carrying binary frame bodies.

    ``client_side`` controls the RFC's masking asymmetry: clients mask
    every frame they send and require unmasked server frames; servers
    require masked client frames and send unmasked.
    """

    def __init__(self, reader, writer, max_bytes: int,
                 client_side: bool) -> None:
        super().__init__(reader, writer, max_bytes)
        self._client_side = client_side
        self._close_sent = False

    # -- frame plumbing ------------------------------------------------
    async def _read_ws_frame(self) -> "tuple[int, bool, bytes] | None":
        """One raw frame: ``(opcode, fin, payload)``; None on clean EOF."""
        try:
            first = await self._reader.readexactly(2)
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            raise ProtocolError(
                "connection closed mid-WebSocket-frame (header)") from exc
        fin = bool(first[0] & 0x80)
        if first[0] & 0x70:
            raise ProtocolError(
                "WebSocket reserved bits set (no extension negotiated)")
        opcode = first[0] & 0x0F
        masked = bool(first[1] & 0x80)
        length = first[1] & 0x7F
        try:
            if length == 126:
                (length,) = struct.unpack(
                    ">H", await self._reader.readexactly(2))
            elif length == 127:
                (length,) = struct.unpack(
                    ">Q", await self._reader.readexactly(8))
            # The declared length is capped BEFORE the payload is
            # buffered: a hostile 2**60 length dies here, not in malloc.
            if length > self._max_bytes:
                raise ProtocolError(
                    f"WebSocket frame declares {length} bytes, over the "
                    f"{self._max_bytes}-byte limit (hostile length?)"
                )
            if masked == self._client_side:
                raise ProtocolError(
                    "WebSocket masking violation: client frames must be "
                    "masked, server frames must not be"
                )
            mask = await self._reader.readexactly(4) if masked else b""
            payload = await self._reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise ProtocolError(
                f"connection closed mid-WebSocket-frame "
                f"({len(exc.partial)} bytes read)"
            ) from exc
        if masked:
            payload = _apply_mask(payload, mask)
        return opcode, fin, payload

    def _build_ws_frame(self, opcode: int, payload: bytes) -> bytes:
        """One complete outgoing frame (masked when on the client side)."""
        header = bytearray([0x80 | opcode])
        mask_bit = 0x80 if self._client_side else 0
        length = len(payload)
        if length < 126:
            header.append(mask_bit | length)
        elif length < 1 << 16:
            header.append(mask_bit | 126)
            header += struct.pack(">H", length)
        else:
            header.append(mask_bit | 127)
            header += struct.pack(">Q", length)
        if self._client_side:
            mask = os.urandom(4)
            header += mask
            payload = _apply_mask(payload, mask)
        return bytes(header) + payload

    async def _write_ws_frame(self, opcode: int, payload: bytes) -> None:
        self._writer.write(self._build_ws_frame(opcode, payload))
        await self._writer.drain()

    # -- the message interface -----------------------------------------
    async def read_message(self) -> "bytes | None":
        """Read one binary message (reassembling fragments); answer
        pings; ``None`` once the peer sends CLOSE or the stream ends."""
        parts: "list[bytes]" = []
        buffered = 0
        while True:
            frame = await self._read_ws_frame()
            if frame is None:
                return None
            opcode, fin, payload = frame
            if opcode == _OP_PING:
                await self._write_ws_frame(_OP_PONG, payload)
                continue
            if opcode == _OP_PONG:
                continue
            if opcode == _OP_CLOSE:
                if not self._close_sent:
                    self._close_sent = True
                    try:
                        await self._write_ws_frame(_OP_CLOSE, b"")
                    except (ConnectionError, OSError):
                        pass
                return None
            if opcode == _OP_TEXT:
                raise ProtocolError(
                    "WebSocket text message on a binary-frame protocol")
            if opcode == _OP_BINARY:
                if parts:
                    raise ProtocolError(
                        "new WebSocket message started inside a "
                        "fragmented one")
            elif opcode == _OP_CONT:
                if not parts:
                    raise ProtocolError(
                        "WebSocket continuation frame without a message")
            else:
                raise ProtocolError(
                    f"unsupported WebSocket opcode 0x{opcode:x}")
            buffered += len(payload)
            if buffered > self._max_bytes:
                raise ProtocolError(
                    f"fragmented WebSocket message exceeds the "
                    f"{self._max_bytes}-byte limit"
                )
            parts.append(payload)
            if fin:
                return b"".join(parts)

    async def write_message(self, body: bytes) -> None:
        """Send one frame body as a single binary WebSocket message."""
        await self._write_ws_frame(_OP_BINARY, bytes(body))

    async def write_messages(self, bodies: "list[bytes]") -> None:
        """Send several binary messages in one kernel write (one peer
        wakeup for the batch)."""
        self._writer.write(b"".join(
            self._build_ws_frame(_OP_BINARY, bytes(body))
            for body in bodies))
        await self._writer.drain()

    async def close(self) -> None:
        """Send a CLOSE frame (best effort) and close the stream."""
        if not self._close_sent:
            self._close_sent = True
            try:
                await self._write_ws_frame(_OP_CLOSE, b"")
            except (ConnectionError, OSError):
                pass
        await super().close()


@REGISTRY.register("transport", "websocket",
                   description="RFC 6455 WebSocket (binary messages, "
                               "stdlib asyncio implementation)")
class WebSocketTransport(Transport):
    """Frame bodies as binary WebSocket messages (RFC 6455)."""

    name = "websocket"

    async def serve(self, host: str, port: int, handler, *,
                    max_bytes: int = MAX_FRAME_BYTES) -> Listener:
        """Start a WebSocket server: HTTP upgrade, then binary frames."""
        async def accept(reader, writer):
            try:
                await self._server_handshake(reader, writer)
            except (ProtocolError, ConnectionError, OSError):
                writer.close()
                return
            await handler(_WebSocketConnection(reader, writer, max_bytes,
                                               client_side=False))

        server = await asyncio.start_server(accept, host, port)
        bound = server.sockets[0].getsockname()
        return Listener(server, (bound[0], bound[1]))

    @staticmethod
    async def _server_handshake(reader, writer) -> None:
        """Validate the HTTP Upgrade request and send 101 (RFC §4.2)."""
        start, headers = await _read_headers(reader, "upgrade request")
        key = headers.get("sec-websocket-key")
        if (not start.startswith("GET ")
                or "websocket" not in headers.get("upgrade", "").lower()
                or not key):
            writer.write(b"HTTP/1.1 400 Bad Request\r\n"
                         b"Connection: close\r\n\r\n")
            await writer.drain()
            raise ProtocolError("not a WebSocket upgrade request")
        writer.write(
            b"HTTP/1.1 101 Switching Protocols\r\n"
            b"Upgrade: websocket\r\n"
            b"Connection: Upgrade\r\n"
            b"Sec-WebSocket-Accept: "
            + websocket_accept(key).encode("ascii") + b"\r\n\r\n")
        await writer.drain()

    async def connect(self, host: str, port: int, *,
                      max_bytes: int = MAX_FRAME_BYTES
                      ) -> TransportConnection:
        """Dial and upgrade; returns the WebSocket message channel."""
        reader, writer = await asyncio.open_connection(host, port)
        nonce = base64.b64encode(os.urandom(16)).decode("ascii")
        writer.write(
            f"GET /stream HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            f"Upgrade: websocket\r\n"
            f"Connection: Upgrade\r\n"
            f"Sec-WebSocket-Key: {nonce}\r\n"
            f"Sec-WebSocket-Version: 13\r\n\r\n".encode("ascii"))
        await writer.drain()
        try:
            start, headers = await _read_headers(reader, "upgrade response")
            if " 101 " not in start + " ":
                raise ProtocolError(
                    f"server refused the WebSocket upgrade: {start!r}")
            accept = headers.get("sec-websocket-accept", "")
            if accept != websocket_accept(nonce):
                raise ProtocolError(
                    "server sent a bad Sec-WebSocket-Accept value")
        except ProtocolError:
            writer.close()
            raise
        return _WebSocketConnection(reader, writer, max_bytes,
                                    client_side=True)


def build_transport(name: str) -> Transport:
    """Construct a registered transport by name.

    The name resolves through :data:`repro.registry.REGISTRY`, so a
    plugin transport registered under ``"transport"`` is immediately
    usable by ``repro serve --transport`` and the client SDK.
    """
    cls = REGISTRY.get("transport", name)
    try:
        return cls()
    except TypeError as exc:
        raise ReproError(
            f"transport {name!r} is not constructible without "
            f"arguments: {exc}"
        ) from exc
