"""Churn load harness: a client fleet that connects, pushes, crashes.

``repro loadgen`` (and the ``loadgen_churn`` benchmark scenario) drives
``workers`` concurrent clients against one
:class:`~repro.server.service.StreamService` — a spawned in-process
server on a free port by default, or any running ``repro serve``
endpoint when ``host``/``port`` are given.  Each worker opens one
protection stream, feeds its share of the deterministic synthetic
reference stream in fixed-size chunks, and on a configurable cadence
*crashes* its transport mid-stream (:meth:`AsyncRemoteClient.
simulate_crash` — an abort, no goodbye) before pushing on.  That is
the fleet's worst weather: every crash forces a redial, a resume
handshake and an input-suffix replay while the other workers keep the
server busy.

Every feed/finish round trip lands in an :class:`~repro.obs.Histogram`
(milliseconds — the same instrument the server uses for µs, at the ms
bucket ladder), so the run reports p50/p95/p99 next to throughput.
Correctness rides along: a worker that does not get back **exactly**
as many watermarked items as it fed counts a ``verify_failure`` —
churn must not bend the exactly-once contract — and with
``verify_bits=True`` the outputs must additionally be bit-identical
to an uninterrupted local embed of the same items.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np

from repro.errors import RemoteError, ReproError
from repro.obs.metrics import LATENCY_MS_BUCKETS, Histogram
from repro.server.client import AsyncRemoteClient


async def _worker(index: int, host: str, port: int, *, tenant: str,
                  transport: str, wire: str, data: np.ndarray,
                  pushes: int, chunk: int, crash_every: int, params,
                  histogram: Histogram, totals: dict,
                  verify_bits: bool, retry=None) -> None:
    """One client: open, feed (crashing on cadence), finish, verify."""
    if retry is None:
        client = AsyncRemoteClient(host, port, tenant=tenant,
                                   transport=transport, wire=wire,
                                   reconnect_delay=0.05)
    else:
        client = AsyncRemoteClient(host, port, tenant=tenant,
                                   transport=transport, wire=wire,
                                   retry=retry)
    key = b"loadgen-%d" % index
    try:
        session = await client.protect(f"churn-{index}", "1", key,
                                       params=params, encoding="initial")
        pieces: "list[np.ndarray]" = []
        out_items = 0
        crashed = False
        for push in range(pushes):
            if crash_every and push and push % crash_every == 0:
                # An abort, not a close: the server sees a dead peer,
                # the client's next feed redials and resumes.
                client.simulate_crash()
                totals["crashes"] += 1
                crashed = True
            piece = data[push * chunk:(push + 1) * chunk]
            started = time.perf_counter()
            released = await session.feed(piece)
            histogram.observe(1e3 * (time.perf_counter() - started))
            if crashed:
                totals["resumes"] += 1
                crashed = False
            out_items += released.size
            if verify_bits:
                pieces.append(released)
        started = time.perf_counter()
        tail = await session.finish()
        histogram.observe(1e3 * (time.perf_counter() - started))
        out_items += tail.size
        if verify_bits:
            pieces.append(tail)
        totals["items"] += data.size
        totals["pushes"] += pushes
        totals["reconnects"] += client.reconnects
        if out_items != data.size:
            totals["verify_failures"] += 1
        elif verify_bits and not _bits_match(data, pieces, key, params):
            totals["verify_failures"] += 1
    finally:
        await client.close()


def _bits_match(data: np.ndarray, pieces: "list[np.ndarray]",
                key: bytes, params) -> bool:
    """Outputs must equal an uninterrupted local embed, bit for bit."""
    from repro.core.embedder import watermark_stream

    got = (np.concatenate([p for p in pieces if p.size])
           if any(p.size for p in pieces)
           else np.empty(0, dtype=np.float64))
    expected, _ = watermark_stream(data, "1", key, params=params,
                                   encoding="initial")
    return bool(np.array_equal(got, expected))


async def run_loadgen_async(*, workers: int = 4, pushes: int = 8,
                            chunk: int = 256, crash_every: int = 3,
                            host: "str | None" = None,
                            port: "int | None" = None,
                            transport: str = "tcp",
                            wire: str = "binary",
                            tenant: str = "loadgen",
                            verify_bits: bool = False,
                            retry=None) -> dict:
    """Run the churn scenario; return the summary dict.

    With no ``host``/``port`` an in-process server is spawned on a
    free loopback port (checkpointing every 4 pushes so resumes have
    durable state to land on) and drained when the fleet is done; its
    lifetime counters ride along under ``server``.  ``retry`` is an
    optional :class:`repro.chaos.RetryPolicy` for the worker clients.

    An unreachable external target (or an unbindable spawn address)
    raises :class:`~repro.errors.ReproError` up front — one clean
    failure instead of ``workers`` stacked dial errors.
    """
    from repro.experiments.config import synthetic_params
    from repro.experiments.datasets import reference_synthetic

    params = synthetic_params()
    span = pushes * chunk
    data = np.asarray(reference_synthetic(workers * span))
    service = None
    if port is None:
        from repro.server.service import StreamService
        service = StreamService(host="127.0.0.1", port=0,
                                transport=transport, max_wire=wire,
                                checkpoint_every=4)
        try:
            host, port = await service.start()
        except OSError as exc:
            raise ReproError(
                f"cannot spawn the in-process loadgen server: {exc}"
            ) from exc
    else:
        # Preflight the external endpoint once: a dead or non-repro
        # address fails fast with one error instead of a pile of
        # per-worker dial failures.
        probe = AsyncRemoteClient(host, port, tenant=tenant,
                                  transport=transport, wire=wire,
                                  reconnect_attempts=2,
                                  reconnect_delay=0.1)
        try:
            await probe.connect()
            await probe.close()
        except RemoteError as exc:
            raise RemoteError(
                exc.code,
                f"loadgen target {host}:{port} ({transport}) is not "
                f"usable: {exc}") from exc
    histogram = Histogram(LATENCY_MS_BUCKETS)
    totals = {"items": 0, "pushes": 0, "crashes": 0, "resumes": 0,
              "reconnects": 0, "verify_failures": 0}
    started = time.perf_counter()
    outcomes = await asyncio.gather(
        *[_worker(index, host, port, tenant=tenant, transport=transport,
                  wire=wire, data=data[index * span:(index + 1) * span],
                  pushes=pushes, chunk=chunk, crash_every=crash_every,
                  params=params, histogram=histogram, totals=totals,
                  verify_bits=verify_bits, retry=retry)
          for index in range(workers)],
        return_exceptions=True)
    elapsed = time.perf_counter() - started
    errors = [repr(outcome) for outcome in outcomes
              if isinstance(outcome, BaseException)]
    server_status = None
    if service is not None:
        server_status = service.status()
        await service.drain("loadgen-complete")
    latency = histogram.snapshot()
    summary = {
        "workers": workers,
        "pushes_per_stream": pushes,
        "chunk": chunk,
        "crash_every": crash_every,
        "transport": transport,
        "wire": wire,
        "items": totals["items"],
        "pushes": totals["pushes"],
        "crashes": totals["crashes"],
        "resumes": totals["resumes"],
        "reconnects": totals["reconnects"],
        "verify_failures": totals["verify_failures"],
        "worker_errors": errors,
        "elapsed_seconds": round(elapsed, 4),
        "items_per_s": (round(totals["items"] / elapsed, 1)
                        if elapsed > 0 else None),
        "push_ms": {
            "count": latency["count"],
            "mean": latency["mean"],
            "p50": latency["p50"],
            "p95": latency["p95"],
            "p99": latency["p99"],
            "max": latency["max"],
        },
    }
    if server_status is not None:
        summary["server"] = server_status
    return summary


def run_loadgen(**options) -> dict:
    """Synchronous entry point (the CLI and bench call this)."""
    return asyncio.run(run_loadgen_async(**options))
