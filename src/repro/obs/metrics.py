"""A process-local metrics registry: counters, gauges, histograms.

Design constraints (see ISSUE 9 / DESIGN.md "Observability"):

* **Dependency-free** — stdlib only, importable from every layer.
* **Thread-safe and exact** — instrument updates take a per-instrument
  lock, so counts hammered from many threads never lose an increment
  (CPython ``+=`` on an attribute is *not* atomic).
* **Near-zero cost when disabled** — a disabled registry hands out
  shared no-op instruments whose ``inc``/``set``/``observe`` are empty
  methods; hot paths can also branch on ``registry.enabled`` to skip
  timing calls entirely.
* **Pull-friendly** — besides pushed gauges there are *callback*
  gauges, sampled only at :meth:`MetricsRegistry.snapshot` time.  Hot
  loops keep plain integers; the registry reads them when somebody
  actually asks (the STATUS frame, ``--status-interval``).

Instruments are keyed by ``(name, sorted(labels))`` and cached, so
``registry.counter("hub_pushes_total", tenant="acme")`` is cheap to
call repeatedly and always returns the same object.
"""
from __future__ import annotations

import bisect
import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "LATENCY_US_BUCKETS",
    "LATENCY_MS_BUCKETS",
]

# Geometric-ish upper bounds for latency histograms.  Values above the
# last bound land in the overflow bucket (reported as ``+Inf``).
LATENCY_US_BUCKETS = (
    5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1_000.0, 2_500.0, 5_000.0, 10_000.0, 25_000.0, 50_000.0,
    100_000.0, 250_000.0, 500_000.0, 1_000_000.0,
)
LATENCY_MS_BUCKETS = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1_000.0, 2_500.0, 5_000.0, 10_000.0,
)


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


def _render_key(name: str, labels: dict) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonic counter.  ``inc`` only; never goes down."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters are monotonic; inc() amount must be >= 0")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time value that can move both ways."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with p50/p95/p99 snapshot quantiles.

    Buckets are cumulative-style upper bounds plus an implicit overflow
    bucket; exact ``count``/``sum``/``min``/``max`` ride along so means
    are precise even though quantiles are bucket-interpolated.
    """

    __slots__ = ("_lock", "_bounds", "_counts", "_count", "_sum", "_min", "_max")

    def __init__(self, buckets=LATENCY_US_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram buckets must be unique ascending bounds")
        self._lock = threading.Lock()
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 overflow
        self._count = 0
        self._sum = 0.0
        self._min = None
        self._max = None

    def observe(self, value: float) -> None:
        value = float(value)
        idx = bisect.bisect_left(self._bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def quantile(self, q: float) -> "float | None":
        with self._lock:
            return self._quantile_locked(q)

    def _quantile_locked(self, q: float) -> "float | None":
        if self._count == 0:
            return None
        rank = q * self._count
        seen = 0.0
        for idx, bucket_count in enumerate(self._counts):
            if bucket_count == 0:
                continue
            lo = seen
            seen += bucket_count
            if seen < rank:
                continue
            if idx >= len(self._bounds):  # overflow bucket: no upper bound
                return self._max
            upper = self._bounds[idx]
            lower = self._bounds[idx - 1] if idx > 0 else 0.0
            # Linear interpolation inside the bucket, clamped to the
            # exact observed extremes so tiny samples stay sane.
            frac = (rank - lo) / bucket_count
            est = lower + frac * (upper - lower)
            if self._min is not None:
                est = max(est, self._min)
            if self._max is not None:
                est = min(est, self._max)
            return est
        return self._max

    def snapshot(self) -> dict:
        with self._lock:
            out = {
                "count": self._count,
                "sum": round(self._sum, 6),
                "min": self._min,
                "max": self._max,
                "mean": round(self._sum / self._count, 6) if self._count else None,
                "p50": self._quantile_locked(0.50),
                "p95": self._quantile_locked(0.95),
                "p99": self._quantile_locked(0.99),
                "buckets": {
                    ("+Inf" if i == len(self._bounds) else repr(self._bounds[i])): c
                    for i, c in enumerate(self._counts) if c
                },
            }
        for key in ("p50", "p95", "p99"):
            if out[key] is not None:
                out[key] = round(out[key], 6)
        return out


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:  # noqa: ARG002 - deliberate no-op
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Factory + catalog for named instruments.

    ``enabled=False`` turns every factory into a shared no-op
    instrument and :meth:`snapshot` into an empty dict — the hot-path
    cost of a disabled registry is one attribute load and a no-op
    method call (or nothing at all, if the caller branches on
    :attr:`enabled`).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._counters: "dict[tuple, tuple[str, dict, Counter]]" = {}
        self._gauges: "dict[tuple, tuple[str, dict, Gauge]]" = {}
        self._histograms: "dict[tuple, tuple[str, dict, Histogram]]" = {}
        self._callbacks: "dict[tuple, tuple[str, dict, object]]" = {}

    # -- factories -----------------------------------------------------
    def counter(self, name: str, **labels) -> Counter:
        if not self.enabled:
            return _NULL_COUNTER
        key = (name, _label_key(labels))
        with self._lock:
            entry = self._counters.get(key)
            if entry is None:
                entry = (name, labels, Counter())
                self._counters[key] = entry
        return entry[2]

    def gauge(self, name: str, **labels) -> Gauge:
        if not self.enabled:
            return _NULL_GAUGE
        key = (name, _label_key(labels))
        with self._lock:
            entry = self._gauges.get(key)
            if entry is None:
                entry = (name, labels, Gauge())
                self._gauges[key] = entry
        return entry[2]

    def histogram(self, name: str, buckets=LATENCY_US_BUCKETS, **labels) -> Histogram:
        if not self.enabled:
            return _NULL_HISTOGRAM
        key = (name, _label_key(labels))
        with self._lock:
            entry = self._histograms.get(key)
            if entry is None:
                entry = (name, labels, Histogram(buckets))
                self._histograms[key] = entry
        return entry[2]

    def gauge_callback(self, name: str, fn, **labels) -> None:
        """Register ``fn() -> number`` sampled only at snapshot time.

        The zero-hot-path-cost channel: loops keep plain local state
        and the registry pulls it when a snapshot is requested.
        Re-registering the same (name, labels) replaces the callback.
        """
        if not self.enabled:
            return
        key = (name, _label_key(labels))
        with self._lock:
            self._callbacks[key] = (name, labels, fn)

    # -- reading -------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-safe view of every instrument (callbacks sampled now)."""
        if not self.enabled:
            return {"enabled": False}
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
            callbacks = list(self._callbacks.values())
        out = {
            "enabled": True,
            "counters": {
                _render_key(name, labels): inst.value
                for name, labels, inst in counters
            },
            "gauges": {
                _render_key(name, labels): inst.value
                for name, labels, inst in gauges
            },
            "histograms": {
                _render_key(name, labels): inst.snapshot()
                for name, labels, inst in histograms
            },
        }
        for name, labels, fn in callbacks:
            try:
                value = fn()
            except Exception:  # a dying callback must not poison STATUS
                value = None
            out["gauges"][_render_key(name, labels)] = value
        return out


#: Shared disabled registry — the default wiring for library-level
#: objects (`StreamHub`, `run_tasks`) when no registry is passed in.
NULL_REGISTRY = MetricsRegistry(enabled=False)
