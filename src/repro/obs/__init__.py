"""Process-local observability: metrics registry and load harness.

The :mod:`repro.obs` package is dependency-free (stdlib only) and
self-contained so every other layer — hub, server, detection pool,
encodings — can import it without cycles.  See DESIGN.md
("Observability") for the registry model and metric name catalog.
"""
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    LATENCY_US_BUCKETS,
    LATENCY_MS_BUCKETS,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "LATENCY_US_BUCKETS",
    "LATENCY_MS_BUCKETS",
]
