"""Chaos layer: deterministic fault injection and recovery policies.

Everything needed to make failure a routine, *replayable* event:

* :class:`FaultPlan` / :class:`FaultInjector` — a serializable fault
  schedule whose every decision comes from named, seeded PRNG streams
  (:mod:`repro.chaos.plan`);
* :class:`ChaosTransport` / :class:`ChaosChannel` /
  :class:`ChaosCheckpointStore` — registry-compatible wrappers that
  inject the plan's faults into any transport or store
  (:mod:`repro.chaos.wrappers`); :func:`install` activates a plan for
  ``--transport chaos``;
* :class:`RetryPolicy` — backoff/jitter/deadline/classification used by
  the client SDK's reconnect machinery (:mod:`repro.chaos.retry`);
* :class:`Supervisor` — the ``repro supervise`` restart loop with a
  crash-loop circuit breaker (:mod:`repro.chaos.supervisor`).
"""

from repro.chaos.plan import (
    CRASH_PHASES,
    FaultInjector,
    FaultPlan,
    ProcessFaults,
    StoreFaults,
    TransportFaults,
)
from repro.chaos.retry import RetryPolicy, is_retryable
from repro.chaos.supervisor import GIVE_UP_EXIT, Supervisor, supervise_serve
from repro.chaos.wrappers import (
    ChaosChannel,
    ChaosCheckpointStore,
    ChaosTransport,
    install,
    installed,
    uninstall,
)

__all__ = [
    "CRASH_PHASES",
    "FaultInjector",
    "FaultPlan",
    "ProcessFaults",
    "StoreFaults",
    "TransportFaults",
    "RetryPolicy",
    "is_retryable",
    "GIVE_UP_EXIT",
    "Supervisor",
    "supervise_serve",
    "ChaosChannel",
    "ChaosCheckpointStore",
    "ChaosTransport",
    "install",
    "installed",
    "uninstall",
]
