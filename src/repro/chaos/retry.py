"""Retry policy: exponential backoff, full jitter, deadlines, timeouts.

One :class:`RetryPolicy` value describes how a client rides out a flaky
or restarting server: how many dial attempts, how the delay between
them grows (exponential with **full jitter** — each sleep is uniform in
``[0, min(max_delay, base * multiplier**attempt)]``, the AWS-style
variant that avoids thundering herds of synchronized retries), how long
any single operation may take (``op_timeout``), and the overall wall
clock budget (``deadline``) after which the client stops trying and
surfaces the failure.

The second half of the policy is **classification**: which errors are
worth retrying at all.  Connection-level failures (resets, refused
dials, EOF, timeouts) are transient — the server may be mid-restart —
so they retry.  Semantic failures are not: a wrong key, a server-side
:class:`~repro.errors.RemoteError`, or a protocol violation on a
healthy link means retrying would only repeat the same rejection, so
they fail fast.
"""

from __future__ import annotations

import asyncio
import dataclasses
import random

from repro.errors import ParameterError, ProtocolError, RemoteError

#: Transient transport-level failures: retrying may succeed.
RETRYABLE_ERRORS = (ConnectionError, OSError, EOFError, TimeoutError,
                    asyncio.TimeoutError, asyncio.IncompleteReadError)

#: Semantic failures: retrying repeats the same rejection, fail fast.
#: (Wrong-key and state errors arrive as RemoteError; a protocol
#: violation on a healthy link is a bug, not weather.)
FATAL_ERRORS = (RemoteError, ProtocolError, ParameterError)


def is_retryable(error: BaseException) -> bool:
    """Classify one error: ``True`` = transient, worth another attempt."""
    if isinstance(error, FATAL_ERRORS):
        return False
    return isinstance(error, RETRYABLE_ERRORS)


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """How hard to try: attempts, backoff shape, timeouts, deadline.

    Parameters
    ----------
    attempts:
        Maximum dial attempts per reconnect cycle (at least 1).
    base_delay, multiplier, max_delay:
        Backoff shape: the cap before jitter for attempt *n* (0-based)
        is ``min(max_delay, base_delay * multiplier**n)``; the actual
        sleep is uniform in ``[0, cap]`` (full jitter).
    deadline:
        Overall wall-clock budget in seconds for one reconnect cycle,
        including sleeps; ``None`` means attempts alone bound it.
    op_timeout:
        Budget in seconds for any single framed read; a server silent
        for longer is treated as a lost connection.  ``None`` disables.
    """

    attempts: int = 40
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    deadline: "float | None" = 60.0
    op_timeout: "float | None" = 30.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "attempts", max(1, int(self.attempts)))
        object.__setattr__(self, "base_delay",
                           max(0.0, float(self.base_delay)))
        object.__setattr__(self, "multiplier",
                           max(1.0, float(self.multiplier)))
        object.__setattr__(self, "max_delay",
                           max(self.base_delay, float(self.max_delay)))
        for name in ("deadline", "op_timeout"):
            value = getattr(self, name)
            if value is not None:
                value = float(value)
                if value <= 0:
                    raise ParameterError(
                        f"retry {name} must be positive, got {value}")
                object.__setattr__(self, name, value)

    def backoff_delay(self, attempt: int,
                      rng: "random.Random | None" = None) -> float:
        """The sleep before retry ``attempt`` (0-based): full jitter."""
        cap = min(self.max_delay,
                  self.base_delay * self.multiplier ** max(0, attempt))
        return (rng or random).uniform(0.0, cap)

    def with_attempts(self, attempts: int) -> "RetryPolicy":
        """A copy with a different attempt budget (same shape)."""
        return dataclasses.replace(self, attempts=max(1, int(attempts)))

    @classmethod
    def legacy(cls, attempts: int, delay: float) -> "RetryPolicy":
        """Map the old ``reconnect_attempts``/``reconnect_delay`` knobs.

        Preserves the old loop's worst-case patience: the fixed delay
        becomes the backoff cap, and the deadline comfortably covers
        ``attempts`` sleeps of that length.
        """
        delay = max(0.0, float(delay))
        attempts = max(1, int(attempts))
        return cls(attempts=attempts, base_delay=min(delay, 0.05) or 0.05,
                   max_delay=max(delay, 0.05),
                   deadline=max(30.0, attempts * max(delay, 0.05) * 2),
                   op_timeout=30.0)
