"""Deterministic fault plans: every injected failure is replayable.

A :class:`FaultPlan` says *what* can go wrong (rates and magnitudes per
layer); a :class:`FaultInjector` decides *when* it actually does.  Every
decision is drawn from a **named PRNG stream** — an independent
``random.Random`` seeded from ``sha256(plan.seed || site-name)`` — so the
fault sequence observed at any one site depends only on the plan's seed
and that site's own call sequence, never on scheduling order across
sites.  Run the same plan twice against the same workload and the same
faults fire at the same operations: failures replay exactly, which is
what makes a chaos soak debuggable instead of merely alarming.

Every fired fault is appended to the injector's in-memory event list
and, when a ``log_path`` is given, to a JSON-lines fault log (flushed
per line, so even an injected hard crash leaves the full record behind
— the CI ``chaos-smoke`` job uploads it as an artifact).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import random
from pathlib import Path

from repro.errors import ParameterError

#: Phases of one PUSH ingest where a process crash may be armed.
CRASH_PHASES = ("pre-ingest", "post-ingest", "post-delivery")


def _rate(value, name: str) -> float:
    try:
        rate = float(value)
    except (TypeError, ValueError):
        raise ParameterError(
            f"fault rate {name} must be a number, got {value!r}") from None
    if not 0.0 <= rate <= 1.0:
        raise ParameterError(
            f"fault rate {name} must be within [0, 1], got {rate}")
    return rate


@dataclasses.dataclass(frozen=True)
class TransportFaults:
    """Per-message fault rates for one side of a transport.

    Rates are independent probabilities evaluated once per message in a
    fixed order (latency first, then exactly one of stall / drop /
    truncate / reset), so one message suffers at most one terminal
    fault.  ``connect_fail_rate`` applies per dial attempt instead.
    """

    latency_rate: float = 0.0
    #: Uniform injected delay bounds, in milliseconds.
    latency_ms: "tuple[float, float]" = (0.5, 5.0)
    stall_rate: float = 0.0
    stall_seconds: float = 0.5
    drop_rate: float = 0.0
    truncate_rate: float = 0.0
    reset_rate: float = 0.0
    connect_fail_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("latency_rate", "stall_rate", "drop_rate",
                     "truncate_rate", "reset_rate", "connect_fail_rate"):
            object.__setattr__(self, name, _rate(getattr(self, name), name))
        low, high = self.latency_ms
        object.__setattr__(self, "latency_ms",
                           (float(low), max(float(low), float(high))))
        object.__setattr__(self, "stall_seconds",
                           max(0.0, float(self.stall_seconds)))

    def active(self) -> bool:
        """Whether any fault on this side can ever fire."""
        return any(getattr(self, name) > 0.0
                   for name in ("latency_rate", "stall_rate", "drop_rate",
                                "truncate_rate", "reset_rate",
                                "connect_fail_rate"))


@dataclasses.dataclass(frozen=True)
class StoreFaults:
    """Per-operation fault rates for a checkpoint store."""

    #: Probability a save persists only a prefix of the entry (the
    #: classic torn write) and reports failure.
    torn_write_rate: float = 0.0
    #: Probability a save fails transiently (EIO) without touching disk.
    io_error_rate: float = 0.0
    #: Probability a read returns the previous entry instead of the
    #: latest (a stale replica / lagging page cache).
    stale_read_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("torn_write_rate", "io_error_rate", "stale_read_rate"):
            object.__setattr__(self, name, _rate(getattr(self, name), name))

    def active(self) -> bool:
        """Whether any store fault can ever fire."""
        return (self.torn_write_rate > 0.0 or self.io_error_rate > 0.0
                or self.stale_read_rate > 0.0)


@dataclasses.dataclass(frozen=True)
class ProcessFaults:
    """Hard-crash schedule for the server process.

    ``crash_after_pushes`` bounds a uniform draw: each server life picks
    a crash point in ``[low, high]`` ingested pushes, then dies with
    ``os._exit(exit_code)`` at a PRNG-chosen phase of that push.
    ``(0, 0)`` disables crashes.
    """

    crash_after_pushes: "tuple[int, int]" = (0, 0)
    exit_code: int = 70

    def __post_init__(self) -> None:
        low, high = self.crash_after_pushes
        low, high = int(low), int(high)
        if low < 0 or high < low:
            raise ParameterError(
                "crash_after_pushes must be (low, high) with "
                f"0 <= low <= high, got {self.crash_after_pushes!r}")
        object.__setattr__(self, "crash_after_pushes", (low, high))
        code = int(self.exit_code)
        if not 1 <= code <= 255:
            raise ParameterError(
                f"crash exit_code must be in [1, 255], got {code}")
        object.__setattr__(self, "exit_code", code)

    def active(self) -> bool:
        """Whether crashes are scheduled at all."""
        return self.crash_after_pushes[1] > 0


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A complete, serializable chaos configuration.

    The plan is pure data — rates, bounds and one seed — and round-trips
    through JSON (:meth:`dump` / :meth:`load`), so the exact fault
    schedule of a soak run can be committed, shipped to CI, or attached
    to a bug report and replayed.
    """

    seed: int = 0
    client_transport: TransportFaults = dataclasses.field(
        default_factory=TransportFaults)
    server_transport: TransportFaults = dataclasses.field(
        default_factory=TransportFaults)
    store: StoreFaults = dataclasses.field(default_factory=StoreFaults)
    process: ProcessFaults = dataclasses.field(default_factory=ProcessFaults)

    def to_dict(self) -> dict:
        """The plan as plain JSON-ready data."""
        payload = dataclasses.asdict(self)
        payload["format_version"] = 1
        payload["kind"] = "fault-plan"
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output (validated)."""
        if not isinstance(payload, dict):
            raise ParameterError(
                f"fault plan must be a JSON object, "
                f"got {type(payload).__name__}")
        data = dict(payload)
        kind = data.pop("kind", "fault-plan")
        if kind != "fault-plan":
            raise ParameterError(
                f"expected a fault-plan document, got kind {kind!r}")
        version = data.pop("format_version", 1)
        if int(version) > 1:
            raise ParameterError(
                f"fault plan written by a newer version ({version})")
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ParameterError(
                f"unknown fault plan fields {sorted(unknown)}")
        kwargs: dict = {"seed": int(data.get("seed", 0))}
        for name, section_cls in (("client_transport", TransportFaults),
                                  ("server_transport", TransportFaults),
                                  ("store", StoreFaults),
                                  ("process", ProcessFaults)):
            section = data.get(name)
            if section is None:
                continue
            if not isinstance(section, dict):
                raise ParameterError(
                    f"fault plan section {name!r} must be an object")
            fields = {field.name for field in
                      dataclasses.fields(section_cls)}
            extra = set(section) - fields
            if extra:
                raise ParameterError(
                    f"unknown fields {sorted(extra)} in fault plan "
                    f"section {name!r}")
            coerced = {
                key: tuple(value) if isinstance(value, list) else value
                for key, value in section.items()}
            try:
                kwargs[name] = section_cls(**coerced)
            except TypeError as exc:
                raise ParameterError(
                    f"bad fault plan section {name!r}: {exc}") from exc
        return cls(**kwargs)

    def dump(self, path: "str | Path") -> None:
        """Write the plan to a JSON file."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2,
                                         sort_keys=True) + "\n")

    @classmethod
    def load(cls, path: "str | Path") -> "FaultPlan":
        """Read a plan back from a JSON file."""
        try:
            payload = json.loads(Path(path).read_text())
        except FileNotFoundError:
            raise ParameterError(f"fault plan file not found: {path}") \
                from None
        except (OSError, json.JSONDecodeError) as exc:
            raise ParameterError(
                f"cannot read fault plan {path}: {exc}") from exc
        return cls.from_dict(payload)


class FaultInjector:
    """Draws every chaos decision from named, independently-seeded PRNGs.

    One injector serves a whole process (client or server side).  Each
    decision site — ``"client.read"``, ``"server.store.put"``, … — gets
    its own :class:`random.Random` seeded from the plan seed and the
    site name, so adding a new site (or reordering unrelated traffic)
    never perturbs the fault sequence of existing ones.
    """

    def __init__(self, plan: FaultPlan,
                 log_path: "str | Path | None" = None) -> None:
        self.plan = plan
        self._streams: "dict[str, random.Random]" = {}
        self.events: "list[dict]" = []
        self._log_handle = None
        if log_path is not None:
            # Line-buffered append, flushed per event: an os._exit()
            # crash right after a fault still leaves it on disk.
            self._log_handle = open(log_path, "a", buffering=1)
        #: Armed process-crash state for the current server life:
        #: (crash_at_push, phase) once drawn, None until first gate.
        self._crash_point: "tuple[int, str] | None" = None
        self._crash_counter = 0

    # -- PRNG plumbing ---------------------------------------------------
    def rng(self, site: str) -> random.Random:
        """The named decision stream for ``site`` (created on first use)."""
        stream = self._streams.get(site)
        if stream is None:
            digest = hashlib.sha256(
                f"{self.plan.seed}\x00{site}".encode("utf-8")).digest()
            stream = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[site] = stream
        return stream

    def record(self, site: str, fault: str, **detail) -> dict:
        """Log one fired fault (in memory and to the JSON-lines log)."""
        event = {"site": site, "fault": fault}
        event.update(detail)
        self.events.append(event)
        if self._log_handle is not None:
            self._log_handle.write(json.dumps(event, sort_keys=True) + "\n")
        return event

    def close(self) -> None:
        """Close the fault log (idempotent)."""
        if self._log_handle is not None:
            self._log_handle.close()
            self._log_handle = None

    # -- transport decisions ---------------------------------------------
    def message_fault(self, site: str,
                      faults: TransportFaults) -> "dict | None":
        """Decide the fate of one message at ``site``.

        Draws in a fixed order from the site's stream: one uniform for
        latency, one for the terminal fault class, plus magnitude draws
        only when a fault fires — so the stream advances identically on
        every replay.  Returns ``None`` (deliver untouched) or a dict
        with ``fault`` plus magnitudes; terminal faults are mutually
        exclusive per message.
        """
        stream = self.rng(site)
        decision: "dict | None" = None
        if faults.latency_rate and stream.random() < faults.latency_rate:
            low, high = faults.latency_ms
            decision = {"fault": "latency",
                        "delay": stream.uniform(low, high) / 1000.0}
        roll = stream.random()
        for fault, rate in (("stall", faults.stall_rate),
                            ("drop", faults.drop_rate),
                            ("truncate", faults.truncate_rate),
                            ("reset", faults.reset_rate)):
            if rate <= 0.0:
                continue
            if roll < rate:
                if fault == "stall":
                    return {"fault": "stall",
                            "delay": (decision or {}).get("delay", 0.0),
                            "stall": faults.stall_seconds}
                result = {"fault": fault}
                if fault == "truncate":
                    # Cut fraction in (0, 1): always at least one byte
                    # missing, never the full frame.
                    result["keep_fraction"] = stream.uniform(0.1, 0.9)
                if decision is not None:
                    result["delay"] = decision["delay"]
                return result
            roll -= rate
        return decision

    def connect_fault(self, site: str, faults: TransportFaults) -> bool:
        """Whether this dial attempt is refused by the plan."""
        if faults.connect_fail_rate <= 0.0:
            return False
        return self.rng(site).random() < faults.connect_fail_rate

    # -- store decisions -------------------------------------------------
    def store_write_fault(self, site: str,
                          faults: StoreFaults) -> "dict | None":
        """Decide the fate of one store write (torn / EIO / clean)."""
        stream = self.rng(site)
        roll = stream.random()
        if faults.torn_write_rate and roll < faults.torn_write_rate:
            return {"fault": "torn-write",
                    "keep_fraction": stream.uniform(0.05, 0.95)}
        roll -= faults.torn_write_rate
        if faults.io_error_rate and roll < faults.io_error_rate:
            return {"fault": "io-error"}
        return None

    def store_read_fault(self, site: str,
                         faults: StoreFaults) -> "dict | None":
        """Decide whether one store read observes a stale entry."""
        if faults.stale_read_rate <= 0.0:
            return None
        if self.rng(site).random() < faults.stale_read_rate:
            return {"fault": "stale-read"}
        return None

    # -- process crash gates ---------------------------------------------
    def crash_gate(self, phase: str, site: str = "server.crash") -> None:
        """Hard-crash the process when the armed (push, phase) is reached.

        Call once per phase of every ingested push: the ``pre-ingest``
        call advances the push counter.  When crashes are armed and the
        counter reaches the drawn crash point at the drawn phase, the
        event is logged (and flushed) and the process dies with
        ``os._exit`` — no cleanup, exactly like a kill.
        """
        faults = self.plan.process
        if not faults.active():
            return
        if self._crash_point is None:
            stream = self.rng(site)
            low, high = faults.crash_after_pushes
            self._crash_point = (stream.randint(max(1, low), max(1, high)),
                                 stream.choice(CRASH_PHASES))
        if phase == CRASH_PHASES[0]:
            self._crash_counter += 1
        crash_at, crash_phase = self._crash_point
        if self._crash_counter >= crash_at and phase == crash_phase:
            self.record(site, "crash", push=self._crash_counter,
                        phase=phase, exit_code=faults.exit_code)
            self.close()
            import os
            os._exit(faults.exit_code)
