"""Chaos wrappers: fault-injecting Transport, Channel and CheckpointStore.

Each wrapper delegates to a real component and consults a
:class:`~repro.chaos.plan.FaultInjector` before (or instead of) every
operation.  The wrapped component is untouched — chaos is a layer, not
a fork — so every transport or store registered in
:data:`repro.registry.REGISTRY` can run under fault injection:

* :class:`ChaosChannel` / :class:`ChaosTransport` — per-message latency,
  stalls, drops, mid-frame truncation (a *valid* transport message
  carrying a prefix of the frame body, so the peer's codec chokes the
  way a torn TCP stream would, on every transport), and hard resets.
* :class:`ChaosCheckpointStore` — torn writes (a prefix of the entry is
  durably stored, then the save fails), transient EIO, and stale reads
  (the previous entry is served instead of the latest).

:func:`install` activates a plan process-wide and registers the
``chaos`` transport name, so ``--transport chaos`` works everywhere a
transport name is accepted (client SDK, ``repro loadgen``).
"""

from __future__ import annotations

import asyncio

from repro.chaos.plan import FaultInjector, FaultPlan, StoreFaults, \
    TransportFaults
from repro.errors import CheckpointStoreError, ReproError
from repro.registry import REGISTRY
from repro.server.protocol import MAX_FRAME_BYTES
from repro.server.transports import Listener, Transport, \
    TransportConnection, build_transport
from repro.stores import CheckpointStore


class ChaosChannel(TransportConnection):
    """A transport connection that misbehaves per the fault plan.

    Terminal faults surface as :class:`ConnectionResetError` after
    aborting the inner channel — exactly what a genuine peer crash
    looks like to the protocol layer, so recovery code cannot tell
    injected failures from real ones (that is the point).
    """

    def __init__(self, inner: TransportConnection, injector: FaultInjector,
                 faults: TransportFaults, site: str) -> None:
        self._inner = inner
        self._injector = injector
        self._faults = faults
        self._site = site
        self.peer = inner.peer

    async def _apply(self, decision: "dict | None", direction: str,
                     body: "bytes | None" = None) -> "dict | None":
        """Sleep for latency/stall decisions; raise for resets.

        Returns the decision when the caller must keep handling it
        (drop, truncate), ``None`` when the message may proceed.
        """
        if decision is None:
            return None
        fault = decision["fault"]
        if decision.get("delay"):
            await asyncio.sleep(decision["delay"])
        if fault == "latency":
            self._injector.record(self._site, "latency",
                                  direction=direction,
                                  delay=round(decision["delay"], 6))
            return None
        if fault == "stall":
            self._injector.record(self._site, "stall", direction=direction,
                                  seconds=decision["stall"])
            await asyncio.sleep(decision["stall"])
            return None
        if fault == "reset":
            self._injector.record(self._site, "reset", direction=direction)
            self.abort()
            raise ConnectionResetError(
                f"chaos: injected reset ({direction}, {self._site})")
        return decision

    async def read_message(self) -> "bytes | None":
        """Read one message, subject to injected read-side faults."""
        decision = self._injector.message_fault(
            self._site + ".read", self._faults)
        decision = await self._apply(decision, "read")
        if decision is not None and decision["fault"] == "drop":
            # Reading "nothing" forever is indistinguishable from a
            # stalled peer; model a read-side drop as a reset instead
            # so the failure is prompt and recoverable.
            self._injector.record(self._site, "reset", direction="read",
                                  via="drop")
            self.abort()
            raise ConnectionResetError(
                f"chaos: injected read failure ({self._site})")
        return await self._inner.read_message()

    async def write_message(self, body: bytes) -> None:
        """Send one message, subject to injected write-side faults."""
        decision = self._injector.message_fault(
            self._site + ".write", self._faults)
        decision = await self._apply(decision, "write", body)
        if decision is None:
            await self._inner.write_message(body)
            return
        fault = decision["fault"]
        if fault == "drop":
            self._injector.record(self._site, "drop", direction="write",
                                  bytes=len(body))
            return
        if fault == "truncate":
            keep = max(1, min(len(body) - 1,
                              int(len(body) * decision["keep_fraction"])))
            self._injector.record(self._site, "truncate", direction="write",
                                  bytes=len(body), kept=keep)
            try:
                # A complete transport message carrying a torn frame
                # body: the peer's codec rejects it, mimicking a crash
                # mid-frame regardless of the underlying framing.
                await self._inner.write_message(body[:keep])
            finally:
                self.abort()
            raise ConnectionResetError(
                f"chaos: injected mid-frame truncation ({self._site})")
        await self._inner.write_message(body)  # pragma: no cover

    async def write_messages(self, bodies: "list[bytes]") -> None:
        """Send several messages, each drawing its own fault decision."""
        for body in bodies:
            await self.write_message(body)

    async def close(self) -> None:
        """Close the inner channel."""
        await self._inner.close()

    def abort(self) -> None:
        """Abort the inner channel."""
        self._inner.abort()


#: Module-level active chaos configuration, set by :func:`install`.
_ACTIVE: "dict | None" = None


@REGISTRY.register("transport", "chaos",
                   description="fault-injecting wrapper around another "
                               "transport (repro.chaos.install)")
class ChaosTransport(Transport):
    """A registered transport that wraps another one with fault injection.

    Constructed explicitly (``ChaosTransport(inner=..., injector=...)``)
    or resolved by name — ``build_transport("chaos")`` — after
    :func:`install` has activated a plan process-wide.
    """

    name = "chaos"

    def __init__(self, inner: "Transport | None" = None,
                 injector: "FaultInjector | None" = None,
                 side: str = "client") -> None:
        if inner is None or injector is None:
            if _ACTIVE is None:
                raise ReproError(
                    "the chaos transport needs an installed fault plan: "
                    "call repro.chaos.install(plan) first")
            inner = inner or build_transport(_ACTIVE["inner"])
            injector = injector or _ACTIVE["injector"]
            side = _ACTIVE["side"]
        self._inner = inner
        self._injector = injector
        self._side = side
        self._faults = (injector.plan.server_transport if side == "server"
                        else injector.plan.client_transport)

    async def serve(self, host: str, port: int, handler, *,
                    max_bytes: int = MAX_FRAME_BYTES) -> Listener:
        """Serve via the inner transport, wrapping accepted channels."""
        async def chaotic_handler(connection: TransportConnection):
            await handler(ChaosChannel(connection, self._injector,
                                       self._faults,
                                       site=f"{self._side}.transport"))

        return await self._inner.serve(host, port, chaotic_handler,
                                       max_bytes=max_bytes)

    async def connect(self, host: str, port: int, *,
                      max_bytes: int = MAX_FRAME_BYTES
                      ) -> TransportConnection:
        """Dial via the inner transport (dials themselves may fail)."""
        site = f"{self._side}.transport"
        if self._injector.connect_fault(site + ".connect", self._faults):
            self._injector.record(site, "connect-fail", host=host,
                                  port=port)
            raise ConnectionRefusedError(
                f"chaos: injected dial failure to {host}:{port}")
        connection = await self._inner.connect(host, port,
                                               max_bytes=max_bytes)
        return ChaosChannel(connection, self._injector, self._faults,
                            site=site)


def install(plan: "FaultPlan | FaultInjector", *, inner: str = "tcp",
            side: str = "client",
            log_path=None) -> FaultInjector:
    """Activate a fault plan for name-resolved chaos transports.

    After this, ``build_transport("chaos")`` (hence ``--transport
    chaos`` anywhere a transport name is accepted) wraps the ``inner``
    transport with the given plan.  Returns the active injector so the
    caller can inspect its event log.  Call :func:`uninstall` to
    deactivate.
    """
    global _ACTIVE
    injector = (plan if isinstance(plan, FaultInjector)
                else FaultInjector(plan, log_path=log_path))
    _ACTIVE = {"injector": injector, "inner": inner, "side": side}
    return injector


def uninstall() -> None:
    """Deactivate the process-wide chaos transport configuration."""
    global _ACTIVE
    _ACTIVE = None


def installed() -> "FaultInjector | None":
    """The active injector, or ``None`` when chaos is not installed."""
    return None if _ACTIVE is None else _ACTIVE["injector"]


class ChaosCheckpointStore(CheckpointStore):
    """A checkpoint store wrapper that injects storage failures.

    Envelope-level reads (``entry``/``load``/sequence numbering) are
    delegated to the inner store so its own recovery semantics — e.g.
    :class:`~repro.stores.DirectoryCheckpointStore` generation fallback
    — stay in force under injection; faults enter at the write path
    (torn writes, transient EIO) and at ``entry`` (stale reads).
    """

    def __init__(self, inner: CheckpointStore, injector: FaultInjector,
                 site: str = "store") -> None:
        self._inner = inner
        self._injector = injector
        self._site = site
        self._faults: StoreFaults = injector.plan.store
        #: Previous entry text per stream, served on stale reads.
        self._shadow: "dict[str, str]" = {}

    @property
    def inner(self) -> CheckpointStore:
        """The wrapped store."""
        return self._inner

    # -- faulty primitives ----------------------------------------------
    def _put(self, stream_id: str, text: str) -> None:
        decision = self._injector.store_write_fault(
            self._site + ".put", self._faults)
        if decision is not None:
            if decision["fault"] == "io-error":
                self._injector.record(self._site, "io-error",
                                      stream=stream_id)
                raise CheckpointStoreError(
                    f"chaos: transient I/O error writing checkpoint "
                    f"for {stream_id!r}")
            keep = max(1, min(len(text) - 1,
                              int(len(text) * decision["keep_fraction"])))
            self._injector.record(self._site, "torn-write",
                                  stream=stream_id, bytes=len(text),
                                  kept=keep)
            # The torn prefix lands durably (the inner write is atomic,
            # but atomically writes garbage) and the save still reports
            # failure — the worst honest outcome of a crash mid-write.
            self._inner._put(stream_id, text[:keep])
            raise CheckpointStoreError(
                f"chaos: torn write for checkpoint {stream_id!r} "
                f"({keep}/{len(text)} bytes persisted)")
        previous = self._inner._get(stream_id)
        if previous is not None:
            self._shadow[stream_id] = previous
        self._inner._put(stream_id, text)

    def _get(self, stream_id: str) -> "str | None":
        return self._inner._get(stream_id)

    def _discard(self, stream_id: str) -> bool:
        self._shadow.pop(stream_id, None)
        return self._inner._discard(stream_id)

    def _ids(self) -> "list[str]":
        return self._inner._ids()

    # -- envelope ops delegated for inner-store semantics ----------------
    def entry(self, stream_id: str) -> dict:
        """Inner entry lookup, possibly served stale per the plan."""
        decision = self._injector.store_read_fault(
            self._site + ".get", self._faults)
        stale = self._shadow.get(stream_id)
        if decision is not None and stale is not None:
            self._injector.record(self._site, "stale-read",
                                  stream=stream_id)
            return self._decode(stale, stream_id)
        return self._inner.entry(stream_id)

    def _current_sequence(self, stream_id: str) -> int:
        # Sequence numbering must see the inner store's own view
        # (including any generation fallback), never the stale shadow.
        return self._inner._current_sequence(stream_id)
