"""Process supervision: restart a crashing server until it stays up.

:class:`Supervisor` runs one child command (normally ``repro serve``)
and implements the classic supervision loop as a small, explicit state
machine::

    starting ──spawn──▶ running ──exit 0──▶ stopped   (exit code 0)
       ▲                  │
       │                  ├─ signal received ─▶ draining ─▶ stopped
       │                  │     (SIGTERM forwarded; child drains)
       │                  └─ non-zero exit
       │                        │
       │                 too many recent
       │                 restarts? ──yes──▶ gave-up   (exit code 3)
       │                        │no
       └── backoff sleep ◀──────┘   (restart args appended, e.g. --recover)

Restarts are counted over a sliding ``restart_window``: a server that
crashes occasionally restarts forever, while a crash *loop* (the child
dies faster than the window drains) trips the circuit breaker so a
broken deployment fails loudly instead of flapping.  Each restart
appends ``restart_args`` (``--recover`` for ``repro serve``) so the
child comes back reading its checkpoint store.

The supervisor emits one JSON line per state change on ``emit`` — the
same machine-first convention as ``repro serve`` — which doubles as
the restart log asserted by the chaos soak and archived by CI.
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import threading
import time
from collections import deque

from repro.errors import ParameterError

#: Exit code when the crash-loop circuit breaker opens.
GIVE_UP_EXIT = 3

#: Signals forwarded to the child for a clean drain.
_FORWARDED = (signal.SIGTERM, signal.SIGINT)


def _default_emit(event: dict) -> None:
    print(json.dumps(event), flush=True)


class Supervisor:
    """Run a command under restart-on-failure supervision.

    Parameters
    ----------
    command:
        The child argv (e.g. ``[sys.executable, "-m", "repro",
        "serve", ...]``).
    restart_args:
        Extra argv appended on every restart (not the first launch) —
        ``["--recover"]`` makes a restarted ``repro serve`` re-admit
        its checkpointed streams.
    max_restarts, restart_window:
        The circuit breaker: more than ``max_restarts`` restarts within
        the trailing ``restart_window`` seconds means a crash loop;
        the supervisor gives up with exit code :data:`GIVE_UP_EXIT`.
    backoff_base, backoff_max:
        Restart delay: ``min(backoff_max, backoff_base * 2**n)`` after
        ``n`` consecutive failures (reset when a child outlives the
        window).
    emit:
        Callback for JSON-ready event dicts (default: print one JSON
        line per event to stdout).
    """

    def __init__(self, command: "list[str]", *,
                 restart_args: "tuple[str, ...] | list[str]" = (),
                 max_restarts: int = 5, restart_window: float = 60.0,
                 backoff_base: float = 0.5, backoff_max: float = 5.0,
                 emit=None) -> None:
        if not command:
            raise ParameterError("supervisor needs a non-empty command")
        self._command = [str(part) for part in command]
        self._restart_args = [str(part) for part in restart_args]
        self._max_restarts = max(0, int(max_restarts))
        self._restart_window = max(0.1, float(restart_window))
        self._backoff_base = max(0.0, float(backoff_base))
        self._backoff_max = max(self._backoff_base, float(backoff_max))
        self._emit = emit or _default_emit
        self._child: "subprocess.Popen | None" = None
        self._stop = threading.Event()
        self.state = "starting"
        self.restarts = 0

    # -- control ---------------------------------------------------------
    def request_stop(self, signum: int = signal.SIGTERM) -> None:
        """Ask the supervisor to stop: forward the signal to the child.

        Thread-safe (also invoked from the signal handler).  The child
        gets the signal and is expected to drain and exit; the
        supervision loop then returns instead of restarting.
        """
        self._stop.set()
        child = self._child
        if child is not None and child.poll() is None:
            try:
                child.send_signal(signum)
            except (ProcessLookupError, OSError):  # pragma: no cover
                pass

    def _event(self, action: str, **fields) -> None:
        event = {"event": "supervisor", "action": action,
                 "state": self.state}
        event.update(fields)
        self._emit(event)

    def _spawn(self, restarting: bool) -> "subprocess.Popen":
        argv = list(self._command)
        if restarting:
            argv += [arg for arg in self._restart_args if arg not in argv]
        child = subprocess.Popen(argv)
        self._child = child
        self.state = "running"
        self._event("start", pid=child.pid, restart=restarting,
                    restarts=self.restarts, argv=argv)
        return child

    def _sleep_backoff(self, failures: int) -> None:
        delay = min(self._backoff_max,
                    self._backoff_base * (2 ** max(0, failures - 1)))
        self.state = "backoff"
        self._event("backoff", delay=round(delay, 3))
        # Sleep in slices so a stop request cuts the wait short.
        self._stop.wait(timeout=delay)

    # -- the loop --------------------------------------------------------
    def run(self) -> int:
        """Supervise until the child exits cleanly, is stopped, or the
        circuit breaker opens.  Returns the supervisor's exit code."""
        handlers: "dict[int, object]" = {}
        on_main = threading.current_thread() is threading.main_thread()
        if on_main:
            for signum in _FORWARDED:
                handlers[signum] = signal.signal(
                    signum,
                    lambda num, _frame: self.request_stop(num))
        try:
            return self._run_loop()
        finally:
            for signum, previous in handlers.items():
                signal.signal(signum, previous)

    def _run_loop(self) -> int:
        recent: "deque[float]" = deque()
        failures = 0
        restarting = False
        while True:
            started = time.monotonic()
            child = self._spawn(restarting)
            returncode = child.wait()
            self._event("exit", pid=child.pid, returncode=returncode,
                        uptime=round(time.monotonic() - started, 3))
            if time.monotonic() - started > self._restart_window:
                failures = 0
            if self._stop.is_set():
                self.state = "stopped"
                self._event("stopped", returncode=returncode)
                return returncode
            if returncode == 0:
                self.state = "stopped"
                self._event("stopped", returncode=0)
                return 0
            now = time.monotonic()
            while recent and now - recent[0] > self._restart_window:
                recent.popleft()
            if len(recent) >= self._max_restarts:
                self.state = "gave-up"
                self._event("give-up", recent_restarts=len(recent),
                            window=self._restart_window)
                return GIVE_UP_EXIT
            recent.append(now)
            self.restarts += 1
            failures += 1
            self._sleep_backoff(failures)
            if self._stop.is_set():
                self.state = "stopped"
                self._event("stopped", returncode=returncode)
                return returncode
            restarting = True


def supervise_serve(serve_args: "list[str]", *, python: "str | None" = None,
                    **options) -> Supervisor:
    """Build a :class:`Supervisor` for ``repro serve`` with the given
    CLI arguments; restarts append ``--recover`` unless already given."""
    command = [python or sys.executable, "-m", "repro", "serve",
               *serve_args]
    restart_args = [] if "--recover" in serve_args else ["--recover"]
    return Supervisor(command, restart_args=restart_args, **options)
