"""Bench: paper Sec-7 future work — non-average summarization aggregates."""

from __future__ import annotations

from _util import report, run_once

from repro.experiments.config import bench_scale
from repro.experiments.future_aggregates import run_future_aggregates


def test_future_aggregates(benchmark):
    result = run_once(benchmark, run_future_aggregates, bench_scale())
    report(result)
    by_aggregate: dict[str, list[int]] = {}
    for row in result.rows:
        by_aggregate.setdefault(row["aggregate"], []).append(row["bias"])
    means = {name: sum(biases) / len(biases)
             for name, biases in by_aggregate.items()}
    # The average-based convention survives its own transform best...
    assert means["mean"] >= max(means["max"], means["min"],
                                means["median"]) - 2
    # ...but verbatim-member aggregates stay decisively above noise.
    assert means["max"] > 0
    assert means["min"] > 0
