"""Shared helpers for the benchmark harness.

Every bench runs its experiment exactly once through pytest-benchmark's
pedantic mode (the experiments are deterministic and internally sized;
statistical timing repetition would only re-run multi-second pipelines),
prints the paper-vs-measured table, and persists it under
``benchmarks/results/`` so EXPERIMENTS.md can cite stable artifacts.
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments.runner import ExperimentResult, format_table

RESULTS_DIR = Path(__file__).parent / "results"


def run_once(benchmark, func, *args, **kwargs) -> ExperimentResult:
    """Execute ``func`` once under the benchmark timer."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


def report(result: ExperimentResult) -> str:
    """Print and persist an experiment table; return the rendered text."""
    text = format_table(result)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{result.experiment_id}.txt"
    path.write_text(text + "\n")
    print("\n" + text)
    return text


def column_is_decreasing(values, tolerance: float = 0.0) -> bool:
    """True when the series trends downward (allowing ``tolerance`` rises)."""
    rises = sum(1 for a, b in zip(values, values[1:]) if b > a + tolerance)
    return rises <= max(0, len(values) // 3)


def column_is_increasing(values, tolerance: float = 0.0) -> bool:
    """True when the series trends upward (allowing small dips)."""
    dips = sum(1 for a, b in zip(values, values[1:]) if b < a - tolerance)
    return dips <= max(0, len(values) // 3)
