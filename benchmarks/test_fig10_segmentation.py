"""Bench: Figure 10 — segmentation and combined transforms."""

from __future__ import annotations

from _util import column_is_increasing, report, run_once

from repro.experiments.config import bench_scale
from repro.experiments.fig10_segmentation import run_fig10a, run_fig10b


def test_fig10a_segment_size(benchmark):
    result = run_once(benchmark, run_fig10a, bench_scale())
    report(result)
    biases = result.column("bias_mean")
    assert column_is_increasing(biases, tolerance=2.0)
    # Paper: a few thousand values already give a convincing proof.
    assert biases[-1] >= 10


def test_fig10b_combined_grid(benchmark):
    result = run_once(benchmark, run_fig10b, bench_scale())
    report(result)
    preserving = [row["bias"] for row in result.rows
                  if row["order"] == "summarize-then-sample"]
    destroying = [row["bias"] for row in result.rows
                  if row["order"] == "sample-then-summarize"]
    # Adjacency-preserving order reproduces the paper's survival.
    assert min(preserving) > -5
    assert sum(preserving) / len(preserving) >= 8
    # The adjacency-destroying order still survives at the mildest
    # corner but decays faster across the grid.
    assert destroying[0] >= 4
    assert sum(preserving) >= sum(destroying)
