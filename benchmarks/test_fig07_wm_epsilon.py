"""Bench: Figure 7 — watermark survival under ε-attacks (real-data model)."""

from __future__ import annotations

from _util import column_is_decreasing, report, run_once

from repro.experiments.config import bench_scale
from repro.experiments.fig07_wm_epsilon import run_fig7a, run_fig7b


def test_fig7a_bias_surface(benchmark):
    result = run_once(benchmark, run_fig7a, bench_scale())
    report(result)
    clean = next(row["bias"] for row in result.rows
                 if row["tau"] == 0.0 and row["epsilon"] == 0.0)
    worst = min(row["bias"] for row in result.rows)
    # The surface must fall from its clean corner.
    assert clean >= 30
    assert worst < clean * 0.5


def test_fig7b_tau_slice(benchmark):
    result = run_once(benchmark, run_fig7b, bench_scale())
    report(result)
    biases = result.column("bias")
    assert column_is_decreasing(biases, tolerance=3.0)
    # The paper's headline: still decisive at tau = 50%, eps = 10%.
    final = result.rows[-1]
    assert final["tau"] == 0.5
    assert final["bias"] >= 5
    assert final["confidence"] > 0.95
