"""Bench/ablation: encoding designs under their designed-for attacks.

DESIGN.md's ablation list:

* initial guarded-bit vs multi-hash under **summarization** — the reason
  Sec 4.3 exists;
* initial-with-value-positions vs labeled schemes under the
  **correlation attack** — the reason Sec 4.1 exists;
* full constraint set vs computation-reducing **active subset** —
  resilience/cost trade-off.
"""

from __future__ import annotations

import numpy as np
from _util import report, run_once

from repro.attacks.correlation import correlation_attack
from repro.core.detector import detect_watermark
from repro.core.embedder import watermark_stream
from repro.experiments.config import DEFAULT_KEY, bench_scale, scaled, synthetic_params
from repro.experiments.datasets import reference_synthetic
from repro.experiments.runner import ExperimentResult
from repro.transforms.summarization import summarize


def _ablation_summarization(scale: float) -> ExperimentResult:
    params = synthetic_params()
    stream = np.array(reference_synthetic(scaled(8000, scale, 2000)))
    result = ExperimentResult(
        experiment_id="ablation-encodings-summarization",
        title="encoding ablation under summarization (degree 3)",
        columns=["encoding", "clean_bias", "summarized_bias"],
        paper_expectation=("multi-hash survives summarization by design; "
                           "initial/quadres decay (Sec 3.2 vs 4.3)"))
    for encoding in ("multihash", "initial", "quadres"):
        marked, _ = watermark_stream(stream, "1", DEFAULT_KEY,
                                     params=params, encoding=encoding)
        clean = detect_watermark(marked, 1, DEFAULT_KEY, params=params,
                                 encoding=encoding)
        summarized = summarize(marked, 3)
        after = detect_watermark(summarized, 1, DEFAULT_KEY, params=params,
                                 encoding=encoding, transform_degree=3.0)
        result.add(encoding=encoding, clean_bias=clean.bias(0),
                   summarized_bias=after.bias(0))
    return result


def _ablation_labeling(scale: float) -> ExperimentResult:
    params = synthetic_params()
    stream = np.array(reference_synthetic(scaled(24000, scale, 8000)))
    attack = dict(beta_guess=params.msb_bits, alpha_guess=params.lsb_bits,
                  rng=7, prominence=params.prominence, delta=params.delta,
                  bias_threshold=0.25, min_bucket=10)
    result = ExperimentResult(
        experiment_id="ablation-labeling-correlation",
        title="value-derived vs label-derived positions under the "
              "bucket-counting attack",
        columns=["scheme", "clean_bias", "attacked_bias", "flags"],
        paper_expectation=("the Sec-3.2 value-derived scheme collapses; "
                           "the Sec-4.1 labeled schemes survive"))
    schemes = [
        ("initial-value-positions",
         dict(encoding="initial", require_labels=False,
              encoding_options={"use_label_positions": False})),
        ("initial-label-positions", dict(encoding="initial")),
        ("multihash-labeled", dict(encoding="multihash")),
    ]
    for name, options in schemes:
        marked, _ = watermark_stream(stream, "1", DEFAULT_KEY,
                                     params=params, **options)
        attacked, attack_report = correlation_attack(marked.copy(),
                                                     **attack)
        clean = detect_watermark(marked, 1, DEFAULT_KEY, params=params,
                                 **options)
        broken = detect_watermark(attacked, 1, DEFAULT_KEY, params=params,
                                  **options)
        result.add(scheme=name, clean_bias=clean.bias(0),
                   attacked_bias=broken.bias(0),
                   flags=attack_report.positions_found)
    return result


def test_ablation_summarization(benchmark):
    result = run_once(benchmark, _ablation_summarization, bench_scale())
    report(result)
    rows = {row["encoding"]: row for row in result.rows}
    assert rows["multihash"]["summarized_bias"] >= \
        max(2, rows["quadres"]["summarized_bias"])
    assert rows["multihash"]["summarized_bias"] >= \
        rows["multihash"]["clean_bias"] * 0.3


def test_ablation_labeling(benchmark):
    result = run_once(benchmark, _ablation_labeling, bench_scale())
    report(result)
    rows = {row["scheme"]: row for row in result.rows}
    vulnerable = rows["initial-value-positions"]
    labeled = rows["multihash-labeled"]
    assert vulnerable["attacked_bias"] <= vulnerable["clean_bias"] * 0.6
    assert labeled["attacked_bias"] >= labeled["clean_bias"] * 0.7
