"""Bench: Figure 9 — watermark bias vs summarization / sampling degree."""

from __future__ import annotations

from _util import column_is_decreasing, report, run_once

from repro.experiments.config import bench_scale
from repro.experiments.fig09_wm_transforms import run_fig9a, run_fig9b


def test_fig9a_summarization(benchmark):
    result = run_once(benchmark, run_fig9a, bench_scale())
    report(result)
    biases = result.column("bias")
    assert column_is_decreasing(biases, tolerance=4.0)
    # Low degrees (within the guaranteed resilience) must be decisive.
    assert biases[0] >= 10
    assert result.rows[0]["confidence"] > 0.999


def test_fig9b_sampling(benchmark):
    result = run_once(benchmark, run_fig9b, bench_scale())
    report(result)
    biases = result.column("bias")
    assert column_is_decreasing(biases, tolerance=6.0)
    assert biases[0] >= 10
    # Every in-range degree keeps a positive bias (paper: 10..28).
    assert all(b > 0 for b in biases[:5])
