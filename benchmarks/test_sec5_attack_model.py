"""Bench: Sec-5 attack model — theory vs implementation."""

from __future__ import annotations

from _util import report, run_once

from repro.experiments.config import bench_scale
from repro.experiments.sec5_attack_model import run_sec5_attack_model


def test_sec5_attack_model(benchmark):
    result = run_once(benchmark, run_sec5_attack_model, bench_scale())
    report(result)
    for row in result.rows:
        # Theory is a floor (it ignores weakened-but-surviving votes and
        # the robust references); allow modest statistical slack below.
        assert row["measured_survival"] >= row["predicted_survival"] - 0.35
        # The attack must not be free either: survival is a fraction.
        assert row["measured_survival"] <= 1.15
    # Heavier attacks (smaller a1 / larger a2) hurt at least as much.
    by_config = {(row["a1"], row["a2"]): row["measured_survival"]
                 for row in result.rows}
    if (5, 0.5) in by_config and (2, 1.0) in by_config:
        assert by_config[(2, 1.0)] <= by_config[(5, 0.5)] + 0.1
