"""Bench: Figure 11 — search cost growth and data-quality impact."""

from __future__ import annotations

import math

import pytest
from _util import column_is_decreasing, report, run_once

from repro.experiments.config import bench_scale
from repro.experiments.fig11_overhead_quality import run_fig11a, run_fig11b


@pytest.mark.slow  # exhaustive-search sweep, multi-second
def test_fig11a_search_cost(benchmark):
    result = run_once(benchmark, run_fig11a, bench_scale())
    report(result)
    expected = result.column("expected_random")
    # The paper's exponential: each resilience step multiplies the cost.
    growth = [b / a for a, b in zip(expected, expected[1:])]
    assert all(g >= 2.0 for g in growth)
    assert math.log10(expected[-1]) - math.log10(expected[0]) >= 4.0
    # The pruned search (future-work algorithm) stays orders of
    # magnitude below the exhaustive expectation at high resilience.
    pruned = result.column("measured_pruned")
    assert pruned[-1] > 0  # it succeeded where random search cannot
    assert pruned[-1] < expected[-1] / 100.0
    # Measured random cost tracks its expectation where we measured it.
    for row in result.rows:
        measured = row["measured_random"]
        if measured > 0 and row["resilience_g"] <= 3:
            assert measured < row["expected_random"] * 30


def test_fig11b_quality_impact(benchmark):
    result = run_once(benchmark, run_fig11b, bench_scale())
    report(result)
    mean_drift = result.column("mean_drift_pct")
    std_drift = result.column("std_drift_pct")
    altered = result.column("altered_items")
    # Paper bounds: < 0.21% mean drift, < 0.27% std drift.
    assert max(mean_drift) < 0.21
    assert max(std_drift) < 0.27
    # Larger phi selects fewer extremes => fewer altered items.
    assert column_is_decreasing(altered, tolerance=10)
