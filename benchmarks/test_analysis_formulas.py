"""Bench: Sec 5 worked examples — closed forms vs the paper's numbers."""

from __future__ import annotations

import math

from _util import report, run_once

from repro.experiments.analysis_tables import run_analysis_table
from repro.experiments.config import bench_scale


def test_sec5_worked_examples(benchmark):
    result = run_once(benchmark, run_analysis_table, bench_scale())
    report(result)
    for row in result.rows:
        paper = row["paper_value"]
        computed = row["computed"]
        # Within 15% of the paper's (rounded) figures, on a log scale for
        # the tiny probabilities.
        if paper < 1e-3:
            assert math.isclose(math.log10(computed), math.log10(paper),
                                rel_tol=0.15), row["quantity"]
        else:
            assert math.isclose(computed, paper, rel_tol=0.15), \
                row["quantity"]
