"""Bench: Sec 6.4 — per-item cost of each encoding.

Besides the human-readable table, this bench emits the machine-readable
``benchmarks/results/BENCH_throughput.json`` (µs/item and speedup over
the seed revision's recorded figures) so the performance trajectory is
tracked from PR 2 on, and asserts the vectorized scan keeps the initial
encoding at least 5x faster than the seed.
"""

from __future__ import annotations

import json

from _util import RESULTS_DIR, report, run_once

from repro.experiments.config import bench_scale
from repro.experiments.throughput import (
    SEED_US_PER_ITEM,
    machine_calibration,
    run_throughput,
    throughput_json,
)


def test_throughput_overheads(benchmark):
    scale = bench_scale()
    result = run_once(benchmark, run_throughput, scale)
    report(result)

    payload = throughput_json(result, scale)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    with open(RESULTS_DIR / "BENCH_throughput.json", "w") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")

    rows = {row["configuration"]: row for row in result.rows}
    baseline = rows["read-and-copy"]["seconds"]
    assert baseline > 0
    # Ordering the paper reports: initial encoding is the cheapest
    # watermarking configuration; exhaustive multi-hash the dearest.
    initial = rows["initial"]["seconds"]
    random_g2 = rows["multihash-random-g2"]["seconds"]
    assert initial <= random_g2
    # The pruned search beats the random search at equal resilience.
    if "multihash-random-g3" in rows:
        assert rows["multihash-pruned-g3"]["seconds"] <= \
            rows["multihash-random-g3"]["seconds"]
    # The vectorized scan hot path: initial encoding at least 5x faster
    # (µs/item) than the seed revision's recorded figure.  The recorded
    # figures are absolute wall-clock numbers from one machine, so the
    # threshold is rescaled by how much slower this machine runs the
    # seed's own baseline loop (never tightened on faster machines).
    # Guarded to full-scale runs; tiny streams amortize fixed costs
    # differently.
    if scale >= 1.0:
        slowdown = max(
            machine_calibration() / SEED_US_PER_ITEM["read-and-copy"], 1.0)
        assert rows["initial"]["us_per_item"] \
            <= slowdown * SEED_US_PER_ITEM["initial"] / 5.0
