"""Bench: Sec 6.4 — per-item overhead of each encoding."""

from __future__ import annotations

from _util import report, run_once

from repro.experiments.config import bench_scale
from repro.experiments.throughput import run_throughput


def test_throughput_overheads(benchmark):
    result = run_once(benchmark, run_throughput, bench_scale())
    report(result)
    rows = {row["configuration"]: row for row in result.rows}
    baseline = rows["read-and-copy"]["seconds"]
    assert baseline > 0
    # Ordering the paper reports: initial encoding is the cheapest
    # watermarking configuration; exhaustive multi-hash the dearest.
    initial = rows["initial"]["seconds"]
    random_g2 = rows["multihash-random-g2"]["seconds"]
    assert initial <= random_g2
    # The pruned search beats the random search at equal resilience.
    if "multihash-random-g3" in rows:
        assert rows["multihash-pruned-g3"]["seconds"] <= \
            rows["multihash-random-g3"]["seconds"]
