"""Bench: Sec 6.4 — per-item cost of each encoding, plus the hub soak.

Besides the human-readable table, this bench emits the machine-readable
``benchmarks/results/BENCH_throughput.json`` (µs/item and speedup over
the seed revision's recorded figures, and the 1,000-stream hub soak's
µs/item next to the single-session figure) so the performance
trajectory is tracked from PR 2 on.  It asserts the vectorized scan
keeps the initial encoding at least 5x faster than the seed, and that
multiplexing 1,000 concurrent streams through a
:class:`repro.StreamHub` costs at most 1.5x the per-item price of one
dedicated session.
"""

from __future__ import annotations

import json

import numpy as np
from _util import RESULTS_DIR, report, run_once

from repro.experiments.config import bench_scale
from repro.experiments.datasets import reference_synthetic
from repro.experiments.throughput import (
    SEED_US_PER_ITEM,
    _embed_time,
    machine_calibration,
    run_chaos_soak,
    run_hub_soak,
    run_loadgen_churn,
    run_metrics_overhead,
    run_remote_loopback,
    run_throughput,
    throughput_json,
)


def test_throughput_overheads(benchmark):
    scale = bench_scale()
    result = run_once(benchmark, run_throughput, scale)
    report(result)

    # Hub soak: 1,000 concurrent small-chunk streams at full scale
    # (proportionally fewer when the harness shrinks the workload).
    soak = run_hub_soak(n_streams=max(100, int(1000 * min(scale, 1.0))))
    print(f"\nhub soak: {soak['n_streams']} streams x "
          f"{soak['batches_per_stream']} x {soak['chunk']}-item chunks: "
          f"hub {soak['hub_us_per_item']} us/item vs single "
          f"{soak['single_session_us_per_item']} us/item "
          f"(ratio {soak['hub_overhead_ratio']})")

    # Remote loopback: the same pushes through a `repro serve`
    # subprocess on 127.0.0.1, pricing each (transport, wire) serving
    # configuration — framing, payload codec, loopback round trips,
    # credits — against the in-process hub, in CPU seconds.
    loopback = run_remote_loopback(
        n_items=max(50000, int(200000 * min(scale, 1.0))))
    print(f"remote loopback: {loopback['items']} items x "
          f"{loopback['chunk']}-item chunks vs in-process "
          f"{loopback['inprocess_hub_us_per_item']} us/item:")
    for name, scenario in loopback["scenarios"].items():
        print(f"  {name}: {scenario['us_per_item']} us/item "
              f"(ratio {scenario['overhead_ratio']}), "
              f"{scenario['bytes_on_wire']} bytes on wire in "
              f"{scenario['frames_sent']}+{scenario['frames_received']} "
              f"frames")

    # Observability pricing: an enabled registry must stay within 5% of
    # the null-instrument push path ("near-zero cost when disabled" has
    # a measured enabled-side twin).  The margin is thin enough that a
    # descheduled sample can breach it, so the guard re-measures
    # (min-of-runs, the standard noise-floor estimator) before failing.
    overhead = run_metrics_overhead(
        n_items=max(30000, int(120000 * min(scale, 1.0))))
    for _ in range(3):
        if overhead["overhead_ratio"] <= 1.05:
            break
        retry = run_metrics_overhead(
            n_items=max(30000, int(120000 * min(scale, 1.0))))
        if retry["overhead_ratio"] < overhead["overhead_ratio"]:
            overhead = retry
    print(f"metrics overhead: enabled {overhead['enabled_us_per_item']} "
          f"us/item vs disabled {overhead['disabled_us_per_item']} "
          f"us/item (ratio {overhead['overhead_ratio']})")

    # Churn harness: concurrent clients crash and resume mid-stream;
    # the p50/p99 feed latency is the fleet-facing health figure.
    churn = run_loadgen_churn()
    print(f"loadgen churn: {churn['workers']} workers, "
          f"{churn['crashes']} crashes/{churn['resumes']} resumes, "
          f"push p50 {churn['push_ms']['p50']} ms / p99 "
          f"{churn['push_ms']['p99']} ms, {churn['items_per_s']} items/s")

    # Chaos soak: the same fleet through a chaotic client transport at
    # a supervised server running a seeded fault plan (resets, torn
    # checkpoint writes, forced crashes).  The robustness gate: every
    # crash is restarted, every stream resumes, and the outputs stay
    # bit-identical to a fault-free embed.
    chaos_soak = run_chaos_soak()
    print(f"chaos soak (seed {chaos_soak['seed']}): "
          f"{chaos_soak['server_crashes']} server crashes / "
          f"{chaos_soak['supervisor_restarts']} restarts, "
          f"{chaos_soak['fault_events']} server-side faults, "
          f"{chaos_soak['reconnects']} reconnects, "
          f"verify_failures={chaos_soak['verify_failures']}")

    payload = throughput_json(result, scale, hub_soak=soak,
                              remote_loopback=loopback,
                              metrics_overhead=overhead,
                              loadgen_churn=churn,
                              chaos_soak=chaos_soak)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    with open(RESULTS_DIR / "BENCH_throughput.json", "w") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")

    # Enabled metrics stay within 5% µs/item on the initial encoding
    # push path, and churn must not bend exactly-once delivery.
    assert overhead["overhead_ratio"] <= 1.05
    assert churn["verify_failures"] == 0
    assert not churn["worker_errors"]
    assert churn["push_ms"]["count"] > 0
    assert churn["push_ms"]["p50"] is not None
    assert churn["push_ms"]["p99"] is not None

    # Chaos contract: zero stream loss, bit-identical outputs, the
    # seeded plan forced at least 3 crash/restart cycles (so the soak
    # actually exercised recovery), faults really fired, and SIGTERM
    # still drains cleanly through the supervisor.
    assert chaos_soak["verify_failures"] == 0
    assert not chaos_soak["worker_errors"]
    assert chaos_soak["supervisor_restarts"] >= 3
    assert chaos_soak["server_crashes"] >= 3
    assert chaos_soak["fault_events"] > 0
    assert chaos_soak["supervisor_returncode"] == 0

    # Multiplexing must stay within a small factor of a dedicated
    # session regardless of machine speed (both sides measured here).
    assert soak["hub_overhead_ratio"] <= 1.5
    # The serving layer is a per-item cost, not a per-stream stall:
    # the binary-codec TCP path measures ~1.05-1.10x the in-process hub
    # in CPU terms; the ceiling guards against per-item-Python
    # regressions in the frame path while tolerating codec-level churn.
    assert loopback["remote_overhead_ratio"] <= 2.0

    rows = {row["configuration"]: row for row in result.rows}
    baseline = rows["read-and-copy"]["seconds"]
    assert baseline > 0
    # Ordering the paper reports: initial encoding is the cheapest
    # watermarking configuration; exhaustive multi-hash the dearest.
    initial = rows["initial"]["seconds"]
    random_g2 = rows["multihash-random-g2"]["seconds"]
    assert initial <= random_g2
    # The pruned search beats the random search at equal resilience.
    if "multihash-random-g3" in rows:
        assert rows["multihash-pruned-g3"]["seconds"] <= \
            rows["multihash-random-g3"]["seconds"]
    # The vectorized scan hot path: initial encoding at least 5x faster
    # (µs/item) than the seed revision's recorded figure.  The recorded
    # figures are absolute numbers from one (idle) machine, so the
    # threshold is rescaled by how much slower this machine runs the
    # seed's own baseline loop (never tightened on faster machines).
    # The floor sits ~7% under the limit, so a cache-thrashing
    # co-tenant can push a single sample over it even in CPU time; the
    # guard re-samples the (cheap) measurement and keeps the minimum —
    # the standard noise-floor estimator — before declaring a
    # regression.  Guarded to full-scale runs; tiny streams amortize
    # fixed costs differently.
    if scale >= 1.0:
        slowdown = max(
            machine_calibration() / SEED_US_PER_ITEM["read-and-copy"], 1.0)
        limit = slowdown * SEED_US_PER_ITEM["initial"] / 5.0
        stream = np.asarray(reference_synthetic(6000))
        initial_us = rows["initial"]["us_per_item"]
        for _ in range(10):
            if initial_us <= limit:
                break
            initial_us = min(initial_us,
                             1e6 * _embed_time(stream, "initial")
                             / len(stream))
        assert initial_us <= limit
