"""Bench: Figure 8 — label resilience under sampling / summarization."""

from __future__ import annotations

from _util import column_is_increasing, report, run_once

from repro.experiments.config import bench_scale
from repro.experiments.fig08_labels_transforms import run_fig8a, run_fig8b


def test_fig8a_label_size_fragility(benchmark):
    result = run_once(benchmark, run_fig8a, bench_scale())
    report(result)
    alterations = result.column("labels_altered_pct")
    # Larger labels are more fragile under sampling.
    assert column_is_increasing(alterations, tolerance=5.0)
    assert alterations[-1] >= alterations[0]


def test_fig8b_summarization_degradation(benchmark):
    result = run_once(benchmark, run_fig8b, bench_scale())
    report(result)
    alterations = result.column("labels_altered_pct")
    assert column_is_increasing(alterations, tolerance=8.0)
    # Paper: even deep summarization preserves a usable share of labels.
    assert alterations[-1] < 100.0
