"""Bench: Figure 6 — label alteration under ε-attacks."""

from __future__ import annotations

from _util import column_is_increasing, report, run_once

from repro.experiments.config import bench_scale
from repro.experiments.fig06_labels_epsilon import run_fig6a, run_fig6b


def test_fig6a_label_sizes(benchmark):
    result = run_once(benchmark, run_fig6a, bench_scale())
    report(result)
    small = [row["labels_altered_pct"] for row in result.rows
             if row["label_size"] == 10]
    large = [row["labels_altered_pct"] for row in result.rows
             if row["label_size"] == 25]
    # Paper shape 1: alteration grows with epsilon.
    assert column_is_increasing(small, tolerance=5.0)
    assert column_is_increasing(large, tolerance=5.0)
    # Paper shape 2: the smaller label size survives better on average.
    assert sum(small) / len(small) <= sum(large) / len(large) + 1.0


def test_fig6b_altered_fractions(benchmark):
    result = run_once(benchmark, run_fig6b, bench_scale())
    report(result)
    one_pct = [row["labels_altered_pct"] for row in result.rows
               if row["tau_pct"] == 1.0]
    two_pct = [row["labels_altered_pct"] for row in result.rows
               if row["tau_pct"] == 2.0]
    assert column_is_increasing(one_pct, tolerance=5.0)
    # More data altered => more labels corrupted (on average).
    assert sum(two_pct) / len(two_pct) >= sum(one_pct) / len(one_pct) - 1.0
