"""Setuptools shim.

Metadata lives in pyproject.toml; this file exists so that editable
installs (``pip install -e .``) work in offline environments without the
``wheel`` package (pip falls back to the legacy ``setup.py develop``
path when no ``[build-system]`` table is declared).
"""

from setuptools import setup

setup()
