"""Tests for the Sec-5 confidence mathematics — paper examples included."""

from __future__ import annotations

import math

import pytest

from repro.core.confidence import (
    confidence_from_bias,
    exact_bias_fp,
    fp_probability,
    fp_probability_degraded,
    min_segment_items,
    per_extreme_fp,
    seconds_to_confidence,
)
from repro.errors import ParameterError


class TestPerExtremeFp:
    def test_paper_full_set(self):
        # omega=1, a=5: 2^-15 per extreme (Sec 4.3's 32,000 computations).
        assert per_extreme_fp(5, 1) == pytest.approx(2.0 ** -15)

    def test_active_set_override(self):
        assert per_extreme_fp(5, 1, n_constrained=6) == pytest.approx(2.0 ** -6)

    def test_validation(self):
        with pytest.raises(ParameterError):
            per_extreme_fp(0)
        with pytest.raises(ParameterError):
            per_extreme_fp(5, omega=0)


class TestFpProbability:
    def test_paper_example_is_negligible(self):
        """Sec 5's example: omega=1, a=5, rate=100 Hz, eta=50, t=2 s.

        The paper writes "phi = 20%" — reading the selection *fraction*
        rather than the modulus — which yields 20 carrier extremes in 2 s
        and Pfp = (2^-15)^20 ~ 0.  With the modulus reading (phi=1, every
        major extreme carries) the 2 seconds hold 4 carriers and Pfp =
        (2^-15)^4 = 2^-60: equally negligible in court.
        """
        fp = fp_probability(2.0, 100.0, 50.0, 1, 5, omega=1)
        assert fp == pytest.approx(2.0 ** -60)
        assert fp < 1e-17

    def test_degraded_paper_example(self):
        """Sec 5's limit case: 'roughly one in a million'.

        With only one surviving m_ij per extreme, each carrier is a fair
        coin under the null and Pfp = 2^-(carriers).  Twenty carriers
        (the paper's 2-second example) give ~1e-6.
        """
        fp = fp_probability_degraded(2.0, 100.0, 10.0, 1)
        assert fp == pytest.approx(2.0 ** -20)
        assert fp == pytest.approx(1e-6, rel=0.1)

    def test_monotone_in_time(self):
        fps = [fp_probability(t, 100.0, 50.0, 5, 5) for t in (1, 2, 4)]
        assert fps[0] > fps[1] > fps[2] >= 0

    def test_validation(self):
        with pytest.raises(ParameterError):
            fp_probability(0.0, 100.0, 50.0, 5, 5)
        with pytest.raises(ParameterError):
            fp_probability(1.0, -1.0, 50.0, 5, 5)


class TestBiasConfidence:
    def test_footnote5_rule(self):
        # "a detected watermark bias of 10 yields a false-positive
        #  probability of 1/2^10 ... confidence of roughly 99.9%".
        assert confidence_from_bias(10) == pytest.approx(1 - 2.0 ** -10)

    def test_nonpositive_bias_no_confidence(self):
        assert confidence_from_bias(0) == 0.0
        assert confidence_from_bias(-5) == 0.0

    def test_exact_tail_matches_enumeration(self):
        # n=6 fair-coin votes, bias >= 2 <=> at least 4 true votes.
        expected = sum(math.comb(6, k) for k in (4, 5, 6)) / 64
        assert exact_bias_fp(6, 2) == pytest.approx(expected)

    def test_exact_tail_edge_cases(self):
        assert exact_bias_fp(10, 0) == 1.0
        assert exact_bias_fp(10, 11) == 0.0
        assert exact_bias_fp(0, 1) == 0.0

    def test_rule_of_thumb_exact_for_unanimous_votes(self):
        """The 2^-bias rule is exact when every vote is consistent.

        Footnote 5's scenario: bias B from exactly B votes means all B
        extremes testified the same way — probability 2^-B under the
        null.  With extra (split) votes the exact tail is larger, which
        is why the library exposes both forms.
        """
        for n in (5, 10, 20):
            assert exact_bias_fp(n, n) == pytest.approx(2.0 ** -n)
        assert exact_bias_fp(20, 10) > 2.0 ** -10

    def test_validation(self):
        with pytest.raises(ParameterError):
            exact_bias_fp(-1, 1)


class TestSegmentAndTime:
    def test_min_segment(self):
        # Sec 5: eta(sigma, delta) * % items.
        assert min_segment_items(100.0, 2) == 200.0

    def test_seconds_to_confidence_inverts_fp(self):
        seconds = seconds_to_confidence(0.999, 100.0, 50.0, 5, 5)
        fp = fp_probability(seconds, 100.0, 50.0, 5, 5)
        assert fp == pytest.approx(0.001, rel=0.05)

    def test_validation(self):
        with pytest.raises(ParameterError):
            min_segment_items(0.0, 2)
        with pytest.raises(ParameterError):
            seconds_to_confidence(1.5, 100.0, 50.0, 5, 5)
