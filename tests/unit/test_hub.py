"""StreamHub unit tests: routing, tenancy, cadence, eviction, recovery.

The invariant every test circles back to: a stream multiplexed through
the hub — interleaved with other tenants, checkpointed, evicted,
restored, even recovered into a different hub after a crash — produces
the **bit-identical** output a dedicated single session produces.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import (
    DetectionSession,
    HubError,
    ParameterError,
    ProtectionSession,
    SessionStateError,
    StreamHub,
    WatermarkParams,
    detect_watermark,
    watermark_stream,
)
from repro.core.quality import QualityMonitor
from repro.stores import DirectoryCheckpointStore, MemoryCheckpointStore
from repro.streams import TemperatureSensorGenerator

PARAMS = WatermarkParams(phi=5)
CHUNK = 400
N_ITEMS = 2800


def fleet_streams(n: int) -> "dict[str, np.ndarray]":
    return {f"sensor-{i}": TemperatureSensorGenerator(
        eta=60, seed=50 + i).generate(N_ITEMS) for i in range(n)}


def key_of(stream_id: str) -> bytes:
    return f"key-{stream_id}".encode()


def interleaved(streams) -> "list[tuple[str, np.ndarray]]":
    """Round-robin batches: the canonical multiplexed arrival order."""
    return [(sid, streams[sid][start:start + CHUNK])
            for start in range(0, N_ITEMS, CHUNK)
            for sid in streams]


def drive(hub, streams) -> "dict[str, np.ndarray]":
    outs = {sid: [] for sid in streams}
    for sid, out in hub.push_many(interleaved(streams)):
        outs[sid].append(out)
    for sid, tail in hub.finish_all().items():
        outs[sid].append(tail)
    return {sid: np.concatenate(pieces) for sid, pieces in outs.items()}


class TestRouting:
    def test_interleaved_pushes_match_single_sessions(self):
        streams = fleet_streams(3)
        hub = StreamHub()
        for sid in streams:
            hub.protect(sid, "10", key_of(sid), params=PARAMS)
        outputs = drive(hub, streams)
        for sid, values in streams.items():
            expected, _ = watermark_stream(values, "10", key_of(sid),
                                           params=PARAMS)
            assert np.array_equal(outputs[sid], expected), sid

    def test_tenants_are_key_isolated(self):
        """Same data, different tenant keys: different watermarks."""
        values = TemperatureSensorGenerator(eta=60, seed=9).generate(N_ITEMS)
        streams = {"a": values, "b": values.copy()}
        hub = StreamHub()
        for sid in streams:
            hub.protect(sid, "10", key_of(sid), params=PARAMS)
        outputs = drive(hub, streams)
        assert not np.array_equal(outputs["a"], outputs["b"])

    def test_detection_streams_vote_like_standalone(self):
        values = TemperatureSensorGenerator(eta=60, seed=3).generate(N_ITEMS)
        marked, _ = watermark_stream(values, "10", b"det-key",
                                     params=PARAMS)
        offline = detect_watermark(marked, 2, b"det-key", params=PARAMS)
        hub = StreamHub()
        hub.detect("suspect", 2, b"det-key", params=PARAMS)
        for start in range(0, N_ITEMS, CHUNK):
            hub.push("suspect", marked[start:start + CHUNK])
        hub.finish("suspect")
        result = hub.result("suspect")
        for bit in range(2):
            assert result.votes(bit) == offline.votes(bit)
            assert result.bias(bit) == offline.bias(bit)

    def test_unknown_stream_id_suggests_neighbour(self):
        hub = StreamHub()
        hub.protect("sensor-17", "1", b"k", params=PARAMS)
        with pytest.raises(HubError, match="sensor-17"):
            hub.push("sensor-l7", [0.0])

    def test_unknown_stream_id_empty_hub(self):
        with pytest.raises(HubError, match="no streams"):
            StreamHub().push("anything", [0.0])

    def test_duplicate_stream_id_rejected(self):
        hub = StreamHub()
        hub.protect("dup", "1", b"k", params=PARAMS)
        with pytest.raises(HubError, match="already registered"):
            hub.detect("dup", 1, b"k", params=PARAMS)

    def test_bad_stream_id_rejected(self):
        with pytest.raises(HubError, match="non-empty string"):
            StreamHub().protect("", "1", b"k", params=PARAMS)

    def test_push_after_finish_rejected(self):
        hub = StreamHub()
        hub.protect("s", "1", b"k", params=PARAMS)
        hub.finish("s")
        with pytest.raises(ParameterError, match="finished"):
            hub.push("s", [0.0])

    def test_result_on_protection_stream_rejected(self):
        hub = StreamHub()
        hub.protect("s", "1", b"k", params=PARAMS)
        with pytest.raises(HubError, match="detection"):
            hub.result("s")

    def test_report_on_detection_stream_rejected(self):
        hub = StreamHub()
        hub.detect("s", 1, b"k", params=PARAMS)
        with pytest.raises(HubError, match="protection"):
            hub.report("s")

    def test_membership_and_len(self):
        hub = StreamHub()
        hub.protect("s", "1", b"k", params=PARAMS)
        assert "s" in hub and "t" not in hub
        assert len(hub) == 1
        assert hub.stream_ids == ("s",)


class TestCheckpointCadence:
    def test_cadence_writes_every_nth_push(self):
        store = MemoryCheckpointStore()
        hub = StreamHub(store=store, checkpoint_every=3)
        hub.protect("s", "1", b"k", params=PARAMS)
        values = TemperatureSensorGenerator(eta=60, seed=1).generate(2400)
        for start in range(0, 2400, CHUNK):  # 6 pushes -> 2 checkpoints
            hub.push("s", values[start:start + CHUNK])
        assert store.entry("s")["sequence"] == 2
        assert hub.stats("s")["checkpoints"] == 2

    def test_finish_writes_final_checkpoint(self):
        store = MemoryCheckpointStore()
        hub = StreamHub(store=store, checkpoint_every=5)
        hub.protect("s", "1", b"k", params=PARAMS)
        hub.push("s", np.zeros(10))
        hub.finish("s")
        assert store.load("s")["finished"] is True

    def test_explicit_checkpoint_returns_sequence(self):
        hub = StreamHub()
        hub.protect("s", "1", b"k", params=PARAMS)
        assert hub.checkpoint("s") == 1
        assert hub.checkpoint("s") == 2
        assert hub.checkpoint_all() == {"s": 3}

    def test_no_cadence_means_no_automatic_writes(self):
        store = MemoryCheckpointStore()
        hub = StreamHub(store=store)
        hub.protect("s", "1", b"k", params=PARAMS)
        hub.push("s", np.zeros(10))
        hub.finish("s")
        assert "s" not in store

    def test_monitor_sessions_fail_checkpoint_loudly(self):
        hub = StreamHub(checkpoint_every=1)
        hub._adopt("s", ProtectionSession("1", b"k", params=PARAMS,
                                          monitor=QualityMonitor()), b"k")
        with pytest.raises(SessionStateError, match="QualityMonitor"):
            hub.push("s", np.zeros(8))

    def test_invalid_construction_rejected(self):
        with pytest.raises(ParameterError, match="checkpoint_every"):
            StreamHub(checkpoint_every=-1)
        with pytest.raises(ParameterError, match="max_live_sessions"):
            StreamHub(max_live_sessions=0)
        with pytest.raises(ParameterError, match="CheckpointStore"):
            StreamHub(store={})


class TestLruEviction:
    def test_eviction_keeps_outputs_bit_identical(self):
        streams = fleet_streams(5)
        hub = StreamHub(max_live_sessions=2)
        for sid in streams:
            hub.protect(sid, "10", key_of(sid), params=PARAMS)
        outputs = drive(hub, streams)
        stats = hub.stats()
        assert sum(s["evictions"] for s in stats.values()) > 0
        assert sum(s["restores"] for s in stats.values()) > 0
        for sid, values in streams.items():
            expected, _ = watermark_stream(values, "10", key_of(sid),
                                           params=PARAMS)
            assert np.array_equal(outputs[sid], expected), sid

    def test_live_count_stays_bounded(self):
        streams = fleet_streams(6)
        hub = StreamHub(max_live_sessions=3)
        for sid in streams:
            hub.protect(sid, "1", key_of(sid), params=PARAMS)
            assert len(hub._sessions) <= 3
        for sid, chunk in interleaved(streams)[:12]:
            hub.push(sid, chunk)
            assert len(hub._sessions) <= 3
        live_flags = [s["live"] for s in hub.stats().values()]
        assert sum(live_flags) == 3

    def test_lru_victim_is_least_recently_pushed(self):
        hub = StreamHub(max_live_sessions=2)
        for sid in ("a", "b", "c"):
            hub.protect(sid, "1", b"k", params=PARAMS)
        # registration order a, b, c -> a evicted first
        assert hub.stats("a")["live"] is False
        hub.push("b", np.zeros(4))   # LRU order now: c, b
        hub.push("a", np.zeros(4))   # restores a, evicts c
        assert hub.stats("c")["live"] is False
        assert hub.stats("a")["live"] is True


class TestRecovery:
    def test_recover_empty_store_yields_empty_hub(self):
        hub = StreamHub.recover(MemoryCheckpointStore(), {})
        assert len(hub) == 0

    def test_recover_missing_key_is_clean_error(self):
        store = MemoryCheckpointStore()
        hub = StreamHub(store=store, checkpoint_every=1)
        hub.protect("s", "1", b"k", params=PARAMS)
        hub.push("s", np.zeros(32))
        with pytest.raises(HubError, match="no key"):
            StreamHub.recover(store, {})

    def test_recover_restores_mixed_session_kinds(self, tmp_path):
        values = TemperatureSensorGenerator(eta=60, seed=2).generate(1600)
        store = DirectoryCheckpointStore(tmp_path)
        hub = StreamHub(store=store, checkpoint_every=1)
        hub.protect("embedder", "1", b"pk", params=PARAMS)
        hub.detect("court", 1, b"dk", params=PARAMS)
        hub.push("embedder", values[:800])
        hub.push("court", values[:800])
        recovered = StreamHub.recover(store,
                                      {"embedder": b"pk", "court": b"dk"})
        assert recovered.stats("embedder")["kind"] == "protection"
        assert recovered.stats("court")["kind"] == "detection"
        assert recovered.stats("embedder")["items_in"] == 800

    def test_bounded_recovery_adopts_overflow_cold(self, tmp_path):
        """Recovery under a residency cap must not thrash: streams
        beyond the cap are registered from envelope facts alone, with
        no redundant store writes, and restore lazily on first push."""
        streams = fleet_streams(4)
        store = DirectoryCheckpointStore(tmp_path)
        hub = StreamHub(store=store, checkpoint_every=1)
        for sid in streams:
            hub.protect(sid, "10", key_of(sid), params=PARAMS)
        half = N_ITEMS // 2
        outputs = {sid: [hub.push(sid, streams[sid][:half])]
                   for sid in streams}
        sequences = {sid: store.entry(sid)["sequence"] for sid in streams}
        del hub

        recovered = StreamHub.recover(store, key_of, checkpoint_every=1,
                                      max_live_sessions=2)
        # no eager restore-then-evict writes
        assert {sid: store.entry(sid)["sequence"]
                for sid in streams} == sequences
        stats = recovered.stats()
        assert sum(row["live"] for row in stats.values()) == 2
        assert all(row["items_in"] == half for row in stats.values())
        # cold streams still finish the run bit-identically
        for sid in streams:
            outputs[sid].append(recovered.push(sid, streams[sid][half:]))
            outputs[sid].append(recovered.finish(sid))
            expected, _ = watermark_stream(streams[sid], "10",
                                           key_of(sid), params=PARAMS)
            assert np.array_equal(np.concatenate(outputs[sid]),
                                  expected), sid

    def test_recovered_finished_stream_stays_finished(self):
        store = MemoryCheckpointStore()
        hub = StreamHub(store=store, checkpoint_every=1)
        hub.protect("s", "1", b"k", params=PARAMS)
        hub.push("s", np.zeros(32))
        hub.finish("s")
        recovered = StreamHub.recover(store, {"s": b"k"})
        assert recovered.stats("s")["finished"] is True
        with pytest.raises(ParameterError, match="finished"):
            recovered.push("s", [0.0])

    def test_key_material_never_reaches_the_store(self, tmp_path):
        store = DirectoryCheckpointStore(tmp_path)
        hub = StreamHub(store=store, checkpoint_every=1,
                        max_live_sessions=1)
        secret = b"extremely-secret-hub-key"
        values = TemperatureSensorGenerator(eta=60, seed=4).generate(1200)
        hub.protect("s1", "1", secret, params=PARAMS)
        hub.protect("s2", "1", secret, params=PARAMS)
        hub.push("s1", values[:600])
        hub.push("s2", values[600:])
        hub.checkpoint_all()
        on_disk = "".join(p.read_text() for p in tmp_path.iterdir())
        assert secret.decode() not in on_disk

    def test_stats_json_compatible(self):
        hub = StreamHub()
        hub.protect("s", "1", b"k", params=PARAMS)
        hub.push("s", np.zeros(16))
        json.dumps(hub.stats())  # must not raise


class TestMidstreamReplay:
    def test_recover_then_replay_from_items_in_offset(self, tmp_path):
        """Cadence > 1: recovery rewinds to the last checkpoint and the
        caller replays from stats()["items_in"] — output still
        bit-identical to the uninterrupted run."""
        values = TemperatureSensorGenerator(eta=60, seed=8).generate(N_ITEMS)
        expected, _ = watermark_stream(values, "10", b"k", params=PARAMS)

        store = DirectoryCheckpointStore(tmp_path)
        hub = StreamHub(store=store, checkpoint_every=3)
        hub.protect("s", "10", b"k", params=PARAMS)
        pieces = []
        for start in range(0, 5 * CHUNK, CHUNK):  # 5 pushes, ckpt at 3
            pieces.append(hub.push("s", values[start:start + CHUNK]))
        del hub  # crash: pushes 4 and 5 were never made durable

        recovered = StreamHub.recover(store, {"s": b"k"})
        offset = recovered.stats("s")["items_in"]
        assert offset == 3 * CHUNK
        pieces = pieces[:3]  # downstream discards what followed the ckpt
        for start in range(offset, N_ITEMS, CHUNK):
            pieces.append(recovered.push("s", values[start:start + CHUNK]))
        pieces.append(recovered.finish("s"))
        assert np.array_equal(np.concatenate(pieces), expected)


class TestDropAndRestore:
    def test_drop_finished_stream_frees_hub_and_store(self, tmp_path):
        """drop() evicts a finished stream and deletes its checkpoint —
        the long-lived-server leak fix."""
        values = TemperatureSensorGenerator(eta=60, seed=71).generate(1200)
        store = DirectoryCheckpointStore(tmp_path)
        hub = StreamHub(store=store, checkpoint_every=1)
        hub.protect("done", "1", b"k", params=PARAMS)
        hub.push("done", values)
        hub.finish("done")
        assert "done" in hub and "done" in store
        hub.drop("done")
        assert "done" not in hub
        assert "done" not in store
        assert len(store) == 0

    def test_dropped_id_is_reusable(self):
        hub = StreamHub(checkpoint_every=1)
        hub.protect("recycled", "1", b"k", params=PARAMS)
        hub.finish("recycled")
        hub.drop("recycled")
        hub.protect("recycled", "1", b"k2", params=PARAMS)  # no duplicate
        assert "recycled" in hub

    def test_drop_unfinished_requires_force(self):
        hub = StreamHub(checkpoint_every=1)
        hub.protect("live", "1", b"k", params=PARAMS)
        hub.push("live", np.zeros(64))
        with pytest.raises(HubError, match="force"):
            hub.drop("live")
        hub.drop("live", force=True)
        assert "live" not in hub

    def test_drop_without_checkpoint_is_fine(self):
        """A finished stream that never checkpointed (cadence 0) drops
        cleanly without a store delete error."""
        hub = StreamHub()  # memory store, checkpoint_every=0
        hub.protect("no-ckpt", "1", b"k", params=PARAMS)
        hub.finish("no-ckpt")
        hub.drop("no-ckpt")
        assert len(hub) == 0

    def test_drop_unknown_stream_is_helpful(self):
        hub = StreamHub()
        with pytest.raises(HubError, match="unknown stream id"):
            hub.drop("ghost")

    def test_restore_adopts_one_stream_from_store(self, tmp_path):
        """restore() is per-stream recover: a hub started empty against
        an existing store re-admits streams lazily, bit-identically."""
        values = TemperatureSensorGenerator(eta=60, seed=72).generate(N_ITEMS)
        expected, _ = watermark_stream(values, "10", b"k", params=PARAMS)

        store = DirectoryCheckpointStore(tmp_path)
        hub = StreamHub(store=store, checkpoint_every=1)
        hub.protect("lazy", "10", b"k", params=PARAMS)
        pieces = [hub.push("lazy", values[:CHUNK])]
        del hub  # crash

        fresh = StreamHub(store=store, checkpoint_every=1)
        assert "lazy" not in fresh
        fresh.restore("lazy", b"k")
        assert "lazy" in fresh
        offset = fresh.offsets("lazy")["items_in"]
        assert offset == CHUNK
        for start in range(offset, N_ITEMS, CHUNK):
            pieces.append(fresh.push("lazy", values[start:start + CHUNK]))
        pieces.append(fresh.finish("lazy"))
        assert np.array_equal(np.concatenate(pieces), expected)

    def test_restore_without_checkpoint_is_an_error(self):
        hub = StreamHub()
        with pytest.raises(HubError, match="nothing to restore"):
            hub.restore("never-seen", b"k")

    def test_restore_duplicate_id_rejected(self, tmp_path):
        store = DirectoryCheckpointStore(tmp_path)
        hub = StreamHub(store=store, checkpoint_every=1)
        hub.protect("dup", "1", b"k", params=PARAMS)
        hub.push("dup", np.zeros(64))
        with pytest.raises(HubError, match="already registered"):
            hub.restore("dup", b"k")


class TestOffsets:
    def test_offsets_track_window_held_items(self):
        hub = StreamHub()
        hub.protect("s", "1", b"k", params=PARAMS)
        out = hub.push("s", np.zeros(600))
        offsets = hub.offsets("s")
        assert offsets["items_in"] == 600
        assert offsets["items_out"] == len(out)
        assert not offsets["finished"]
        tail = hub.finish("s")
        offsets = hub.offsets("s")
        assert offsets["items_out"] == len(out) + len(tail) == 600
        assert offsets["finished"]

    def test_offsets_exact_after_recover(self, tmp_path):
        """items_out must come from the session, not hub-lifetime stats
        (which restart at zero after recover)."""
        values = TemperatureSensorGenerator(eta=60, seed=73).generate(1600)
        store = DirectoryCheckpointStore(tmp_path)
        hub = StreamHub(store=store, checkpoint_every=1)
        hub.protect("s", "1", b"k", params=PARAMS)
        out = hub.push("s", values)
        before = hub.offsets("s")
        assert before["items_out"] == len(out)
        del hub

        recovered = StreamHub.recover(store, {"s": b"k"})
        assert recovered.stats("s")["items_out"] == 0  # hub-lifetime
        after = recovered.offsets("s")
        assert after == before  # session-authoritative


class TestStoreSummaryRaces:
    def test_entry_deleted_between_ids_and_entry_is_skipped(self, tmp_path):
        """TOCTOU on a live server: a row vanishing mid-summary is
        dropped, not an error."""
        from repro.hub import store_summary

        store = DirectoryCheckpointStore(tmp_path)
        hub = StreamHub(store=store, checkpoint_every=1)
        for sid in ("a", "b", "c"):
            hub.protect(sid, "1", b"k", params=PARAMS)
            hub.push(sid, np.zeros(64))

        class RacingStore:
            """Deletes 'b' the moment the summary first touches it."""

            def ids(self):
                return store.ids()

            def entry(self, stream_id):
                if stream_id == "b" and "b" in store:
                    store.delete(stream_id)
                return store.entry(stream_id)

            def __contains__(self, stream_id):
                return stream_id in store

        rows = store_summary(RacingStore())
        assert [row["stream_id"] for row in rows] == ["a", "c"]

    def test_present_but_corrupt_entry_still_raises(self, tmp_path):
        from repro.errors import CheckpointStoreError
        from repro.hub import store_summary

        store = DirectoryCheckpointStore(tmp_path)
        hub = StreamHub(store=store, checkpoint_every=1)
        hub.protect("ok", "1", b"k", params=PARAMS)
        hub.push("ok", np.zeros(64))
        (tmp_path / "corrupt.json").write_text("{not json")
        with pytest.raises(CheckpointStoreError):
            store_summary(store)


class TestStatsObservability:
    """The derived health fields ISSUE 9 adds to ``stats()``."""

    def test_checkpoint_lag_tracks_uncheckpointed_items(self):
        store = MemoryCheckpointStore()
        hub = StreamHub(store=store, checkpoint_every=2)
        hub.protect("s", "1", b"k", params=PARAMS)
        values = TemperatureSensorGenerator(eta=60, seed=7).generate(1200)
        hub.push("s", values[:CHUNK])
        assert hub.stats("s")["checkpoint_lag"] == CHUNK  # not yet written
        assert hub.stats("s")["last_checkpoint_ts"] is None
        hub.push("s", values[CHUNK:2 * CHUNK])  # cadence fires
        stats = hub.stats("s")
        assert stats["checkpoint_lag"] == 0
        assert stats["last_checkpoint_ts"] is not None
        hub.push("s", values[2 * CHUNK:])
        assert hub.stats("s")["checkpoint_lag"] == 1200 - 2 * CHUNK

    def test_no_store_means_lag_accumulates(self):
        hub = StreamHub()
        hub.protect("s", "1", b"k", params=PARAMS)
        hub.push("s", np.linspace(0.0, 10.0, 500))
        stats = hub.stats("s")
        assert stats["checkpoint_lag"] == 500
        assert stats["last_checkpoint_ts"] is None

    def test_rate_and_cost_fields(self):
        hub = StreamHub()
        hub.protect("s", "1", b"k", params=PARAMS)
        values = TemperatureSensorGenerator(eta=60, seed=8).generate(800)
        hub.push("s", values[:400])
        assert hub.stats("s")["items_per_s"] is None  # one push: no window
        hub.push("s", values[400:])
        stats = hub.stats("s")
        assert stats["us_per_item"] is not None and stats["us_per_item"] > 0
        assert stats["items_per_s"] is not None and stats["items_per_s"] > 0
        assert stats["busy_seconds"] >= 0.0
        json.dumps(stats)  # the whole row stays JSON-compatible
