"""Unit and property tests for the finite processing window."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import StreamError, WindowOverflowError
from repro.streams.window import SlidingWindow


class TestBasics:
    def test_capacity_validation(self):
        with pytest.raises(StreamError):
            SlidingWindow(1)

    def test_push_below_capacity_evicts_nothing(self):
        w = SlidingWindow(4)
        assert w.push(1.0) is None
        assert len(w) == 1

    def test_push_at_capacity_evicts_fifo(self):
        w = SlidingWindow(3)
        w.push_many([1.0, 2.0, 3.0])
        assert w.push(4.0) == 1.0
        assert list(w) == [2.0, 3.0, 4.0]

    def test_indices_track_stream_positions(self):
        w = SlidingWindow(3)
        w.push_many([1.0, 2.0, 3.0, 4.0, 5.0])
        assert w.start_index == 2
        assert w.end_index == 5

    def test_getitem_and_replace(self):
        w = SlidingWindow(4)
        w.push_many([1.0, 2.0, 3.0])
        w.replace(1, 9.0)
        assert w[1] == 9.0

    def test_replace_out_of_range(self):
        w = SlidingWindow(4)
        w.push(1.0)
        with pytest.raises(StreamError):
            w.replace(3, 0.0)

    def test_advance_returns_oldest(self):
        w = SlidingWindow(8)
        w.push_many([1.0, 2.0, 3.0, 4.0])
        assert w.advance(2) == [1.0, 2.0]
        assert w.start_index == 2

    def test_advance_negative_rejected(self):
        with pytest.raises(StreamError):
            SlidingWindow(4).advance(-1)

    def test_flush_drains_everything(self):
        w = SlidingWindow(8)
        w.push_many([1.0, 2.0])
        assert w.flush() == [1.0, 2.0]
        assert len(w) == 0

    def test_extend_no_evict_overflow(self):
        w = SlidingWindow(2)
        with pytest.raises(WindowOverflowError):
            w.extend_no_evict([1.0, 2.0, 3.0])

    def test_push_chunk_returns_evictions_in_order(self):
        w = SlidingWindow(3)
        assert w.push_chunk([1.0, 2.0]).tolist() == []
        assert w.push_chunk([3.0, 4.0, 5.0]).tolist() == [1.0, 2.0]
        assert list(w) == [3.0, 4.0, 5.0]

    def test_push_chunk_larger_than_capacity_passes_through(self):
        w = SlidingWindow(3)
        w.push_chunk([1.0, 2.0, 3.0])
        evicted = w.push_chunk([4.0, 5.0, 6.0, 7.0, 8.0])
        assert evicted.tolist() == [1.0, 2.0, 3.0, 4.0, 5.0]
        assert list(w) == [6.0, 7.0, 8.0]
        assert w.start_index == 5


class TestStateRoundTrip:
    def test_round_trip_preserves_contents(self):
        w = SlidingWindow(4)
        w.push_many([1.5, -0.25, 3.0, 4.0, 5.0])
        restored = SlidingWindow.from_state(w.to_state())
        assert restored.values().tolist() == w.values().tolist()
        assert restored.start_index == w.start_index
        assert restored.capacity == w.capacity

    def test_overfull_state_rejected(self):
        with pytest.raises(StreamError):
            SlidingWindow.from_state(
                {"capacity": 2, "start_index": 0,
                 "items": [1.0, 2.0, 3.0]})

    def test_negative_start_index_rejected(self):
        """A corrupt (negative) start_index would silently shift every
        absolute extreme index on resume; it must be refused."""
        with pytest.raises(StreamError):
            SlidingWindow.from_state(
                {"capacity": 4, "start_index": -3, "items": [1.0]})


class TestStreamInvariants:
    @given(st.lists(st.floats(-1, 1, allow_nan=False), min_size=0,
                    max_size=200),
           st.integers(2, 16))
    def test_conservation(self, values, capacity):
        """Every pushed item is either still in-window or was evicted."""
        w = SlidingWindow(capacity)
        evicted = w.push_many(values)
        assert evicted + list(w) == values

    @given(st.lists(st.floats(-1, 1, allow_nan=False), min_size=1,
                    max_size=200),
           st.integers(2, 16))
    def test_size_never_exceeds_capacity(self, values, capacity):
        w = SlidingWindow(capacity)
        for v in values:
            w.push(v)
            assert len(w) <= capacity

    @given(st.lists(st.floats(-1, 1, allow_nan=False), min_size=1,
                    max_size=100),
           st.integers(2, 8), st.data())
    def test_interleaved_push_advance_preserves_order(self, values,
                                                      capacity, data):
        """Arbitrary push/advance interleavings release items in order."""
        w = SlidingWindow(capacity)
        released: list[float] = []
        for v in values:
            evicted = w.push(v)
            if evicted is not None:
                released.append(evicted)
            if data.draw(st.booleans()):
                released.extend(w.advance(data.draw(st.integers(0, 3))))
        released.extend(w.flush())
        assert released == values
