"""Wire-protocol contract: round-trips, strict decoding, fuzzing.

Mirrors the checkpoint deserialization fuzz suites: any malformed,
truncated, oversized, wrong-version or junk-typed frame must raise a
clean :class:`repro.errors.ProtocolError` — never a raw ``KeyError`` /
``struct.error`` from the framing plumbing, and never a silently
half-understood frame.
"""

from __future__ import annotations

import struct

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameDecoder,
    decode_array,
    decode_frame,
    decode_key,
    encode_array,
    encode_frame,
    encode_key,
    validate_frame,
)

HELLO = {"type": "hello", "version": PROTOCOL_VERSION, "tenant": "default"}
PUSH = {"type": "push", "stream_id": "s1", "seq": 0,
        "values": encode_array([0.25, -0.125])}
FRAMES = [
    HELLO,
    {"type": "hello", "version": 1, "server": "repro/1.0.0", "credits": 4},
    {"type": "open", "stream_id": "s1", "kind": "protection",
     "key": encode_key(b"k1"), "watermark": "101", "resume": True},
    PUSH,
    {"type": "flush", "stream_id": "s1"},
    {"type": "result", "op": "push", "stream_id": "s1", "seq": 3,
     "values": encode_array([]), "items_in": 12, "items_out": 7},
    {"type": "credit", "stream_id": "s1", "credits": 1},
    {"type": "error", "code": "flow", "message": "no credits",
     "stream_id": "s1"},
    {"type": "bye", "reason": "drain"},
]


class TestRoundTrip:
    @pytest.mark.parametrize("frame", FRAMES,
                             ids=[f["type"] for f in FRAMES])
    def test_encode_decode_roundtrip(self, frame):
        """Every frame shape survives the wire byte-for-byte."""
        wire = encode_frame(frame)
        (length,) = struct.unpack(">I", wire[:4])
        assert length == len(wire) - 4
        assert decode_frame(wire[4:]) == frame

    def test_incremental_decoder_any_fragmentation(self):
        """Frames split at every possible byte boundary still decode."""
        wire = encode_frame(HELLO) + encode_frame(PUSH)
        for cut in range(len(wire) + 1):
            decoder = FrameDecoder()
            frames = decoder.feed(wire[:cut]) + decoder.feed(wire[cut:])
            assert frames == [HELLO, PUSH]
            assert decoder.pending_bytes == 0

    def test_array_roundtrip_bit_identical(self):
        values = np.array([0.1, -0.30000000000000004, 1e-308, 0.0, -0.5])
        assert np.array_equal(decode_array(encode_array(values)), values)

    def test_empty_array_roundtrip(self):
        assert decode_array(encode_array([])).size == 0

    def test_key_roundtrip(self):
        assert decode_key(encode_key(b"\x00secret\xff")) == b"\x00secret\xff"
        assert decode_key(encode_key("text-key")) == b"text-key"

    @given(st.lists(st.floats(allow_nan=False, width=64), max_size=64))
    def test_array_roundtrip_property(self, values):
        array = np.asarray(values, dtype=np.float64)
        assert np.array_equal(decode_array(encode_array(array)), array)


class TestStrictValidation:
    def test_unknown_frame_type_rejected(self):
        with pytest.raises(ProtocolError, match="unknown frame type"):
            validate_frame({"type": "launch-missiles"})

    def test_non_object_frame_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            validate_frame([1, 2, 3])

    def test_unknown_field_rejected(self):
        with pytest.raises(ProtocolError, match="unknown fields"):
            validate_frame({**HELLO, "extra": 1})

    def test_missing_required_field_rejected(self):
        with pytest.raises(ProtocolError, match="missing required"):
            validate_frame({"type": "push", "stream_id": "s1", "seq": 0})

    def test_wrong_field_type_rejected(self):
        with pytest.raises(ProtocolError, match="must be int"):
            validate_frame({"type": "hello", "version": "1"})

    def test_bool_is_not_an_int(self):
        """JSON true must not satisfy integer fields via bool-is-int."""
        with pytest.raises(ProtocolError, match="got bool"):
            validate_frame({"type": "credit", "stream_id": "s",
                            "credits": True})

    def test_negative_counters_rejected(self):
        with pytest.raises(ProtocolError, match=">= 0"):
            validate_frame({"type": "credit", "stream_id": "s",
                            "credits": -1})

    def test_empty_stream_id_rejected(self):
        with pytest.raises(ProtocolError, match="non-empty"):
            validate_frame({"type": "flush", "stream_id": ""})

    def test_oversized_frame_rejected_at_encode(self):
        frame = {"type": "push", "stream_id": "s1", "seq": 0,
                 "values": "A" * 256}
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame(frame, max_bytes=128)

    def test_oversized_length_prefix_rejected_before_buffering(self):
        decoder = FrameDecoder(max_bytes=1024)
        with pytest.raises(ProtocolError, match="length prefix"):
            decoder.feed(struct.pack(">I", 2 ** 31) + b"x")

    def test_default_limit_is_sane(self):
        assert MAX_FRAME_BYTES >= 1024 * 1024


class TestDecodeFuzz:
    """Hostile bytes and junk values into the decoder."""

    @given(st.binary(max_size=64))
    def test_arbitrary_bytes_never_crash_raw(self, data):
        """Random bodies either decode to a valid frame or raise clean."""
        try:
            decode_frame(data)
        except ProtocolError:
            pass

    @given(st.binary(min_size=1, max_size=200))
    def test_incremental_decoder_survives_garbage(self, data):
        decoder = FrameDecoder(max_bytes=1024)
        try:
            decoder.feed(data)
        except ProtocolError:
            pass

    @pytest.mark.parametrize("frame", FRAMES,
                             ids=[f["type"] for f in FRAMES])
    def test_truncated_bodies_rejected(self, frame):
        """Every proper prefix of a frame body fails cleanly."""
        wire = encode_frame(frame)
        body = wire[4:]
        for cut in range(len(body)):
            with pytest.raises(ProtocolError):
                decode_frame(body[:cut])

    @given(st.sampled_from(FRAMES),
           st.sampled_from(["type", "stream_id", "seq", "credits",
                            "values", "version", "op", "code"]),
           st.one_of(st.none(), st.integers(-5, 5), st.booleans(),
                     st.text(max_size=3), st.lists(st.integers(),
                                                   max_size=2)))
    def test_field_type_mutations_rejected_or_equal(self, frame, field,
                                                    junk):
        """Mutating any field either leaves a valid frame or raises
        ProtocolError — never a raw TypeError/KeyError."""
        if field not in frame:
            return
        mutated = {**frame, field: junk}
        try:
            validate_frame(mutated)
        except ProtocolError:
            return
        # Accepted mutants must be genuinely valid (same type, sane value)
        assert isinstance(junk, type(frame[field])) or frame[field] == junk

    def test_junk_base64_values_rejected(self):
        with pytest.raises(ProtocolError, match="base64"):
            decode_array("not@base64!")

    def test_non_float64_sized_payload_rejected(self):
        """base64 decoding to 3 bytes is not a whole float64 item."""
        with pytest.raises(ProtocolError, match="float64"):
            decode_array("AAAA")

    def test_junk_key_rejected(self):
        with pytest.raises(ProtocolError, match="base64"):
            decode_key("###")

    def test_empty_key_rejected(self):
        with pytest.raises(ProtocolError, match="empty"):
            decode_key("")
