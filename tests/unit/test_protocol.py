"""Wire-protocol contract: round-trips, strict decoding, fuzzing.

Mirrors the checkpoint deserialization fuzz suites: any malformed,
truncated, oversized, wrong-version or junk-typed frame must raise a
clean :class:`repro.errors.ProtocolError` — never a raw ``KeyError`` /
``struct.error`` from the framing plumbing, and never a silently
half-understood frame.
"""

from __future__ import annotations

import json
import struct

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.server.protocol import (
    CODECS,
    HARD_MAX_FRAME_BYTES,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    WIRE_BINARY,
    WIRE_JSON,
    BinaryFrameCodec,
    FrameDecoder,
    JsonFrameCodec,
    codec_for,
    decode_array,
    decode_frame,
    decode_key,
    effective_max_bytes,
    encode_array,
    encode_frame,
    encode_key,
    resolve_wire,
    validate_frame,
)

HELLO = {"type": "hello", "version": PROTOCOL_VERSION, "tenant": "default"}
PUSH = {"type": "push", "stream_id": "s1", "seq": 0,
        "values": encode_array([0.25, -0.125])}
FRAMES = [
    HELLO,
    {"type": "hello", "version": 1, "server": "repro/1.0.0", "credits": 4},
    {"type": "open", "stream_id": "s1", "kind": "protection",
     "key": encode_key(b"k1"), "watermark": "101", "resume": True},
    PUSH,
    {"type": "flush", "stream_id": "s1"},
    {"type": "result", "op": "push", "stream_id": "s1", "seq": 3,
     "values": encode_array([]), "items_in": 12, "items_out": 7},
    {"type": "credit", "stream_id": "s1", "credits": 1},
    {"type": "error", "code": "flow", "message": "no credits",
     "stream_id": "s1"},
    {"type": "bye", "reason": "drain"},
    {"type": "status"},
    {"type": "status", "payload": {
        "server": {"pushes": 3, "draining": False},
        "tenants": {"default": {"streams": 1}},
        "metrics": {"enabled": True,
                    "counters": {"server_frames_in_total"
                                 "{transport=tcp,wire=binary}": 7},
                    "histograms": {"hub_push_us": {"count": 2,
                                                   "p99": 125.0}}}}},
]


class TestRoundTrip:
    @pytest.mark.parametrize("frame", FRAMES,
                             ids=[f["type"] for f in FRAMES])
    def test_encode_decode_roundtrip(self, frame):
        """Every frame shape survives the wire byte-for-byte."""
        wire = encode_frame(frame)
        (length,) = struct.unpack(">I", wire[:4])
        assert length == len(wire) - 4
        assert decode_frame(wire[4:]) == frame

    def test_incremental_decoder_any_fragmentation(self):
        """Frames split at every possible byte boundary still decode."""
        wire = encode_frame(HELLO) + encode_frame(PUSH)
        for cut in range(len(wire) + 1):
            decoder = FrameDecoder()
            frames = decoder.feed(wire[:cut]) + decoder.feed(wire[cut:])
            assert frames == [HELLO, PUSH]
            assert decoder.pending_bytes == 0

    def test_array_roundtrip_bit_identical(self):
        values = np.array([0.1, -0.30000000000000004, 1e-308, 0.0, -0.5])
        assert np.array_equal(decode_array(encode_array(values)), values)

    def test_empty_array_roundtrip(self):
        assert decode_array(encode_array([])).size == 0

    def test_key_roundtrip(self):
        assert decode_key(encode_key(b"\x00secret\xff")) == b"\x00secret\xff"
        assert decode_key(encode_key("text-key")) == b"text-key"

    @given(st.lists(st.floats(allow_nan=False, width=64), max_size=64))
    def test_array_roundtrip_property(self, values):
        array = np.asarray(values, dtype=np.float64)
        assert np.array_equal(decode_array(encode_array(array)), array)


class TestStrictValidation:
    def test_unknown_frame_type_rejected(self):
        with pytest.raises(ProtocolError, match="unknown frame type"):
            validate_frame({"type": "launch-missiles"})

    def test_non_object_frame_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            validate_frame([1, 2, 3])

    def test_unknown_field_rejected(self):
        with pytest.raises(ProtocolError, match="unknown fields"):
            validate_frame({**HELLO, "extra": 1})

    def test_missing_required_field_rejected(self):
        with pytest.raises(ProtocolError, match="missing required"):
            validate_frame({"type": "push", "stream_id": "s1", "seq": 0})

    def test_wrong_field_type_rejected(self):
        with pytest.raises(ProtocolError, match="must be int"):
            validate_frame({"type": "hello", "version": "1"})

    def test_bool_is_not_an_int(self):
        """JSON true must not satisfy integer fields via bool-is-int."""
        with pytest.raises(ProtocolError, match="got bool"):
            validate_frame({"type": "credit", "stream_id": "s",
                            "credits": True})

    def test_negative_counters_rejected(self):
        with pytest.raises(ProtocolError, match=">= 0"):
            validate_frame({"type": "credit", "stream_id": "s",
                            "credits": -1})

    def test_empty_stream_id_rejected(self):
        with pytest.raises(ProtocolError, match="non-empty"):
            validate_frame({"type": "flush", "stream_id": ""})

    def test_oversized_frame_rejected_at_encode(self):
        frame = {"type": "push", "stream_id": "s1", "seq": 0,
                 "values": "A" * 256}
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame(frame, max_bytes=128)

    def test_oversized_length_prefix_rejected_before_buffering(self):
        decoder = FrameDecoder(max_bytes=1024)
        with pytest.raises(ProtocolError, match="length prefix"):
            decoder.feed(struct.pack(">I", 2 ** 31) + b"x")

    def test_default_limit_is_sane(self):
        assert MAX_FRAME_BYTES >= 1024 * 1024


class TestDecodeFuzz:
    """Hostile bytes and junk values into the decoder."""

    @given(st.binary(max_size=64))
    def test_arbitrary_bytes_never_crash_raw(self, data):
        """Random bodies either decode to a valid frame or raise clean."""
        try:
            decode_frame(data)
        except ProtocolError:
            pass

    @given(st.binary(min_size=1, max_size=200))
    def test_incremental_decoder_survives_garbage(self, data):
        decoder = FrameDecoder(max_bytes=1024)
        try:
            decoder.feed(data)
        except ProtocolError:
            pass

    @pytest.mark.parametrize("frame", FRAMES,
                             ids=[f["type"] for f in FRAMES])
    def test_truncated_bodies_rejected(self, frame):
        """Every proper prefix of a frame body fails cleanly."""
        wire = encode_frame(frame)
        body = wire[4:]
        for cut in range(len(body)):
            with pytest.raises(ProtocolError):
                decode_frame(body[:cut])

    @given(st.sampled_from(FRAMES),
           st.sampled_from(["type", "stream_id", "seq", "credits",
                            "values", "version", "op", "code"]),
           st.one_of(st.none(), st.integers(-5, 5), st.booleans(),
                     st.text(max_size=3), st.lists(st.integers(),
                                                   max_size=2)))
    def test_field_type_mutations_rejected_or_equal(self, frame, field,
                                                    junk):
        """Mutating any field either leaves a valid frame or raises
        ProtocolError — never a raw TypeError/KeyError."""
        if field not in frame:
            return
        mutated = {**frame, field: junk}
        try:
            validate_frame(mutated)
        except ProtocolError:
            return
        # Accepted mutants must be genuinely valid (same type, sane value)
        assert isinstance(junk, type(frame[field])) or frame[field] == junk

    def test_junk_base64_values_rejected(self):
        with pytest.raises(ProtocolError, match="base64"):
            decode_array("not@base64!")

    def test_non_float64_sized_payload_rejected(self):
        """base64 decoding to 3 bytes is not a whole float64 item."""
        with pytest.raises(ProtocolError, match="float64"):
            decode_array("AAAA")

    def test_junk_key_rejected(self):
        with pytest.raises(ProtocolError, match="base64"):
            decode_key("###")

    def test_empty_key_rejected(self):
        with pytest.raises(ProtocolError, match="empty"):
            decode_key("")


class TestCodecs:
    """Negotiated wire codecs: equivalence, round-trips, selection."""

    @pytest.mark.parametrize("frame", FRAMES,
                             ids=[f["type"] for f in FRAMES])
    def test_json_codec_bodies_byte_identical_to_wire1(self, frame):
        """Wire 1 through the codec API is the original protocol,
        byte for byte — an old peer cannot tell the difference."""
        assert JsonFrameCodec().encode(frame) == encode_frame(frame)[4:]

    @pytest.mark.parametrize("frame", FRAMES,
                             ids=[f["type"] for f in FRAMES])
    def test_binary_roundtrip_every_frame_shape(self, frame):
        """Every frame shape survives wire 2 with float64 bit-identity."""
        codec = BinaryFrameCodec()
        decoded = codec.decode(codec.encode(frame))
        expected = dict(frame)
        if "values" in expected:
            values = decode_array(expected.pop("values"))
            out = decoded.pop("values")
            assert isinstance(out, np.ndarray) and out.dtype == np.float64
            assert out.tobytes() == values.tobytes()
        assert decoded == expected

    @pytest.mark.parametrize("frame", FRAMES,
                             ids=[f["type"] for f in FRAMES])
    def test_codecs_decode_to_the_same_frame(self, frame):
        """Both codecs express the same frame; only the bytes differ."""
        json_codec, binary_codec = JsonFrameCodec(), BinaryFrameCodec()
        via_json = json_codec.decode(json_codec.encode(frame))
        via_binary = binary_codec.decode(binary_codec.encode(frame))
        values_json = via_json.pop("values", None)
        values_binary = via_binary.pop("values", None)
        assert via_json == via_binary
        if values_json is not None:
            assert values_json.tobytes() == values_binary.tobytes()

    def test_binary_accepts_ndarray_values(self):
        """Handlers push ndarrays straight through without base64."""
        codec = BinaryFrameCodec()
        values = np.array([0.1, -2.5, float("inf")])
        frame = {"type": "push", "stream_id": "s1", "seq": 0,
                 "values": values}
        decoded = codec.decode(codec.encode(frame))
        assert decoded["values"].tobytes() == values.tobytes()

    def test_binary_is_smaller_than_json_for_payloads(self):
        """Dropping base64 is the point: ~25% fewer payload bytes."""
        frame = {"type": "push", "stream_id": "s1", "seq": 0,
                 "values": np.arange(1000, dtype=np.float64)}
        assert len(BinaryFrameCodec().encode(frame)) \
            < 0.8 * len(JsonFrameCodec().encode(frame))

    def test_codec_for_unknown_wire_rejected(self):
        with pytest.raises(ProtocolError, match="unknown wire version"):
            codec_for(99)

    def test_resolve_wire_names_and_numbers(self):
        assert resolve_wire("json") == WIRE_JSON
        assert resolve_wire("binary") == WIRE_BINARY
        assert resolve_wire("1") == WIRE_JSON
        assert resolve_wire(2) == WIRE_BINARY

    @pytest.mark.parametrize("junk", ["msgpack", "0", 3, "-1"])
    def test_resolve_wire_rejects_unknown(self, junk):
        with pytest.raises(ProtocolError):
            resolve_wire(junk)

    def test_registry_is_consistent(self):
        """Every registered codec is reachable by number and by name."""
        for wire, codec in CODECS.items():
            assert codec.wire == wire
            assert codec_for(wire) is codec
            assert resolve_wire(codec.name) == wire


def _binary_body(frame=None, **overrides) -> bytearray:
    """A valid wire-2 body as a mutable bytearray for corruption."""
    frame = frame or {"type": "push", "stream_id": "s1", "seq": 0,
                      "values": np.array([1.5, -2.5])}
    return bytearray(BinaryFrameCodec().encode(frame, **overrides))


class TestBinaryStrictness:
    """Hostile wire-2 bodies die with clean ProtocolErrors."""

    def test_truncated_header_rejected(self):
        with pytest.raises(ProtocolError, match="header"):
            BinaryFrameCodec().decode(bytes(_binary_body()[:5]))

    @pytest.mark.parametrize("code", [0, 10, 255])
    def test_unknown_type_code_rejected(self, code):
        body = _binary_body()
        body[0] = code
        with pytest.raises(ProtocolError, match="type code"):
            BinaryFrameCodec().decode(bytes(body))

    def test_unknown_flag_bits_rejected(self):
        body = _binary_body()
        body[1] |= 0x80
        with pytest.raises(ProtocolError):
            BinaryFrameCodec().decode(bytes(body))

    def test_meta_overrunning_body_rejected(self):
        body = _binary_body()
        struct.pack_into("<I", body, 2, len(body))  # meta_len > remaining
        with pytest.raises(ProtocolError):
            BinaryFrameCodec().decode(bytes(body))

    def test_non_utf8_meta_rejected(self):
        body = _binary_body({"type": "flush", "stream_id": "sX"})
        offset = body.index(b"sX")
        body[offset:offset + 2] = b"\xff\xfe"
        with pytest.raises(ProtocolError):
            BinaryFrameCodec().decode(bytes(body))

    def test_non_object_meta_rejected(self):
        meta = b"[1,2]"
        body = struct.pack("<BBI", 4, 0, len(meta)) + meta
        with pytest.raises(ProtocolError):
            BinaryFrameCodec().decode(body)

    @pytest.mark.parametrize("smuggled", ["type", "values"])
    def test_meta_smuggling_reserved_fields_rejected(self, smuggled):
        """The header owns ``type`` and the payload owns ``values`` —
        a meta object must not override either."""
        meta = json.dumps({"stream_id": "s1", smuggled: "x"}).encode()
        body = struct.pack("<BBI", 4, 0, len(meta)) + meta
        with pytest.raises(ProtocolError):
            BinaryFrameCodec().decode(body)

    def test_ragged_payload_rejected(self):
        body = _binary_body()
        with pytest.raises(ProtocolError, match="float64"):
            BinaryFrameCodec().decode(bytes(body[:-3]))

    def test_payload_without_flag_rejected(self):
        meta = json.dumps({"stream_id": "s1"}).encode()
        body = struct.pack("<BBI", 4, 0, len(meta)) + meta + b"\0" * 8
        with pytest.raises(ProtocolError):
            BinaryFrameCodec().decode(body)

    def test_decoded_frames_are_validated(self):
        """A well-formed body carrying an invalid frame still dies."""
        meta = json.dumps({"credits": -1, "stream_id": "s1"}).encode()
        body = struct.pack("<BBI", 2, 0, len(meta)) + meta
        with pytest.raises(ProtocolError):
            BinaryFrameCodec().decode(body)

    def test_oversized_encode_rejected(self):
        frame = {"type": "push", "stream_id": "s1", "seq": 0,
                 "values": np.zeros(1000)}
        with pytest.raises(ProtocolError, match="exceeds"):
            BinaryFrameCodec().encode(frame, max_bytes=1024)

    @given(st.binary(max_size=200))
    def test_arbitrary_bodies_never_crash(self, data):
        """Fuzz: garbage bodies raise ProtocolError, nothing rawer."""
        try:
            BinaryFrameCodec().decode(data)
        except ProtocolError:
            pass


class TestHardFrameCap:
    """The absolute frame-size ceiling holds whatever callers configure."""

    def test_effective_max_bytes_clamps_to_hard_cap(self):
        assert effective_max_bytes(10**15) == HARD_MAX_FRAME_BYTES
        assert effective_max_bytes(1024) == 1024

    def test_decoder_rejects_hostile_prefix_despite_huge_limit(self):
        """A giant configured limit cannot disable the hard cap: the
        prefix alone is rejected before any body bytes buffer."""
        decoder = FrameDecoder(max_bytes=10**15)
        with pytest.raises(ProtocolError, match="exceeds"):
            decoder.feed(struct.pack(">I", HARD_MAX_FRAME_BYTES + 1))

    @given(st.integers(HARD_MAX_FRAME_BYTES + 1, 2**32 - 1))
    def test_any_over_cap_prefix_rejected(self, length):
        """Fuzz: every over-cap declared length dies on arrival."""
        decoder = FrameDecoder(max_bytes=HARD_MAX_FRAME_BYTES)
        with pytest.raises(ProtocolError, match="exceeds"):
            decoder.feed(struct.pack(">I", length) + b"x" * 16)

    def test_in_range_prefix_still_buffers(self):
        decoder = FrameDecoder(max_bytes=10**15)
        assert decoder.feed(struct.pack(">I", 64) + b"{") == []
        assert decoder.pending_bytes == 5


class TestStatusFrame:
    """The observability frame: round-trips and a frozen code table."""

    STATUS = {"type": "status", "payload": {
        "server": {"pushes": 12, "draining": True,
                   "uptime_seconds": 1.5},
        "tenants": {"acme": {"streams": 2}},
        "metrics": {"enabled": True, "counters": {
            "server_frames_in_total{transport=tcp,wire=binary}": 9}},
    }}

    @pytest.mark.parametrize("wire", [WIRE_JSON, WIRE_BINARY])
    def test_nested_snapshot_roundtrips_on_both_codecs(self, wire):
        codec = codec_for(wire)
        assert codec.decode(codec.encode(self.STATUS)) == self.STATUS

    @pytest.mark.parametrize("wire", [WIRE_JSON, WIRE_BINARY])
    def test_bare_request_roundtrips(self, wire):
        codec = codec_for(wire)
        assert codec.decode(codec.encode({"type": "status"})) \
            == {"type": "status"}

    def test_payload_must_be_an_object(self):
        with pytest.raises(ProtocolError, match="payload"):
            validate_frame({"type": "status", "payload": "nope"})

    def test_unknown_status_field_rejected(self):
        with pytest.raises(ProtocolError, match="unknown"):
            validate_frame({"type": "status", "snapshot": {}})

    def test_binary_type_codes_are_frozen(self):
        """STATUS must not renumber the pre-existing wire-2 type codes.

        Codes are assigned by sorted frame name; "status" sorts after
        every earlier name, so it MUST be the last code.  A frame type
        added later must keep sorting after "status" (or the codec
        needs an explicit, versioned table) — this pin is the tripwire.
        """
        from repro.server.protocol import _TYPE_CODES

        assert _TYPE_CODES == {
            "bye": 1, "credit": 2, "error": 3, "flush": 4, "hello": 5,
            "open": 6, "push": 7, "result": 8, "status": 9,
        }
