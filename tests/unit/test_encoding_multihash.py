"""Tests for the Sec-4.3 multi-hash encoding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.encoding_multihash import (
    MultihashEncoding,
    active_pairs,
    convention_pattern,
    expected_search_iterations,
)
from repro.core.params import WatermarkParams
from repro.core.quantize import Quantizer
from repro.errors import EncodingSearchExhausted, ParameterError
from repro.transforms.summarization import summarize
from repro.util.hashing import KeyedHasher

PARAMS = WatermarkParams()
QUANTIZER = Quantizer(PARAMS.value_bits, PARAMS.avg_extra_bits)
HASHER = KeyedHasher(b"k1")


def make_subset(center: float = 0.31, size: int = 6) -> list[int]:
    return [QUANTIZER.quantize(center + (i - size // 2) * 5e-4)
            for i in range(size)]


class TestActivePairs:
    def test_full_set_size(self):
        # run_length >= size: the paper's a(a+1)/2 averages.
        assert len(active_pairs(5, 5)) == 15
        assert len(active_pairs(5, 99)) == 15

    def test_limited_run_length(self):
        # lengths 1..3 over 6 items: 6 + 5 + 4 = 15.
        assert len(active_pairs(6, 3)) == 15

    def test_pairs_are_contiguous_runs(self):
        for i, j in active_pairs(7, 4):
            assert 0 <= i <= j < 7
            assert j - i + 1 <= 4

    def test_validation(self):
        with pytest.raises(ParameterError):
            active_pairs(0, 1)
        with pytest.raises(ParameterError):
            active_pairs(3, 0)


class TestExpectedIterations:
    def test_matches_paper_formula(self):
        # omega=1, a=5, full set: 2^15 ~ 32768 (the paper's example).
        assert expected_search_iterations(5, 5, 1) == 2.0 ** 15

    def test_exponential_in_run_length(self):
        previous = 0.0
        for g in range(1, 6):
            current = expected_search_iterations(6, g, 1)
            assert current > previous
            previous = current


class TestConventionPattern:
    def test_deterministic(self):
        assert convention_pattern(b"k", 123, 45, 1) == \
            convention_pattern(b"k", 123, 45, 1)

    def test_width(self):
        for omega in (1, 2, 4, 8):
            assert 0 <= convention_pattern(b"k", 999, 7, omega) < 2 ** omega

    def test_sensitive_to_all_inputs(self):
        base = convention_pattern(b"k", 123, 45, 8)
        assert any(convention_pattern(b"k", 123 + d, 45, 8) != base
                   for d in range(1, 10))
        assert any(convention_pattern(b"k", 123, 45 + d, 8) != base
                   for d in range(1, 10))
        assert any(convention_pattern(bytes([k]), 123, 45, 8) != base
                   for k in range(10))

    def test_roughly_uniform(self):
        ones = sum(convention_pattern(b"k", v, 1, 1) for v in range(2000))
        assert 850 < ones < 1150


class TestEmbedDetect:
    @pytest.mark.parametrize("method", ["pruned", "random"])
    @pytest.mark.parametrize("bit", [True, False])
    def test_roundtrip(self, method, bit):
        params = PARAMS.with_updates(active_run_length=2)
        encoding = MultihashEncoding(params, QUANTIZER, HASHER,
                                     method=method, rng=3)
        subset = make_subset()
        outcome = encoding.embed(subset, 3, 17, bit)
        floats = QUANTIZER.dequantize_array(outcome.q_values)
        vote = encoding.detect(np.asarray(floats), 3, 17)
        assert vote.decision is bit

    def test_all_active_averages_agree_after_embedding(self):
        encoding = MultihashEncoding(PARAMS, QUANTIZER, HASHER, rng=3)
        subset = make_subset(size=6)
        outcome = encoding.embed(subset, 3, 29, True)
        floats = QUANTIZER.dequantize_array(outcome.q_values)
        vote = encoding.detect(np.asarray(floats), 3, 29)
        pairs = active_pairs(6, PARAMS.active_run_length)
        assert vote.n_true == len(pairs)
        assert vote.n_false == 0

    def test_alterations_confined_to_lsb(self):
        encoding = MultihashEncoding(PARAMS, QUANTIZER, HASHER, rng=3)
        subset = make_subset()
        outcome = encoding.embed(subset, 3, 17, True)
        for old, new in zip(subset, outcome.q_values):
            assert old >> PARAMS.lsb_bits == new >> PARAMS.lsb_bits

    def test_pruned_minimizes_distance(self):
        """Pruned search stays closer to the original than random."""
        params = PARAMS.with_updates(active_run_length=3)
        subset = make_subset(size=6)

        def total_distance(outcome):
            return sum(abs(a - b) for a, b in zip(subset, outcome.q_values))

        pruned = MultihashEncoding(params, QUANTIZER, HASHER,
                                   method="pruned", rng=3)
        random_search = MultihashEncoding(params, QUANTIZER, HASHER,
                                          method="random", rng=3)
        d_pruned = total_distance(pruned.embed(list(subset), 3, 17, True))
        d_random = total_distance(random_search.embed(list(subset), 3, 17,
                                                      True))
        assert d_pruned <= d_random

    def test_search_exhaustion_raises(self):
        params = PARAMS.with_updates(max_search_iterations=2,
                                     active_run_length=6)
        encoding = MultihashEncoding(params, QUANTIZER, HASHER, rng=3)
        with pytest.raises(EncodingSearchExhausted):
            encoding.embed(make_subset(size=6), 3, 17, True)

    def test_subset_trimmed_to_embed_cap(self):
        params = PARAMS.with_updates(max_subset_embed=4,
                                     active_run_length=2)
        encoding = MultihashEncoding(params, QUANTIZER, HASHER, rng=3)
        subset = make_subset(size=10)
        outcome = encoding.embed(subset, 5, 17, True)
        changed = [i for i, (a, b) in enumerate(zip(subset,
                                                    outcome.q_values))
                   if a != b]
        assert len(changed) <= 4

    def test_method_validation(self):
        with pytest.raises(ParameterError):
            MultihashEncoding(PARAMS, QUANTIZER, HASHER, method="magic")

    def test_stats_recorded(self):
        encoding = MultihashEncoding(PARAMS, QUANTIZER, HASHER, rng=3)
        encoding.embed(make_subset(), 3, 17, True)
        assert encoding.last_stats is not None
        assert encoding.last_stats.iterations >= 1
        assert encoding.last_stats.constraints > 0

    def test_stats_reset_when_search_raises(self):
        """Regression: a failed embed must not leave stale stats behind.

        ``embed`` clears ``last_stats`` on entry, so a caller that
        catches :class:`EncodingSearchExhausted` never reads the stats
        of an *earlier*, unrelated embed.
        """
        params = PARAMS.with_updates(max_search_iterations=20,
                                     active_run_length=6)
        encoding = MultihashEncoding(params, QUANTIZER, HASHER, rng=3)
        encoding.embed(make_subset(size=2), 0, 17, True)
        assert encoding.last_stats is not None
        with pytest.raises(EncodingSearchExhausted):
            encoding.embed(make_subset(size=6), 3, 17, True)
        assert encoding.last_stats is None


class TestSummarizationConsistency:
    """The core Sec-4.3 resilience property, at encoding level."""

    @pytest.mark.parametrize("degree", [2, 3])
    def test_summarized_chunks_still_testify(self, degree):
        params = PARAMS.with_updates(active_run_length=6)
        encoding = MultihashEncoding(params, QUANTIZER, HASHER, rng=5)
        subset = make_subset(size=6)
        outcome = encoding.embed(subset, 3, 41, True)
        floats = np.asarray(QUANTIZER.dequantize_array(outcome.q_values))
        # Summarize the subset itself: chunk averages ARE m_ij values.
        chunks = summarize(floats, degree=degree, keep_partial=False)
        vote = encoding.detect(chunks, 0, 41)
        assert vote.n_true > vote.n_false

    def test_unrelated_data_votes_are_balanced(self):
        encoding = MultihashEncoding(PARAMS, QUANTIZER, HASHER, rng=5)
        rng = np.random.default_rng(8)
        n_true = n_false = 0
        for trial in range(60):
            data = rng.uniform(-0.4, 0.4, size=6)
            vote = encoding.detect(data, 3, 41)
            n_true += vote.n_true
            n_false += vote.n_false
        total = n_true + n_false
        assert abs(n_true - n_false) < 0.25 * total
