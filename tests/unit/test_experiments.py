"""Smoke tests for the experiment harness (figures run at tiny scale)."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.experiments.analysis_tables import run_analysis_table
from repro.experiments.config import bench_scale, irtf_params, scaled, synthetic_params
from repro.experiments.fig06_labels_epsilon import run_fig6a
from repro.experiments.fig11_overhead_quality import run_fig11b
from repro.experiments.runner import ExperimentResult, format_table


class TestConfig:
    def test_synthetic_params_are_defaults(self):
        from repro.core.params import WatermarkParams

        assert synthetic_params() == WatermarkParams()

    def test_irtf_params_tuned_finer(self):
        assert irtf_params().prominence < synthetic_params().prominence
        assert irtf_params().lambda_bits < synthetic_params().lambda_bits

    def test_bench_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "2.5")
        assert bench_scale() == 2.5
        monkeypatch.setenv("REPRO_BENCH_SCALE", "bogus")
        assert bench_scale() == 1.0
        monkeypatch.setenv("REPRO_BENCH_SCALE", "99")
        assert bench_scale() == 10.0  # clamped

    def test_scaled(self):
        assert scaled(100, 0.5) == 50
        assert scaled(2, 0.1, minimum=3) == 3


class TestExperimentResult:
    def test_add_validates_columns(self):
        result = ExperimentResult("x", "t", columns=["a", "b"])
        result.add(a=1, b=2)
        with pytest.raises(ParameterError):
            result.add(a=1)

    def test_column_extraction(self):
        result = ExperimentResult("x", "t", columns=["a"])
        result.add(a=1)
        result.add(a=2)
        assert result.column("a") == [1, 2]
        with pytest.raises(ParameterError):
            result.column("missing")

    def test_format_table_renders_all_rows(self):
        result = ExperimentResult("x", "demo experiment", columns=["a", "b"],
                                  paper_expectation="demo expectation")
        result.add(a=1, b=0.123456)
        result.add(a=20, b=1e-9)
        text = format_table(result)
        assert "demo experiment" in text
        assert "demo expectation" in text
        assert "1.000e-09" in text
        assert text.count("\n") >= 5


class TestFigureSmoke:
    """Each figure function runs end-to-end at reduced scale."""

    def test_fig6a_small(self):
        result = run_fig6a(scale=0.3)
        assert result.rows
        assert set(result.columns) == {"label_size", "epsilon",
                                       "labels_altered_pct"}
        assert all(0 <= row["labels_altered_pct"] <= 100
                   for row in result.rows)

    def test_fig11b_small(self):
        result = run_fig11b(scale=0.3)
        assert len(result.rows) == 7
        assert all(row["mean_drift_pct"] < 0.21 for row in result.rows)

    def test_analysis_table(self):
        result = run_analysis_table()
        assert len(result.rows) == 8
        for row in result.rows:
            assert row["computed"] == pytest.approx(row["paper_value"],
                                                    rel=0.16)
