"""Tests for the synthetic stream generators (Sec-6 workload model)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.extremes import estimate_eta
from repro.errors import ParameterError
from repro.streams.generators import (
    GaussianStream,
    RandomWalkStream,
    TemperatureSensorGenerator,
)


class TestTemperatureSensor:
    def test_values_normalized(self):
        values = TemperatureSensorGenerator(seed=1).generate(5000)
        assert values.min() > -0.5
        assert values.max() < 0.5

    def test_deterministic_with_seed(self):
        a = TemperatureSensorGenerator(seed=9).generate(1000)
        b = TemperatureSensorGenerator(seed=9).generate(1000)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = TemperatureSensorGenerator(seed=1).generate(1000)
        b = TemperatureSensorGenerator(seed=2).generate(1000)
        assert not np.array_equal(a, b)

    @pytest.mark.parametrize("eta", [40, 100, 200])
    def test_eta_calibration(self, eta):
        """Measured eta(sigma, delta) tracks the requested value.

        This is the generator's headline knob ("controllable fluctuating
        behavior", Sec 6); we accept a factor-2 band because majorness
        filtering and jitter move the measured value.
        """
        generator = TemperatureSensorGenerator(eta=eta, seed=5)
        values = generator.generate(eta * 120)
        measured = estimate_eta(values, prominence=0.05, delta=0.02, sigma=3)
        assert eta / 3.0 <= measured <= eta * 3.0

    def test_iter_values_matches_chunks(self):
        generator = TemperatureSensorGenerator(seed=3)
        stream = generator.iter_values(chunk=64)
        first = [next(stream) for _ in range(10)]
        assert all(isinstance(v, float) for v in first)

    @pytest.mark.parametrize("kwargs", [
        {"eta": 2},
        {"extreme_scale": 0.0},
        {"extreme_scale": 0.6},
        {"noise_std": -1.0},
        {"eta_jitter": 2.0},
        {"min_swing": 0.0},
    ])
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ParameterError):
            TemperatureSensorGenerator(**kwargs)

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ParameterError):
            TemperatureSensorGenerator(seed=1).generate(0)

    def test_meta_carries_rate(self):
        meta = TemperatureSensorGenerator(rate_hz=250.0, seed=1).meta()
        assert meta.rate_hz == 250.0


class TestGaussianStream:
    def test_clipped_to_normalized_interval(self):
        values = GaussianStream(std=0.5, seed=2).generate(5000)
        assert values.min() >= -0.495
        assert values.max() <= 0.495

    def test_moments_roughly_match(self):
        values = GaussianStream(mean=0.0, std=0.2, seed=2).generate(20000)
        assert abs(float(np.mean(values))) < 0.01
        assert abs(float(np.std(values)) - 0.2) < 0.02

    def test_rejects_bad_std(self):
        with pytest.raises(ParameterError):
            GaussianStream(std=0.0)


class TestRandomWalk:
    def test_values_bounded(self):
        values = RandomWalkStream(seed=4).generate(5000)
        assert values.min() >= -0.5
        assert values.max() <= 0.5

    def test_smoothing_reduces_roughness(self):
        rough = RandomWalkStream(seed=4, smoothing=1).generate(5000)
        smooth = RandomWalkStream(seed=4, smoothing=9).generate(5000)
        assert np.std(np.diff(smooth)) < np.std(np.diff(rough))

    @pytest.mark.parametrize("kwargs", [
        {"step_std": 0.0},
        {"reversion": 1.5},
        {"smoothing": 0},
    ])
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ParameterError):
            RandomWalkStream(**kwargs)
