"""Tests for the central component registry."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.encoding_factory import ENCODING_NAMES, encoding_names
from repro.errors import ParameterError, RegistryError, ReproError
from repro.registry import REGISTRY, ComponentRegistry


def fresh_registry() -> ComponentRegistry:
    """An isolated registry with no built-in provider modules."""
    return ComponentRegistry(provider_modules=())


class TestRegistration:
    def test_add_and_get(self):
        registry = fresh_registry()
        sentinel = object()
        registry.add("encoding", "toy", sentinel, description="a toy")
        assert registry.get("encoding", "toy") is sentinel
        assert registry.describe("encoding") == {"toy": "a toy"}

    def test_decorator_returns_object(self):
        registry = fresh_registry()

        @registry.register("transform", "noop", description="identity")
        def noop():
            return lambda values: values

        assert registry.get("transform", "noop") is noop

    def test_duplicate_name_rejected(self):
        registry = fresh_registry()
        registry.add("attack", "twice", object())
        with pytest.raises(RegistryError, match="already registered"):
            registry.add("attack", "twice", object())

    def test_same_name_allowed_across_kinds(self):
        registry = fresh_registry()
        registry.add("attack", "shared", object())
        registry.add("transform", "shared", object())
        assert registry.names("attack") == ("shared",)
        assert registry.names("transform") == ("shared",)

    def test_empty_name_rejected(self):
        registry = fresh_registry()
        with pytest.raises(RegistryError, match="non-empty string"):
            registry.add("encoding", "", object())

    def test_unknown_kind_rejected(self):
        registry = fresh_registry()
        with pytest.raises(RegistryError, match="unknown component kind"):
            registry.add("codec", "x", object())

    def test_registry_error_is_repro_and_value_error(self):
        assert issubclass(RegistryError, ReproError)
        assert issubclass(RegistryError, ValueError)


class TestLookupErrors:
    def test_unknown_name_lists_valid_names(self):
        registry = fresh_registry()
        registry.add("encoding", "alpha", object())
        registry.add("encoding", "beta", object())
        with pytest.raises(RegistryError) as excinfo:
            registry.get("encoding", "gamma")
        message = str(excinfo.value)
        assert "alpha" in message and "beta" in message

    def test_typo_gets_a_suggestion(self):
        registry = fresh_registry()
        registry.add("attack", "epsilon", object())
        with pytest.raises(RegistryError, match="Did you mean 'epsilon'"):
            registry.get("attack", "epsilom")

    def test_find_searches_kinds_in_order(self):
        registry = fresh_registry()
        first = object()
        registry.add("transform", "both", first)
        registry.add("attack", "both", object())
        assert registry.find("both", kinds=("transform", "attack")).obj \
            is first

    def test_find_error_lists_all_searched_kinds(self):
        registry = fresh_registry()
        registry.add("transform", "sample", object())
        registry.add("attack", "epsilon", object())
        with pytest.raises(RegistryError) as excinfo:
            registry.find("zap", kinds=("attack", "transform"))
        message = str(excinfo.value)
        assert "epsilon" in message and "sample" in message


class TestBuiltinPopulation:
    def test_builtins_meet_the_floor(self):
        """The acceptance floor: >=3 encodings, >=4 transforms, >=3 attacks."""
        assert len(REGISTRY.names("encoding")) >= 3
        assert len(REGISTRY.names("transform")) >= 4
        assert len(REGISTRY.names("attack")) >= 3
        assert len(REGISTRY.names("generator")) >= 3

    def test_encoding_names_derive_from_registry(self):
        assert ENCODING_NAMES == REGISTRY.names("encoding")
        assert encoding_names() == REGISTRY.names("encoding")

    def test_factory_unknown_name_error_lists_names(self):
        from repro.core.encoding_factory import build_encoding
        from repro.core.params import WatermarkParams
        from repro.core.quantize import Quantizer
        from repro.util.hashing import KeyedHasher

        params = WatermarkParams()
        with pytest.raises(ParameterError) as excinfo:
            build_encoding("rot13", params,
                           Quantizer(params.value_bits,
                                     params.avg_extra_bits),
                           KeyedHasher(b"k"))
        for name in REGISTRY.names("encoding"):
            assert name in str(excinfo.value)


class TestLazyPopulation:
    def test_core_import_does_not_populate_providers(self):
        """Importing the core (or looking up an encoding) must not drag
        in the attack/transform/generator provider modules."""
        import subprocess
        import sys

        code = (
            "import sys\n"
            "from repro.core.embedder import StreamWatermarker\n"
            "w = StreamWatermarker('1', b'k')\n"  # encoding lookup hits
            "assert 'repro.attacks' not in sys.modules, 'attacks imported'\n"
            "assert 'repro.transforms' not in sys.modules, "
            "'transforms imported'\n"
            "from repro.core import ENCODING_NAMES\n"  # lazy, populates
            "assert len(ENCODING_NAMES) >= 3\n"
            "assert 'repro.attacks' in sys.modules\n"
        )
        completed = subprocess.run([sys.executable, "-c", code],
                                   capture_output=True, text=True)
        assert completed.returncode == 0, completed.stderr


class TestCliIntegration:
    def test_new_registration_is_immediately_cli_visible(self, capsys):
        """A plugin registered at runtime shows up in `repro list`."""
        name = "test-only-transform"
        if name not in REGISTRY.names("transform"):
            REGISTRY.add("transform", name,
                         lambda: (lambda values: values),
                         description="registered by the test-suite")
        assert main(["list", "--kind", "transform", "--json"]) == 0
        listed = json.loads(capsys.readouterr().out)
        assert name in listed["transform"]

    def test_list_covers_every_kind(self, capsys):
        assert main(["list", "--json"]) == 0
        listed = json.loads(capsys.readouterr().out)
        assert set(listed) == set(REGISTRY.KINDS)

    def test_attack_kind_typo_is_helpful(self, tmp_path, capsys):
        stream = tmp_path / "s.csv"
        stream.write_text("0.1\n0.2\n0.1\n")
        code = main(["attack", str(stream), str(tmp_path / "o.csv"),
                     "--kind", "epsilom"])
        assert code == 2
        err = capsys.readouterr().err
        assert "epsilon" in err and "Did you mean" in err

    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out
