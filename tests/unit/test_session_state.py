"""Session checkpoint state: round-trips, counters, buckets, error paths.

The fuzz classes at the bottom pin the deserialization contract: any
malformed, truncated, wrong-kind or unknown-field checkpoint raises a
clean :class:`repro.errors.ReproError` subclass — never a raw
``KeyError``/``TypeError`` from the restore plumbing, and never a
silently half-restored session.
"""

from __future__ import annotations

import copy
import json

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import DetectionSession, ProtectionSession, WatermarkParams
from repro.core.encoding_factory import build_encoding
from repro.core.quality import QualityMonitor
from repro.core.quantize import Quantizer
from repro.core.serialize import params_from_dict, params_to_dict
from repro.errors import ParameterError, SessionStateError
from repro.streams.window import SlidingWindow
from repro.util.hashing import KeyedHasher
from tests.conftest import KEY


def json_roundtrip(state: dict) -> dict:
    """Force the state through strict-ish JSON text, as a shard would."""
    return json.loads(json.dumps(state))


class TestProtectionSessionState:
    def test_roundtrip_preserves_counters_and_report(self, small_stream,
                                                     params):
        session = ProtectionSession("1", KEY, params=params)
        session.feed(small_stream)
        state = json_roundtrip(session.to_state())
        resumed = ProtectionSession.from_state(state, KEY)
        assert resumed.items_ingested == session.items_ingested
        assert resumed.report.counters.to_dict() \
            == session.report.counters.to_dict()
        assert resumed.report.embedded == session.report.embedded
        assert resumed.report.altered_items == session.report.altered_items
        assert resumed.watermark_bits == session.watermark_bits

    def test_resumed_report_counters_stay_live(self, small_stream, params):
        """After restore, the report and the scanner share one counters
        object, so further feeding updates both."""
        session = ProtectionSession("1", KEY, params=params)
        session.feed(small_stream[:1500])
        resumed = ProtectionSession.from_state(
            json_roundtrip(session.to_state()), KEY)
        before = resumed.report.counters.items
        resumed.feed(small_stream[1500:])
        assert resumed.report.counters.items == before + 1500
        assert resumed.items_ingested == resumed.report.counters.items

    def test_state_excludes_the_key(self, small_stream, params):
        session = ProtectionSession("1", KEY, params=params)
        session.feed(small_stream[:500])
        assert KEY.decode() not in json.dumps(session.to_state())

    def test_monitor_sessions_refuse_checkpoint(self, params):
        session = ProtectionSession("1", KEY, params=params,
                                    monitor=QualityMonitor())
        with pytest.raises(SessionStateError, match="QualityMonitor"):
            session.to_state()

    def test_strategy_object_sessions_refuse_checkpoint(self, params):
        strategy = build_encoding(
            "initial", params,
            Quantizer(params.value_bits, params.avg_extra_bits),
            KeyedHasher(KEY))
        session = ProtectionSession("1", KEY, params=params,
                                    encoding=strategy)
        with pytest.raises(SessionStateError, match="strategy"):
            session.to_state()

    def test_wrong_kind_rejected(self, params):
        session = DetectionSession(1, KEY, params=params)
        with pytest.raises(SessionStateError, match="kind"):
            ProtectionSession.from_state(session.to_state(), KEY)

    def test_newer_version_rejected(self, params):
        session = ProtectionSession("1", KEY, params=params)
        state = session.to_state()
        state["format_version"] = 999
        with pytest.raises(SessionStateError, match="newer"):
            ProtectionSession.from_state(state, KEY)

    def test_feed_after_finish_rejected(self, params):
        session = ProtectionSession("1", KEY, params=params)
        session.finish()
        with pytest.raises(ParameterError, match="finished"):
            session.feed([0.1, 0.2])

    def test_finished_flag_survives_checkpoint(self, params):
        """A checkpoint of a finished session resumes as finished."""
        session = ProtectionSession("1", KEY, params=params)
        session.feed([0.1, 0.2, 0.1])
        session.finish()
        resumed = ProtectionSession.from_state(
            json_roundtrip(session.to_state()), KEY)
        with pytest.raises(ParameterError, match="finished"):
            resumed.feed([0.3])

    def test_missing_format_version_rejected(self, params):
        session = ProtectionSession("1", KEY, params=params)
        state = session.to_state()
        del state["format_version"]
        with pytest.raises(SessionStateError, match="format_version"):
            ProtectionSession.from_state(state, KEY)


class TestDetectionSessionState:
    def test_roundtrip_preserves_voting_buckets(self, marked_reference,
                                                params):
        marked, _ = marked_reference
        session = DetectionSession(1, KEY, params=params)
        session.feed(marked[:5000])
        mid = session.result()
        resumed = DetectionSession.from_state(
            json_roundtrip(session.to_state()), KEY)
        restored = resumed.result()
        assert restored.buckets_true == mid.buckets_true
        assert restored.buckets_false == mid.buckets_false
        assert restored.abstentions == mid.abstentions
        assert restored.counters.to_dict() == mid.counters.to_dict()

    def test_roundtrip_preserves_transform_degree(self, params):
        session = DetectionSession(1, KEY, params=params,
                                   transform_degree=3.0)
        resumed = DetectionSession.from_state(
            json_roundtrip(session.to_state()), KEY)
        assert resumed._transform_degree == 3.0

    def test_window_capacity_mismatch_rejected(self, params):
        session = DetectionSession(1, KEY, params=params)
        state = session.to_state()
        state["config"]["params"]["window_size"] = params.window_size * 2
        with pytest.raises(ParameterError, match="window"):
            DetectionSession.from_state(state, KEY)

    def test_bucket_length_mismatch_rejected(self, params):
        session = DetectionSession(1, KEY, params=params)
        state = session.to_state()
        state["votes"]["buckets_true"] = [0, 0]
        with pytest.raises(ParameterError, match="buckets"):
            DetectionSession.from_state(state, KEY)


class TestScannerLevelRestore:
    def test_embedder_restore_reties_report_counters(self, small_stream,
                                                     params):
        """Restoring scan state directly on a StreamWatermarker must keep
        report.counters aliased to the live scanner counters."""
        from repro import StreamWatermarker

        source = StreamWatermarker("1", KEY, params=params)
        source.process(small_stream[:1500])
        target = StreamWatermarker("1", KEY, params=params)
        target.restore_scan_state(json_roundtrip(source.scan_state()))
        assert target.report.counters is target.counters
        target.process(small_stream[1500:])
        assert target.report.counters.items == len(small_stream)


class TestStateBuildingBlocks:
    def test_sliding_window_roundtrip(self):
        window = SlidingWindow(4)
        for value in (0.1, 0.2, 0.3, 0.4, 0.5, 0.6):
            window.push(value)
        clone = SlidingWindow.from_state(
            json_roundtrip(window.to_state()))
        assert clone.capacity == window.capacity
        assert clone.start_index == window.start_index
        assert np.array_equal(clone.values(), window.values())

    def test_sliding_window_overfull_state_rejected(self):
        state = {"capacity": 2, "start_index": 0, "items": [0.1, 0.2, 0.3]}
        from repro.errors import StreamError

        with pytest.raises(StreamError, match="capacity"):
            SlidingWindow.from_state(state)

    def test_zigzag_state_roundtrip_with_infinities(self):
        from repro.core.extremes import ZigzagState

        fresh = ZigzagState.fresh()
        clone = ZigzagState.from_state(json_roundtrip(fresh.to_state()))
        assert clone == fresh
        assert clone.max_value == float("-inf")
        assert clone.min_value == float("inf")

    def test_params_dict_roundtrip(self, params):
        assert params_from_dict(json_roundtrip(params_to_dict(params))) \
            == params

    def test_params_unknown_field_rejected(self, params):
        data = params_to_dict(params)
        data["from_the_future"] = 1
        with pytest.raises(ParameterError, match="from_the_future"):
            params_from_dict(data)


# ----------------------------------------------------------------------
# negative / fuzz coverage of checkpoint deserialization
# ----------------------------------------------------------------------
from repro import ReproError, session_from_state  # noqa: E402
from repro.stores import (  # noqa: E402
    DirectoryCheckpointStore,
    MemoryCheckpointStore,
)

JUNK_VALUES = (None, [], {}, "junk", -1, 3.5, True)


def make_states(params) -> "dict[str, dict]":
    """One fed checkpoint of each session kind (fresh dicts per call)."""
    protection = ProtectionSession("10", KEY,
                                   params=params.with_updates(phi=5))
    protection.feed(np.linspace(-0.4, 0.4, 600))
    detection = DetectionSession(2, KEY, params=params.with_updates(phi=5))
    detection.feed(np.linspace(-0.4, 0.4, 600))
    return {"protection": json_roundtrip(protection.to_state()),
            "detection": json_roundtrip(detection.to_state())}


def restore(kind: str, state, key=KEY):
    if kind == "protection":
        return ProtectionSession.from_state(state, key)
    return DetectionSession.from_state(state, key)


@pytest.fixture(scope="module")
def fed_states() -> "dict[str, dict]":
    from repro import WatermarkParams

    return make_states(WatermarkParams())


@pytest.mark.parametrize("kind", ["protection", "detection"])
class TestMalformedCheckpoints:
    """Every corruption raises SessionStateError (or a sibling
    ReproError), with no exceptions leaking from the plumbing."""

    def test_non_dict_states_rejected(self, fed_states, kind):
        for bad in (None, [], "text", 7, 3.5):
            with pytest.raises(SessionStateError, match="dict|kind"):
                restore(kind, bad)

    def test_each_required_key_missing_is_truncation(self, fed_states,
                                                     kind):
        state = fed_states[kind]
        for key_name in state:
            if key_name in ("finished", "kind", "format_version"):
                continue  # covered by their own tests below
            truncated = copy.deepcopy(state)
            del truncated[key_name]
            with pytest.raises(SessionStateError, match="truncated"):
                restore(kind, truncated)

    def test_missing_finished_is_tolerated(self, fed_states, kind):
        state = copy.deepcopy(fed_states[kind])
        del state["finished"]
        assert restore(kind, state).items_ingested == 600

    def test_unknown_top_level_field_rejected(self, fed_states, kind):
        state = copy.deepcopy(fed_states[kind])
        state["smuggled_field"] = 1
        with pytest.raises(SessionStateError, match="smuggled_field"):
            restore(kind, state)

    def test_unknown_config_field_rejected(self, fed_states, kind):
        state = copy.deepcopy(fed_states[kind])
        state["config"]["not_a_real_option"] = True
        with pytest.raises(SessionStateError, match="not_a_real_option"):
            restore(kind, state)

    def test_wrong_kind_rejected(self, fed_states, kind):
        state = copy.deepcopy(fed_states[kind])
        state["kind"] = "some-other-session"
        with pytest.raises(SessionStateError, match="kind"):
            restore(kind, state)

    def test_non_integer_format_version_rejected(self, fed_states, kind):
        state = copy.deepcopy(fed_states[kind])
        state["format_version"] = "one"
        with pytest.raises(SessionStateError, match="format_version"):
            restore(kind, state)

    def test_config_not_a_dict_rejected(self, fed_states, kind):
        state = copy.deepcopy(fed_states[kind])
        state["config"] = ["not", "a", "dict"]
        with pytest.raises(SessionStateError, match="config"):
            restore(kind, state)

    def test_scan_junk_raises_cleanly(self, fed_states, kind):
        for junk in JUNK_VALUES:
            state = copy.deepcopy(fed_states[kind])
            state["scan"] = junk
            with pytest.raises(ReproError):
                restore(kind, state)

    def test_scan_subfield_junk_raises_cleanly(self, fed_states, kind):
        for field in ("window", "zigzag", "pending", "label_history"):
            state = copy.deepcopy(fed_states[kind])
            state["scan"][field] = "garbage"
            with pytest.raises(ReproError):
                restore(kind, state)

    def test_window_items_junk_raises_cleanly(self, fed_states, kind):
        state = copy.deepcopy(fed_states[kind])
        state["scan"]["window"]["items"] = ["a", "b"]
        with pytest.raises(SessionStateError, match="malformed"):
            restore(kind, state)

    def test_session_from_state_unknown_kind(self, fed_states, kind):
        state = copy.deepcopy(fed_states[kind])
        state["kind"] = "mystery-session"
        with pytest.raises(SessionStateError, match="mystery-session"):
            session_from_state(state, KEY)


class TestKindSpecificCorruption:
    def test_protection_watermark_bits_junk(self, fed_states):
        state = copy.deepcopy(fed_states["protection"])
        state["config"]["watermark_bits"] = "zero"
        with pytest.raises(SessionStateError, match="malformed"):
            restore("protection", state)

    def test_protection_report_junk(self, fed_states):
        state = copy.deepcopy(fed_states["protection"])
        state["report"] = {"kind": "embed-report"}
        with pytest.raises(ReproError):
            restore("protection", state)

    def test_detection_votes_junk(self, fed_states):
        for junk in JUNK_VALUES:
            state = copy.deepcopy(fed_states["detection"])
            state["votes"] = junk
            with pytest.raises(ReproError):
                restore("detection", state)

    def test_detection_wm_length_junk(self, fed_states):
        state = copy.deepcopy(fed_states["detection"])
        state["config"]["wm_length"] = "two"
        with pytest.raises(SessionStateError, match="malformed"):
            restore("detection", state)


class TestCheckpointStoreFuzzIntegration:
    """The stores reject corrupt envelopes; a state that survives the
    store but is internally corrupt still fails cleanly in from_state —
    the two validation layers compose into never-silently-corrupt."""

    @pytest.fixture(params=["memory", "directory"])
    def store(self, request, tmp_path):
        if request.param == "memory":
            return MemoryCheckpointStore()
        return DirectoryCheckpointStore(tmp_path / "store")

    def test_roundtrip_through_store_restores(self, fed_states, store):
        store.save("s", fed_states["protection"])
        resumed = ProtectionSession.from_state(store.load("s"), KEY)
        assert resumed.items_ingested == 600

    def test_corrupt_state_through_store_fails_in_from_state(
            self, fed_states, store):
        state = copy.deepcopy(fed_states["detection"])
        del state["scan"]
        store.save("s", state)
        with pytest.raises(SessionStateError, match="truncated"):
            DetectionSession.from_state(store.load("s"), KEY)


MUTATION_PATHS = st.sampled_from([
    ("kind",), ("format_version",), ("finished",), ("config",), ("scan",),
    ("config", "encoding"), ("config", "params"),
    ("config", "encoding_options"), ("config", "require_labels"),
    ("scan", "window"), ("scan", "zigzag"), ("scan", "pending"),
    ("scan", "label_history"), ("scan", "next_index"),
    ("scan", "counters"), ("scan", "window", "items"),
    ("scan", "window", "capacity"), ("scan", "window", "start_index"),
])


class TestCheckpointMutationFuzz:
    """Hypothesis sweep: replacing any state node with junk (or deleting
    it) either restores fine or raises a ReproError — nothing else."""

    @given(path=MUTATION_PATHS,
           junk=st.sampled_from(JUNK_VALUES + ("delete",)),
           kind=st.sampled_from(["protection", "detection"]))
    def test_mutated_checkpoints_never_leak_raw_errors(
            self, fed_states, path, junk, kind):
        state = copy.deepcopy(fed_states[kind])
        node = state
        for step in path[:-1]:
            node = node[step]
        if junk == "delete":
            node.pop(path[-1], None)
        else:
            node[path[-1]] = junk
        try:
            session = restore(kind, state)
            # mutations that happen to be valid must yield a live
            # session (feeding a "finished" one raises cleanly too)
            session.feed(np.linspace(-0.2, 0.2, 64))
        except ReproError:
            pass  # a clean library error is the contract
