"""Session checkpoint state: round-trips, counters, buckets, error paths."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import DetectionSession, ProtectionSession, WatermarkParams
from repro.core.encoding_factory import build_encoding
from repro.core.quality import QualityMonitor
from repro.core.quantize import Quantizer
from repro.core.serialize import params_from_dict, params_to_dict
from repro.errors import ParameterError, SessionStateError
from repro.streams.window import SlidingWindow
from repro.util.hashing import KeyedHasher
from tests.conftest import KEY


def json_roundtrip(state: dict) -> dict:
    """Force the state through strict-ish JSON text, as a shard would."""
    return json.loads(json.dumps(state))


class TestProtectionSessionState:
    def test_roundtrip_preserves_counters_and_report(self, small_stream,
                                                     params):
        session = ProtectionSession("1", KEY, params=params)
        session.feed(small_stream)
        state = json_roundtrip(session.to_state())
        resumed = ProtectionSession.from_state(state, KEY)
        assert resumed.items_ingested == session.items_ingested
        assert resumed.report.counters.to_dict() \
            == session.report.counters.to_dict()
        assert resumed.report.embedded == session.report.embedded
        assert resumed.report.altered_items == session.report.altered_items
        assert resumed.watermark_bits == session.watermark_bits

    def test_resumed_report_counters_stay_live(self, small_stream, params):
        """After restore, the report and the scanner share one counters
        object, so further feeding updates both."""
        session = ProtectionSession("1", KEY, params=params)
        session.feed(small_stream[:1500])
        resumed = ProtectionSession.from_state(
            json_roundtrip(session.to_state()), KEY)
        before = resumed.report.counters.items
        resumed.feed(small_stream[1500:])
        assert resumed.report.counters.items == before + 1500
        assert resumed.items_ingested == resumed.report.counters.items

    def test_state_excludes_the_key(self, small_stream, params):
        session = ProtectionSession("1", KEY, params=params)
        session.feed(small_stream[:500])
        assert KEY.decode() not in json.dumps(session.to_state())

    def test_monitor_sessions_refuse_checkpoint(self, params):
        session = ProtectionSession("1", KEY, params=params,
                                    monitor=QualityMonitor())
        with pytest.raises(SessionStateError, match="QualityMonitor"):
            session.to_state()

    def test_strategy_object_sessions_refuse_checkpoint(self, params):
        strategy = build_encoding(
            "initial", params,
            Quantizer(params.value_bits, params.avg_extra_bits),
            KeyedHasher(KEY))
        session = ProtectionSession("1", KEY, params=params,
                                    encoding=strategy)
        with pytest.raises(SessionStateError, match="strategy"):
            session.to_state()

    def test_wrong_kind_rejected(self, params):
        session = DetectionSession(1, KEY, params=params)
        with pytest.raises(SessionStateError, match="kind"):
            ProtectionSession.from_state(session.to_state(), KEY)

    def test_newer_version_rejected(self, params):
        session = ProtectionSession("1", KEY, params=params)
        state = session.to_state()
        state["format_version"] = 999
        with pytest.raises(SessionStateError, match="newer"):
            ProtectionSession.from_state(state, KEY)

    def test_feed_after_finish_rejected(self, params):
        session = ProtectionSession("1", KEY, params=params)
        session.finish()
        with pytest.raises(ParameterError, match="finished"):
            session.feed([0.1, 0.2])

    def test_finished_flag_survives_checkpoint(self, params):
        """A checkpoint of a finished session resumes as finished."""
        session = ProtectionSession("1", KEY, params=params)
        session.feed([0.1, 0.2, 0.1])
        session.finish()
        resumed = ProtectionSession.from_state(
            json_roundtrip(session.to_state()), KEY)
        with pytest.raises(ParameterError, match="finished"):
            resumed.feed([0.3])

    def test_missing_format_version_rejected(self, params):
        session = ProtectionSession("1", KEY, params=params)
        state = session.to_state()
        del state["format_version"]
        with pytest.raises(SessionStateError, match="format_version"):
            ProtectionSession.from_state(state, KEY)


class TestDetectionSessionState:
    def test_roundtrip_preserves_voting_buckets(self, marked_reference,
                                                params):
        marked, _ = marked_reference
        session = DetectionSession(1, KEY, params=params)
        session.feed(marked[:5000])
        mid = session.result()
        resumed = DetectionSession.from_state(
            json_roundtrip(session.to_state()), KEY)
        restored = resumed.result()
        assert restored.buckets_true == mid.buckets_true
        assert restored.buckets_false == mid.buckets_false
        assert restored.abstentions == mid.abstentions
        assert restored.counters.to_dict() == mid.counters.to_dict()

    def test_roundtrip_preserves_transform_degree(self, params):
        session = DetectionSession(1, KEY, params=params,
                                   transform_degree=3.0)
        resumed = DetectionSession.from_state(
            json_roundtrip(session.to_state()), KEY)
        assert resumed._transform_degree == 3.0

    def test_window_capacity_mismatch_rejected(self, params):
        session = DetectionSession(1, KEY, params=params)
        state = session.to_state()
        state["config"]["params"]["window_size"] = params.window_size * 2
        with pytest.raises(ParameterError, match="window"):
            DetectionSession.from_state(state, KEY)

    def test_bucket_length_mismatch_rejected(self, params):
        session = DetectionSession(1, KEY, params=params)
        state = session.to_state()
        state["votes"]["buckets_true"] = [0, 0]
        with pytest.raises(ParameterError, match="buckets"):
            DetectionSession.from_state(state, KEY)


class TestScannerLevelRestore:
    def test_embedder_restore_reties_report_counters(self, small_stream,
                                                     params):
        """Restoring scan state directly on a StreamWatermarker must keep
        report.counters aliased to the live scanner counters."""
        from repro import StreamWatermarker

        source = StreamWatermarker("1", KEY, params=params)
        source.process(small_stream[:1500])
        target = StreamWatermarker("1", KEY, params=params)
        target.restore_scan_state(json_roundtrip(source.scan_state()))
        assert target.report.counters is target.counters
        target.process(small_stream[1500:])
        assert target.report.counters.items == len(small_stream)


class TestStateBuildingBlocks:
    def test_sliding_window_roundtrip(self):
        window = SlidingWindow(4)
        for value in (0.1, 0.2, 0.3, 0.4, 0.5, 0.6):
            window.push(value)
        clone = SlidingWindow.from_state(
            json_roundtrip(window.to_state()))
        assert clone.capacity == window.capacity
        assert clone.start_index == window.start_index
        assert np.array_equal(clone.values(), window.values())

    def test_sliding_window_overfull_state_rejected(self):
        state = {"capacity": 2, "start_index": 0, "items": [0.1, 0.2, 0.3]}
        from repro.errors import StreamError

        with pytest.raises(StreamError, match="capacity"):
            SlidingWindow.from_state(state)

    def test_zigzag_state_roundtrip_with_infinities(self):
        from repro.core.extremes import ZigzagState

        fresh = ZigzagState.fresh()
        clone = ZigzagState.from_state(json_roundtrip(fresh.to_state()))
        assert clone == fresh
        assert clone.max_value == float("-inf")
        assert clone.min_value == float("inf")

    def test_params_dict_roundtrip(self, params):
        assert params_from_dict(json_roundtrip(params_to_dict(params))) \
            == params

    def test_params_unknown_field_rejected(self, params):
        data = params_to_dict(params)
        data["from_the_future"] = 1
        with pytest.raises(ParameterError, match="from_the_future"):
            params_from_dict(data)
