"""Tests for the Sec-4.1 labeling scheme, including the Fig-2 example."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.labels import (
    StreamingLabeler,
    label_bit,
    label_from_history,
    labels_for_extreme_values,
)
from repro.core.quantize import Quantizer
from repro.errors import ParameterError

QUANTIZER = Quantizer(32)
MSB = 16


class TestLabelBit:
    def test_true_when_later_larger(self):
        assert label_bit(0.1, 0.3, QUANTIZER, MSB) is True

    def test_false_when_later_smaller_or_equal(self):
        assert label_bit(0.3, 0.1, QUANTIZER, MSB) is False
        assert label_bit(0.2, 0.2, QUANTIZER, MSB) is False

    def test_compares_magnitudes_not_signs(self):
        # |−0.1| < |+0.3| regardless of signs.
        assert label_bit(-0.1, 0.3, QUANTIZER, MSB) is True
        assert label_bit(0.1, -0.3, QUANTIZER, MSB) is True


class TestFig2Example:
    """Paper Fig 2(a): extremes A..K with % = 2 give K label "110100"."""

    # Values chosen so that the magnitude comparisons A<C, C>E, E<G,
    # G>I, I>K reproduce the paper's bits 1,0,1,0,0.
    VALUES = {
        "A": +6.0, "B": -7.3, "C": +7.7, "D": -7.2, "E": +6.7,
        "F": +2.0, "G": +11.2, "H": +8.7, "I": -5.5, "J": +6.0,
        "K": -5.0,
    }

    def test_label_of_k(self):
        # Normalize the paper's illustrative values into (-0.5, 0.5).
        scale = 30.0
        ordered = [self.VALUES[ch] / scale for ch in "ACEGIK"]
        label = label_from_history(ordered, QUANTIZER, MSB)
        assert label == 0b110100


class TestLabelFromHistory:
    def test_leading_one_guards_length(self):
        label = label_from_history([0.1, 0.2, 0.3], QUANTIZER, MSB)
        assert label.bit_length() == 3

    def test_requires_two_values(self):
        with pytest.raises(ParameterError):
            label_from_history([0.1], QUANTIZER, MSB)

    @given(st.lists(st.floats(-0.49, 0.49, allow_nan=False), min_size=2,
                    max_size=12))
    def test_label_bit_length_equals_history(self, history):
        label = label_from_history(history, QUANTIZER, MSB)
        assert label.bit_length() == len(history)


class TestStreamingLabeler:
    def test_warmup_returns_none(self):
        labeler = StreamingLabeler(lambda_bits=4, skip=2,
                                   quantizer=QUANTIZER, msb_bits=MSB)
        needed = 2 * 3 + 1
        values = [0.1 * (i % 5 + 1) for i in range(needed - 1)]
        assert all(labeler.push(v) is None for v in values)
        assert labeler.warmup_remaining == 1

    def test_label_defined_after_warmup(self):
        labeler = StreamingLabeler(lambda_bits=4, skip=2,
                                   quantizer=QUANTIZER, msb_bits=MSB)
        values = [0.05 * (i % 7 + 1) for i in range(10)]
        labels = [labeler.push(v) for v in values]
        assert labels[-1] is not None
        assert labels[-1].bit_length() == 4

    def test_matches_offline_helper(self):
        values = [0.03 * ((i * 7) % 11 + 1) - 0.2 for i in range(40)]
        offline = labels_for_extreme_values(values, lambda_bits=5, skip=2,
                                            quantizer=QUANTIZER, msb_bits=MSB)
        labeler = StreamingLabeler(lambda_bits=5, skip=2,
                                   quantizer=QUANTIZER, msb_bits=MSB)
        online = [labeler.push(v) for v in values]
        assert offline == online

    def test_preview_then_push_consistent(self):
        """preview(v) must equal what push(v) would have returned."""
        labeler_a = StreamingLabeler(4, 2, QUANTIZER, MSB)
        labeler_b = StreamingLabeler(4, 2, QUANTIZER, MSB)
        values = [0.04 * ((i * 3) % 9 + 1) for i in range(20)]
        for v in values:
            assert labeler_a.preview(v) == labeler_b.push(v)
            labeler_a.push(v)

    def test_preview_does_not_commit(self):
        labeler = StreamingLabeler(3, 1, QUANTIZER, MSB)
        labeler.push(0.1)
        labeler.push(0.2)
        first = labeler.preview(0.3)
        second = labeler.preview(0.3)
        assert first == second  # two previews, no state change

    def test_skip_strides_history(self):
        """With % = 2 the label must ignore odd-offset extremes."""
        labeler_a = StreamingLabeler(3, 2, QUANTIZER, MSB)
        labeler_b = StreamingLabeler(3, 2, QUANTIZER, MSB)
        base = [0.1, 0.4, 0.2, 0.3, 0.3]
        tweaked = [0.1, 0.25, 0.2, 0.11, 0.3]  # odd positions changed
        label_a = [labeler_a.push(v) for v in base][-1]
        label_b = [labeler_b.push(v) for v in tweaked][-1]
        assert label_a is not None
        assert label_a == label_b

    def test_reset_clears_history(self):
        labeler = StreamingLabeler(3, 1, QUANTIZER, MSB)
        for v in (0.1, 0.2, 0.3):
            labeler.push(v)
        labeler.reset()
        assert labeler.warmup_remaining == 3

    def test_constructor_validation(self):
        with pytest.raises(ParameterError):
            StreamingLabeler(1, 2, QUANTIZER, MSB)
        with pytest.raises(ParameterError):
            StreamingLabeler(4, 0, QUANTIZER, MSB)

    @settings(max_examples=25)
    @given(st.lists(st.floats(-0.49, 0.49, allow_nan=False), min_size=31,
                    max_size=60))
    def test_labels_depend_only_on_recent_history(self, values):
        """Labels are a function of the last %(λ-1)+1 extremes only.

        This bounded-memory property is what lets detection resynchronize
        after attacked regions (Sec 4.1's corruption argument).
        """
        lam, skip = 4, 2
        needed = skip * (lam - 1) + 1
        full = labels_for_extreme_values(values, lam, skip, QUANTIZER, MSB)
        suffix = values[-needed:]
        fresh = labels_for_extreme_values(suffix, lam, skip, QUANTIZER, MSB)
        assert full[-1] == fresh[-1]
